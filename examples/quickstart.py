"""Quickstart: define machines, run them, test them systematically.

Demonstrates the three ways to execute a P# program:
1. the production runtime (real threads, like Section 6.1);
2. the bug-finding runtime under the random scheduler (Section 6.2);
3. deterministic replay of a buggy schedule.

Run: ``python examples/quickstart.py``
"""

from repro import (
    Campaign,
    Event,
    Machine,
    Runtime,
    State,
    TestConfig,
)


class EPing(Event):
    pass


class EPong(Event):
    pass


class Ponger(Machine):
    class Serving(State):
        initial = True
        entry = "setup"
        actions = {EPing: "on_ping"}

    def setup(self):
        self.count = 0

    def on_ping(self):
        self.count += 1
        self.send(self.payload, EPong(self.count))


class Pinger(Machine):
    """Drives three rounds, then asserts replies arrived in order —
    which they always do (per-sender FIFO), so this program is correct."""

    class Driving(State):
        initial = True
        entry = "setup"
        actions = {EPong: "on_pong"}

    def setup(self):
        self.partner = self.create_machine(Ponger)
        self.replies = []
        for _ in range(3):
            self.send(self.partner, EPing(self.id))

    def on_pong(self):
        self.replies.append(self.payload)
        if len(self.replies) == 3:
            self.assert_that(self.replies == [1, 2, 3], "out of order!")
            self.halt()


class RacyPinger(Pinger):
    """Two partners, one shared reply list: arrival order now depends on
    the schedule, so the assert fails under *some* interleavings."""

    def setup(self):
        self.replies = []
        for _ in range(2):
            partner = self.create_machine(Ponger)
            self.send(partner, EPing(self.id))
            self.send(partner, EPing(self.id))

    def on_pong(self):
        self.replies.append(self.payload)
        if len(self.replies) == 4:
            self.assert_that(
                self.replies == [1, 2, 1, 2], "schedule-dependent order!"
            )
            self.halt()


def main():
    print("1. production runtime (real threads)")
    runtime = Runtime(seed=0)
    runtime.run(Pinger)
    runtime.join(timeout=10)
    print("   completed without errors\n")

    print("2. systematic testing: 200 random schedules of the racy variant")
    campaign = Campaign(
        TestConfig(RacyPinger, seed=42, max_iterations=200)
    )
    report = campaign.run()
    print(f"   {report.summary()}")
    print(f"   backend: {report.effective_backend}")  # resolved from 'auto'
    assert report.bug_found

    print("\n3. deterministic replay of the recorded buggy schedule")
    result = campaign.replay()  # the last campaign's winning trace
    print(f"   replayed -> {result.bug}")
    assert result.buggy
    print("\nSame trace, same bug: Heisenbug reproduced deterministically.")
    print("(The same hunt from a shell: "
          "python -m repro test examples.quickstart:RacyPinger "
          "--seed 42 --max-iterations 200)")


if __name__ == "__main__":
    main()
