"""The Figure 1 master-worker system: run it, test it, analyze it.

Uses the AsyncSystem benchmark (the Section 3 / Section 7.1 architecture):
a Dispatcher coordinating services that flip between master and worker
roles, with the abstract service API of BaseService.

Run: ``python examples/master_worker.py``
"""

from repro import Campaign, TestConfig
from repro.analysis.frontend import analyze_machines
from repro.bench.async_system import (
    BUG_DRIVERS,
    BaseService,
    Dispatcher,
    UserService,
)


def main():
    print("systematic test of the correct master-worker system")
    base = TestConfig(
        Dispatcher, seed=1, max_iterations=300, max_steps=5_000
    )
    report = Campaign(base).run()
    print(f"   {report.summary()}  [{report.effective_backend}]")
    assert not report.bug_found

    print("\nstatic race analysis of the same classes")
    analysis = analyze_machines(
        [Dispatcher, UserService, BaseService], name="master-worker", xsa=True
    )
    print(f"   verified race-free: {analysis.verified}")

    print("\nhunting the five seeded case-study bugs (Section 7.1)")
    for bug, (driver, service) in sorted(BUG_DRIVERS.items()):
        report = Campaign(
            base.with_overrides(program=driver, seed=13, max_iterations=2_000)
        ).run()
        status = (
            f"found at schedule {report.first_bug_iteration}: "
            f"{report.first_bug.kind}"
            if report.bug_found
            else "not found"
        )
        print(f"   {bug}: {status}")

    print("\nbug4 is an ownership race — the static analyzer catches it too:")
    driver, service = BUG_DRIVERS["bug4"]
    analysis = analyze_machines([driver, service, BaseService], name="bug4")
    for diag in analysis.to_report().violations[:2]:
        print(f"   {diag}")


if __name__ == "__main__":
    main()
