"""Hunting a deep consensus bug: Raft's stale-vote double leader.

Table 2 reports Raft's seeded bug as the rarest (2% of schedules, DFS
never reaches it within bounds).  This example compares the DFS and
random schedulers on it and replays the found trace — the Section 6.2
workflow end to end.

Run: ``python examples/find_raft_bug.py``
"""

from repro import DfsStrategy, RandomStrategy, TestingEngine, replay
from repro.bench import get


def main():
    benchmark = get("Raft")
    buggy_main = benchmark.buggy.main

    print("DFS scheduler, 300 schedules (explores one corner of the tree):")
    engine = TestingEngine(
        buggy_main, strategy=DfsStrategy(), max_iterations=300,
        stop_on_first_bug=True, max_steps=5_000, time_limit=60,
    )
    report = engine.run()
    print(f"   {report.summary()}")

    print("\nrandom scheduler, up to 5000 schedules:")
    engine = TestingEngine(
        buggy_main, strategy=RandomStrategy(seed=7), max_iterations=5_000,
        stop_on_first_bug=True, max_steps=5_000, time_limit=120,
    )
    report = engine.run()
    print(f"   {report.summary()}")

    if report.bug_found:
        trace = report.first_bug.trace
        print(f"\nreplaying the {len(trace)}-decision trace:")
        result = replay(buggy_main, trace)
        print(f"   {result.bug}")
        assert result.buggy, "replay must reproduce the bug"
        print("   reproduced deterministically.")
    else:
        print("   (bug not hit with this seed/budget — it is a 2%-class bug;"
              " try a different seed)")


if __name__ == "__main__":
    main()
