"""Hunting a deep consensus bug: Raft's stale-vote double leader.

Table 2 reports Raft's seeded bug as the rarest (2% of schedules, DFS
never reaches it within bounds).  This example compares the DFS and
random schedulers on it and replays the found trace — the Section 6.2
workflow end to end, written against the declarative
``TestConfig``/``Campaign`` facade: one frozen config describes the
campaign, ``with_overrides`` derives the strategy variations, and the
worker back-end resolves automatically (``workers="auto"`` — inline
when the program compiles for it, reported as ``effective_backend``).

The command-line twin of this script:

    python -m repro test Raft --strategy dfs --max-iterations 300
    python -m repro test Raft --seed 7 --max-iterations 5000 \\
        --save-trace raft.trace.json
    python -m repro replay Raft --trace raft.trace.json

Run: ``python examples/find_raft_bug.py``
"""

from repro import Campaign, TestConfig


def main():
    base = TestConfig(
        "Raft",                      # registry target: the buggy variant
        max_iterations=300,
        max_steps=5_000,
        time_limit=60,
    )

    print("DFS scheduler, 300 schedules (explores one corner of the tree):")
    report = Campaign(base.with_overrides(strategy="dfs")).run()
    print(f"   {report.summary()}")

    print("\nrandom scheduler, up to 5000 schedules:")
    campaign = Campaign(
        base.with_overrides(seed=7, max_iterations=5_000, time_limit=120)
    )
    report = campaign.run()
    print(f"   {report.summary()}")
    print(f"   backend: {report.effective_backend}")

    if report.bug_found:
        trace = report.first_bug.trace
        print(f"\nreplaying the {len(trace)}-decision trace:")
        result = campaign.replay()            # the recorded winner
        print(f"   {result.bug}")
        assert result.buggy, "replay must reproduce the bug"
        print("   reproduced deterministically.")
    else:
        print("   (bug not hit with this seed/budget — it is a 2%-class bug;"
              " try a different seed)")


if __name__ == "__main__":
    main()
