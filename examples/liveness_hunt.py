"""Hunting a livelock with hot/cold liveness monitors (Section 7.2).

The ProcessScheduler benchmark's buggy variant livelocks when an
interrupt beats the client's CPU request to the scheduler: the recovery
loop re-arms itself forever and the deferred request is never granted.
The ``CpuProgressMonitor`` specification encodes the obligation — hot
(``Starved``) while a request is outstanding, cold (``Satisfied``) once
granted — and the runtime reports a liveness bug when the monitor stays
hot beyond the temperature threshold under a *fair* schedule.

The walkthrough shows the three pieces fitting together:

1. An **unfair** strategy (DFS) cannot tell a livelock from its own
   starvation of a machine, so its depth-bound cutoffs stay plain
   ``"depth-bound"`` statuses — no spurious liveness reports.
2. The **fair** ``FairRandomStrategy`` (round-robin-biased random walk)
   plus the monitor pinpoints the livelock via hot-state temperature,
   naming the hot state and the step counts.
3. The winning schedule **replays deterministically**, monitor included.

Run: ``python examples/liveness_hunt.py``
"""

from repro import FairRandomStrategy, DfsStrategy, PortfolioEngine, StrategySpec, TestingEngine
from repro.bench import get

benchmark = get("ProcessScheduler")
MONITORS = benchmark.buggy.monitors  # (CpuProgressMonitor,)


def unfair_strategies_stay_quiet():
    print("1. DFS (unfair) + livelock_as_bug: no spurious liveness reports")
    engine = TestingEngine(
        benchmark.buggy.main,
        strategy=DfsStrategy(),
        max_iterations=30,
        max_steps=2_000,
        time_limit=30,
        livelock_as_bug=True,  # the legacy heuristic would fire here...
        stop_on_first_bug=False,
    )
    report = engine.run()
    print(f"   {report.summary()}")
    print(f"   depth-bound cutoffs: {report.depth_bound_hits}, "
          f"bugs: {report.buggy_iterations} (starvation is not a livelock)\n")


def fair_strategy_finds_the_livelock():
    print("2. FairRandomStrategy + CpuProgressMonitor: temperature detection")
    engine = TestingEngine(
        benchmark.buggy.main,
        strategy=FairRandomStrategy(seed=3),
        max_iterations=200,
        max_steps=2_000,
        time_limit=60,
        monitors=MONITORS,
        max_hot_steps=150,  # fair steps a monitor may stay hot
    )
    report = engine.run()
    print(f"   {report.summary()}")
    if report.first_bug is not None:
        print(f"   -> {report.first_bug.message}\n")
    return report


def portfolio_and_replay():
    print("3. Portfolio campaign + deterministic replay of the winner")
    engine = PortfolioEngine(
        benchmark.buggy.main,
        specs=[
            StrategySpec("fair-random", {"seed": 3}),
            StrategySpec("fair-random", {"seed": 4, "bias": 0.7}),
        ],
        max_iterations=200,
        time_limit=60,
        max_steps=2_000,
        monitors=MONITORS,
        max_hot_steps=150,
    )
    report = engine.run()
    print(f"   campaign: {report.summary()}")
    replayed = engine.replay_winner(report)
    if replayed is None:
        print("   (no bug within budget — raise iterations)")
        return
    assert replayed.buggy and replayed.bug.kind == "liveness"
    assert replayed.trace == report.first_bug.trace
    print(f"   replayed bit-identically in {replayed.steps} steps: "
          f"{replayed.bug.message}")


if __name__ == "__main__":
    unfair_strategies_stay_quiet()
    fair_strategy_finds_the_livelock()
    portfolio_and_replay()
