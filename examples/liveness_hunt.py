"""Hunting a livelock with hot/cold liveness monitors (Section 7.2).

The ProcessScheduler benchmark's buggy variant livelocks when an
interrupt beats the client's CPU request to the scheduler: the recovery
loop re-arms itself forever and the deferred request is never granted.
The ``CpuProgressMonitor`` specification encodes the obligation — hot
(``Starved``) while a request is outstanding, cold (``Satisfied``) once
granted — and the runtime reports a liveness bug when the monitor stays
hot beyond the temperature threshold under a *fair* schedule.

The walkthrough shows the three pieces fitting together (all phrased as
one base ``TestConfig`` plus ``with_overrides`` — the registry target
``"ProcessScheduler"`` brings ``CpuProgressMonitor`` along by itself):

1. An **unfair** strategy (DFS) cannot tell a livelock from its own
   starvation of a machine, so its depth-bound cutoffs stay plain
   ``"depth-bound"`` statuses — no spurious liveness reports.
2. The **fair** ``fair-random`` strategy (round-robin-biased random
   walk) plus the monitor pinpoints the livelock via hot-state
   temperature, naming the hot state and the step counts.
3. The winning schedule **replays deterministically**, monitor included.

The command-line twin of step 2:

    python -m repro test ProcessScheduler --strategy fair-random,seed=3 \\
        --max-steps 2000 --max-hot-steps 150 --max-iterations 200

Run: ``python examples/liveness_hunt.py``
"""

from repro import Campaign, TestConfig

BASE = TestConfig(
    "ProcessScheduler",        # buggy variant + CpuProgressMonitor attach
    max_iterations=200,
    max_steps=2_000,
    time_limit=60,
    max_hot_steps=150,         # fair steps a monitor may stay hot
)


def unfair_strategies_stay_quiet():
    print("1. DFS (unfair) + livelock_as_bug: no spurious liveness reports")
    campaign = Campaign(
        BASE.with_overrides(
            strategy="dfs",
            max_iterations=30,
            time_limit=30,
            livelock_as_bug=True,  # the legacy heuristic would fire here...
            stop_on_first_bug=False,
        )
    )
    report = campaign.run()
    print(f"   {report.summary()}")
    print(f"   depth-bound cutoffs: {report.depth_bound_hits}, "
          f"bugs: {report.buggy_iterations} (starvation is not a livelock)\n")


def fair_strategy_finds_the_livelock():
    print("2. fair-random + CpuProgressMonitor: temperature detection")
    campaign = Campaign(BASE.with_overrides(strategy="fair-random,seed=3"))
    report = campaign.run()
    print(f"   {report.summary()}")
    print(f"   backend: {report.effective_backend}")
    if report.first_bug is not None:
        print(f"   -> {report.first_bug.message}\n")
    return report


def portfolio_and_replay():
    print("3. Portfolio campaign + deterministic replay of the winner")
    campaign = Campaign(
        BASE.with_overrides(
            specs=("fair-random,seed=3", "fair-random,seed=4,bias=0.7"),
        )
    )
    report = campaign.portfolio()
    print(f"   campaign: {report.summary()}")
    replayed = campaign.replay()
    if replayed is None:
        print("   (no bug within budget — raise iterations)")
        return
    assert replayed.buggy and replayed.bug.kind == "liveness"
    assert replayed.trace == report.first_bug.trace
    print(f"   replayed bit-identically in {replayed.steps} steps: "
          f"{replayed.bug.message}")


if __name__ == "__main__":
    unfair_strategies_stay_quiet()
    fair_strategy_finds_the_livelock()
    portfolio_and_replay()
