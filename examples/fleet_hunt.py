"""Sharding one campaign across a fleet of worker processes.

``examples/portfolio_hunt.py`` races strategies inside one
``multiprocessing`` pool.  ``run_fleet`` runs the same sharded
campaign over a wire protocol instead (``docs/protocol.md``): a
coordinator streams work units to warm worker processes — local
children over stdio pipes here, but the identical protocol carries
TCP workers attached from other shells or hosts with ``python -m
repro submit``.  Workers heartbeat while busy; a worker that dies
mid-shard has its shard re-queued, so the merged report is the same
one an uninterrupted run produces.

The command-line twin of this script:

    python -m repro serve --config campaign.json --workers 2

Run: ``python examples/fleet_hunt.py [workers]``
"""

import sys

from repro import Campaign, TestConfig
from repro.testing import run_fleet


def main():
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2

    config = TestConfig(
        "BoundedAsync",
        seed=7,
        specs=(
            "random,seed=1",
            "pct,depth=10,seed=2",
            "delay-bounding,delays=2,seed=3",
        ),
        max_iterations=150,
        time_limit=60,
        stop_on_first_bug=False,  # survey the whole budget, count bugs
    )

    # A campaign file makes the same config shippable to any host:
    # config.save("campaign.json") round-trips through the JSON schema
    # the fleet sends over the wire (versioned, loud on unknown fields).
    restored = TestConfig.from_json(config.to_json())
    assert restored == config

    print(f"fleet of {workers} local workers on BoundedAsync:")
    report = run_fleet(config, local_workers=workers)

    print(f"   campaign: {report.summary()}")
    for sub in report.sub_reports:
        print(f"     shard {sub.summary()}")

    # Same config, same seed, no fleet: the single-process portfolio
    # explores the identical schedules, so the distinct-bug fingerprint
    # sets must match — sharding changes wall-clock, not findings.
    local = Campaign(config).portfolio()
    fleet_prints = {b.trace.fingerprint() for b in report.bugs if b.trace}
    local_prints = {b.trace.fingerprint() for b in local.bugs if b.trace}
    assert fleet_prints == local_prints, "fleet must match the local portfolio"
    print(
        f"   {len(fleet_prints)} distinct bug fingerprints — identical to a "
        f"single-process portfolio of the same config."
    )


if __name__ == "__main__":
    main()
