"""The paper's running example, end to end (Examples 4.1 - 5.5).

* parse the ``list_manager`` machine in the core-language surface syntax;
* run the static analysis: the racy version is flagged (Example 5.4);
* the repaired version (``this.list := null`` after the send) is still a
  false positive without xSA and verified with it (Example 5.5);
* cross-validate dynamically: systematic statement-level exploration with
  the vector-clock race detector finds a real race only in the racy one.

Run: ``python examples/race_analysis.py``
"""

from repro.analysis import analyze_program
from repro.lang import explore, parse_program

ELEM = """
class elem {
    int val;
    elem next;
    int get_val() { int ret; ret := this.val; return ret; }
    elem get_next() { elem ret; ret := this.next; return ret; }
    void set_val(int v) { this.val := v; }
    void set_next(elem n) { this.next := n; }
}
"""

MANAGER = ELEM + """
machine list_manager {
    elem list;
    void init() { this.list := null; }
    void add(elem payload) {
        elem tmp;
        tmp := this.list;
        payload.set_next(tmp);
        this.list := payload;
    }
    void get(machine payload) {
        elem tmp;
        tmp := this.list;
        send payload eReply(tmp);
        %s
    }
    void sum_list(int payload) {
        elem cur; int s; int v; bool more;
        s := 0;
        cur := this.list;
        more := cur != null;
        while (more) {
            v := cur.get_val();
            s := s + v;
            cur := cur.get_next();
            more := cur != null;
        }
    }
    transitions {
        init:     eAdd -> add, eGet -> get, eSum -> sum_list;
        add:      eAdd -> add, eGet -> get, eSum -> sum_list;
        get:      eAdd -> add, eGet -> get, eSum -> sum_list;
        sum_list: eAdd -> add, eGet -> get, eSum -> sum_list;
    }
}

machine client {
    elem item;
    void init() {
        elem e;
        machine mgr;
        e := new elem;
        e.set_val(1);
        mgr := create list_manager();
        send mgr eAdd(e);
        send mgr eGet(me);
        send mgr eSum(0);
    }
    void got(elem payload) {
        this.item := payload;
        payload.set_val(2);
    }
    transitions { init: eReply -> got; got: eReply -> got; }
}
"""


def report(title, text):
    program = parse_program(text, name=title)
    print(f"== {title}")
    without = analyze_program(program, xsa=False)
    with_xsa = analyze_program(program, xsa=True)
    print(f"   static, no xSA : {without.violation_count()} violation(s)")
    print(f"   static, xSA    : {with_xsa.violation_count()} violation(s)")
    result = explore(program, instances=["client"], max_schedules=2000)
    print(
        f"   dynamic        : {len(result.races)} race(s) over "
        f"{result.schedules} statement-level schedules"
    )
    return with_xsa, result


def main():
    racy_static, racy_dynamic = report("racy list_manager (Example 4.2)", MANAGER % "")
    assert not racy_static.verified and racy_dynamic.races

    print()
    fixed_static, fixed_dynamic = report(
        "repaired list_manager (Example 5.5)", MANAGER % "this.list := null;"
    )
    assert fixed_static.verified, "xSA verifies the repair"
    assert not fixed_dynamic.races

    print("\nTheorem 5.1 in action: verified race-free statically, and no")
    print("dynamic schedule exhibits a race.")


if __name__ == "__main__":
    main()
