"""Hunting the Raft stale-vote bug with a parallel strategy portfolio.

``examples/find_raft_bug.py`` shows a single strategy at a time: DFS
misses the bug (it lives deep in the schedule tree, in ~2% of schedules)
and random needs the right seed.  Here ``Campaign.portfolio()`` races a
portfolio of diverse strategies — random, PCT at several priority-change
budgets, delay-bounding at several delay budgets, iterative-deepening
DFS — in separate processes; the first worker to hit the bug cancels the
rest and hands back a replayable trace.  Every worker inherits the
inline-first back-end from ``workers="auto"`` (the campaign report's
``effective_backend`` says what actually ran).

The command-line twin: ``python -m repro test Raft --portfolio 4 --seed 7``

Run: ``python examples/portfolio_hunt.py [workers]``
"""

import sys

from repro import Campaign, TestConfig


def main():
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"portfolio of {workers} workers on Raft's seeded bug:")
    campaign = Campaign(
        TestConfig(
            "Raft",
            seed=7,
            max_iterations=5_000,
            time_limit=120,
            max_steps=5_000,
            portfolio_workers=workers,
        )
    )
    report = campaign.portfolio()

    print(f"   campaign: {report.summary()}")
    print(f"   backend: {report.effective_backend}")
    for sub in report.sub_reports:
        print(f"     worker {sub.summary()}")

    if report.first_bug is None:
        print("   (bug not hit within the budget — raise workers/iterations)")
        return

    trace = report.first_bug.trace
    print(f"\nreplaying the winning {len(trace)}-decision trace in-process:")
    result = campaign.replay()
    print(f"   {result.bug}")
    assert result.buggy, "replay must reproduce the bug"
    print("   reproduced deterministically.")


if __name__ == "__main__":
    main()
