"""Hunting the Raft stale-vote bug with a parallel strategy portfolio.

``examples/find_raft_bug.py`` shows a single strategy at a time: DFS
misses the bug (it lives deep in the schedule tree, in ~2% of schedules)
and random needs the right seed.  Here a portfolio of diverse strategies —
random, PCT at several priority-change budgets, delay-bounding at several
delay budgets, iterative-deepening DFS — races in separate processes; the
first worker to hit the bug cancels the rest and hands back a replayable
trace.

Run: ``python examples/portfolio_hunt.py [workers]``
"""

import sys

from repro import PortfolioEngine
from repro.bench import buggy_main


def main():
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"portfolio of {workers} workers on Raft's seeded bug:")
    engine = PortfolioEngine(
        buggy_main("Raft"),
        workers=workers,
        seed=7,
        max_iterations=5_000,
        time_limit=120,
        max_steps=5_000,
    )
    report = engine.run()

    print(f"   campaign: {report.summary()}")
    for sub in report.sub_reports:
        print(f"     worker {sub.summary()}")

    if report.first_bug is None:
        print("   (bug not hit within the budget — raise workers/iterations)")
        return

    trace = report.first_bug.trace
    print(f"\nreplaying the winning {len(trace)}-decision trace in-process:")
    result = engine.replay_winner(report)
    print(f"   {result.bug}")
    assert result.buggy, "replay must reproduce the bug"
    print("   reproduced deterministically.")


if __name__ == "__main__":
    main()
