"""repro: a Python reproduction of P# — asynchronous programming, analysis
and testing with state machines (Deligiannis et al., PLDI 2015).

Public API overview
-------------------

Programming model (:mod:`repro.core`):
    ``Machine``, ``State``, ``Event``, ``Halt``, ``MachineId``, ``Runtime``

Systematic concurrency testing (:mod:`repro.testing`):
    ``TestConfig`` + ``Campaign`` — the declarative campaign facade (one
    frozen config over runtime, strategies and monitors; also the core
    of the ``python -m repro`` command-line tester) — plus the classic
    entry points it subsumes: ``TestingEngine``, ``PortfolioEngine``
    (parallel strategy portfolio), ``BugFindingRuntime``,
    ``DfsStrategy``, ``IterativeDeepeningDfsStrategy``,
    ``RandomStrategy``, ``FairRandomStrategy``, ``ReplayStrategy``,
    ``PctStrategy``, ``DelayBoundingStrategy``, ``StrategySpec``,
    ``replay``

Specifications (:mod:`repro.testing.monitors`):
    ``Monitor`` (safety/liveness specification machines), ``hot`` /
    ``cold`` state markers, ``EMachineHalted`` — liveness livelocks are
    detected via hot-state temperature under fair schedules

Static data race analysis (:mod:`repro.analysis`):
    ``analyze_program``, ``analyze_machines`` — the ownership-based
    analysis of Section 5, including cross-state analysis (xSA) and the
    read-only extension.

Core calculus (:mod:`repro.lang`):
    the paper's Figure 2 language, its operational semantics (Figures 3-4)
    and a dynamic race detector.

Baselines: :mod:`repro.chess` (CHESS-style SCT) and :mod:`repro.soter`
(SOTER-style ownership inference).  Benchmarks: :mod:`repro.bench`.
"""

from .core import (
    Event,
    Halt,
    Machine,
    MachineId,
    Runtime,
    State,
    machine_statistics,
    program_statistics,
)
from .errors import (
    ActionError,
    AnalysisDiagnostic,
    AnalysisReport,
    AssertionFailure,
    BugReport,
    LivenessError,
    MachineDeclarationError,
    MonitorError,
    PSharpError,
    UnhandledEventError,
)
from .testing import (
    BugFindingRuntime,
    Campaign,
    TestConfig,
    FaultConfig,
    DelayBoundingStrategy,
    DfsStrategy,
    EMachineHalted,
    ExecutionResult,
    FairRandomStrategy,
    IterativeDeepeningDfsStrategy,
    Monitor,
    PctStrategy,
    PortfolioEngine,
    RandomStrategy,
    ReplayStrategy,
    ScheduleTrace,
    StrategySpec,
    TestingEngine,
    TestReport,
    cold,
    default_portfolio,
    hot,
    make_strategy,
    register_strategy,
    replay,
    run_fleet,
    run_portfolio,
)

__version__ = "1.0.0"

__all__ = [
    "Event",
    "Halt",
    "Machine",
    "MachineId",
    "Runtime",
    "State",
    "machine_statistics",
    "program_statistics",
    "PSharpError",
    "MachineDeclarationError",
    "UnhandledEventError",
    "AssertionFailure",
    "ActionError",
    "LivenessError",
    "MonitorError",
    "BugReport",
    "AnalysisDiagnostic",
    "AnalysisReport",
    "TestConfig",
    "Campaign",
    "FaultConfig",
    "TestingEngine",
    "TestReport",
    "run_portfolio",
    "run_fleet",
    "PortfolioEngine",
    "StrategySpec",
    "default_portfolio",
    "make_strategy",
    "register_strategy",
    "BugFindingRuntime",
    "ExecutionResult",
    "DfsStrategy",
    "IterativeDeepeningDfsStrategy",
    "RandomStrategy",
    "FairRandomStrategy",
    "ReplayStrategy",
    "PctStrategy",
    "DelayBoundingStrategy",
    "ScheduleTrace",
    "Monitor",
    "EMachineHalted",
    "hot",
    "cold",
    "replay",
    "__version__",
]
