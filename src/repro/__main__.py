"""``python -m repro`` — the command-line tester.

Mirrors the P# tester tool's surface (a thin command line over the
declarative core): every invocation builds a
:class:`repro.testing.config.TestConfig` and hands it to a
:class:`repro.testing.config.Campaign`, so the CLI has no execution
logic of its own.

Subcommands
-----------

``test TARGET`` / ``test --config FILE``
    Run a bug-finding campaign.  ``TARGET`` is a benchmark-registry name
    or table alias (``Raft``, ``2PhaseCommit`` — the seeded buggy
    variant, registry monitors attached) or a ``module:Class`` import
    path.  ``--strategy name,kw=v`` picks the scheduler (repeat it, or
    pass ``--portfolio N``, for a multi-process portfolio campaign);
    ``--save-trace FILE`` writes the winning schedule for later replay.
    ``--config FILE`` runs a campaign file instead
    (:meth:`TestConfig.save`'s versioned JSON) — the same artifact
    ``serve`` ships to fleet workers.

``serve --config FILE``
    Coordinate a distributed campaign fleet: shard the campaign across
    local stdio workers (``--workers N``) and/or TCP workers accepted on
    ``--port`` (``python -m repro worker`` / ``submit``), merge their
    reports, checkpoint progress.  See docs/protocol.md.

``worker (--stdio | --host H --port P)``
    One fleet worker process: handshake with a coordinator, run shards
    until told to shut down.  ``serve --workers`` spawns these itself;
    remote hosts run them explicitly (usually via ``submit``).

``submit --host H --port P --workers N``
    Attach N worker processes to a running coordinator and wait for the
    campaign to release them.

``replay TARGET --trace FILE``
    Deterministically re-execute a schedule recorded by ``test
    --save-trace`` (or :meth:`ScheduleTrace.save`) and report what it
    reproduces.

``bench --list``
    Print the benchmark registry (suites, variants, monitors).

``report FILE``
    Render a saved campaign report (``test --coverage-report FILE``) or
    a crash checkpoint (``test --checkpoint FILE``): the summary, the
    activity-coverage table naming every declared-but-unvisited state
    and transition, telemetry, ``--json`` for machines, ``--dot FILE``
    for a Graphviz view of the explored state space.

Exit status: 0 on success, 1 when ``--expect-bug`` was passed and no bug
was found (or a replay reproduced none), 2 on configuration errors (a
corrupt trace or checkpoint file included), 130 when a campaign was
interrupted by Ctrl-C (partial report printed, checkpoint flushed).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .errors import PSharpError
from .testing.config import Campaign, TestConfig
from .testing.faults import FaultConfig
from .testing.portfolio import StrategySpec, strategy_names
from .testing.reduction import DEFAULT_STATE_CACHE_SIZE, REDUCTION_MODES


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-steps", type=int, default=20_000, metavar="N",
        help="depth bound on scheduling decisions per execution",
    )
    parser.add_argument(
        "--workers", choices=("auto", "inline", "pool", "spawn"),
        default="auto",
        help="worker back-end (default: auto = inline with pooled fallback)",
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    faults = parser.add_argument_group(
        "fault injection",
        "deterministic environment faults, recorded in the schedule trace "
        "(replay a faulty trace with the same fault flags)",
    )
    faults.add_argument(
        "--fault-drop", type=float, default=0.0, metavar="P",
        help="per-send probability of dropping the message",
    )
    faults.add_argument(
        "--fault-duplicate", type=float, default=0.0, metavar="P",
        help="per-send probability of delivering the message twice",
    )
    faults.add_argument(
        "--fault-delay", type=float, default=0.0, metavar="P",
        help="per-send probability of reordering the message behind the "
        "target's newest pending event",
    )
    faults.add_argument(
        "--fault-crash", type=float, default=0.0, metavar="P",
        help="per-step probability of crash-restarting a machine "
        "(persistent fields survive, the rest reboots)",
    )
    faults.add_argument(
        "--fault-budget", type=int, default=16, metavar="N",
        help="max injected faults per execution (default: 16)",
    )
    faults.add_argument(
        "--no-faults", action="store_true",
        help="disable fault injection even for fault-enabled benchmark "
        "targets (e.g. RaftLossy)",
    )


def _fault_config_from_args(args: argparse.Namespace) -> Optional[FaultConfig]:
    """The --fault-* flags as a FaultConfig: None defers to the registry
    variant's default; --no-faults is the explicit all-off config."""
    if args.no_faults:
        return FaultConfig()
    if any(
        (args.fault_drop, args.fault_duplicate, args.fault_delay, args.fault_crash)
    ):
        return FaultConfig(
            drop=args.fault_drop,
            duplicate=args.fault_duplicate,
            delay=args.fault_delay,
            crash=args.fault_crash,
            max_faults=args.fault_budget,
        )
    return None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Systematic concurrency tester for P# programs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    test = sub.add_parser(
        "test", help="run a bug-finding campaign against a target program"
    )
    test.add_argument(
        "target",
        nargs="?",
        help="benchmark name/alias (e.g. Raft, 2PhaseCommit) or "
        "module:Class; omit when passing --config",
    )
    test.add_argument(
        "--config", metavar="FILE",
        help="run a campaign file (TestConfig JSON, see docs/cli.md) "
        "instead of a TARGET; only --seed, --portfolio, --expect-bug, "
        "--save-trace, --checkpoint/--resume and the observability "
        "flags may be combined with it",
    )
    test.add_argument(
        "--strategy", action="append", metavar="NAME[,KW=V...]",
        help=f"scheduling strategy ({', '.join(strategy_names())}); "
        "repeat for a portfolio of explicit strategies",
    )
    test.add_argument(
        "--portfolio", type=int, metavar="N",
        help="run the default diverse portfolio mix across N worker processes",
    )
    test.add_argument("--seed", type=int, help="campaign seed")
    test.add_argument(
        "--max-iterations", type=int, default=10_000, metavar="N",
        help="schedules to explore (default: 10000, the paper's budget)",
    )
    test.add_argument(
        "--time-limit", type=float, default=300.0, metavar="SECONDS",
        help="wall-clock budget (default: 300, the paper's 5 minutes)",
    )
    test.add_argument(
        "--max-hot-steps", type=int, default=1000, metavar="N",
        help="liveness temperature threshold (fair steps a monitor may stay hot)",
    )
    test.add_argument(
        "--livelock-as-bug", action="store_true",
        help="report depth-bound cutoffs under fair strategies as potential livelocks",
    )
    test.add_argument(
        "--keep-going", action="store_true",
        help="keep exploring after the first bug (estimate bug density)",
    )
    test.add_argument(
        "--iteration-timeout", type=float, metavar="SECONDS",
        help="per-iteration watchdog: cancel an execution stuck longer "
        "than this and continue the campaign (counted as watchdog hits)",
    )
    reduction = test.add_argument_group(
        "schedule-space reduction",
        "explore fewer schedules without missing bugs (docs/reduction.md)",
    )
    reduction.add_argument(
        "--reduction", choices=REDUCTION_MODES, default=None,
        help="reduction mode: dpor (dynamic partial-order reduction on "
        "DFS-family strategies), dpor+state-cache (adds fingerprint "
        "state caching for every strategy), dpor+state-cache+clauses "
        "(learns prefix clauses from cache hits); default: none",
    )
    reduction.add_argument(
        "--state-cache-size", type=int, metavar="N", default=None,
        help="bound on the state cache (entries, LRU-evicted; default: "
        f"{DEFAULT_STATE_CACHE_SIZE})",
    )
    test.add_argument(
        "--checkpoint", metavar="FILE",
        help="periodically persist portfolio-campaign progress to FILE "
        "(implies a portfolio campaign)",
    )
    test.add_argument(
        "--resume", metavar="FILE",
        help="resume a killed portfolio campaign from its checkpoint, "
        "skipping shards whose reports were already persisted",
    )
    _add_budget_arguments(test)
    _add_fault_arguments(test)
    observability = test.add_argument_group(
        "observability",
        "see what the campaign explored, not just what it found",
    )
    observability.add_argument(
        "--coverage", action="store_true",
        help="collect activity coverage (states entered, transitions "
        "taken, events sent/dequeued) and print the coverage table",
    )
    observability.add_argument(
        "--coverage-report", metavar="FILE",
        help="save the full campaign report (coverage + telemetry "
        "included) to FILE for 'python -m repro report' (implies "
        "--coverage)",
    )
    observability.add_argument(
        "--events", metavar="FILE",
        help="append a JSONL event stream (campaign/shard/iteration "
        "spans, watchdog hits, worker supervision) to FILE",
    )
    test.add_argument(
        "--save-trace", metavar="FILE",
        help="write the first found bug's schedule trace to FILE",
    )
    test.add_argument(
        "--expect-bug", action="store_true",
        help="exit 1 unless the campaign found a bug (CI gating)",
    )

    rep = sub.add_parser(
        "replay", help="deterministically re-execute a recorded schedule"
    )
    rep.add_argument("target", help="the program the trace was recorded against")
    rep.add_argument(
        "--trace", required=True, metavar="FILE",
        help="trace file written by 'test --save-trace' or ScheduleTrace.save",
    )
    _add_budget_arguments(rep)
    _add_fault_arguments(rep)
    rep.add_argument(
        "--expect-bug", action="store_true",
        help="exit 1 unless the replay reproduced a bug",
    )

    bench = sub.add_parser("bench", help="inspect the benchmark registry")
    bench.add_argument(
        "--list", action="store_true", help="list all registered benchmarks"
    )

    report = sub.add_parser(
        "report", help="render a saved campaign report or checkpoint"
    )
    report.add_argument(
        "file",
        help="report file from 'test --coverage-report' or a campaign "
        "checkpoint from 'test --checkpoint'",
    )
    report.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report as JSON on stdout",
    )
    report.add_argument(
        "--dot", metavar="FILE",
        help="write a Graphviz digraph of the explored state space to "
        "FILE ('-' for stdout)",
    )

    serve = sub.add_parser(
        "serve",
        help="coordinate a distributed campaign fleet (docs/protocol.md)",
    )
    serve.add_argument(
        "--config", required=True, metavar="FILE",
        help="campaign file (TestConfig JSON) to shard across the fleet",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to accept TCP workers on (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, metavar="PORT",
        help="TCP port to accept workers on (0 = ephemeral, printed on "
        "stdout); omit to run on local --workers only",
    )
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="spawn N local stdio worker processes (default: 0)",
    )
    serve.add_argument(
        "--checkpoint", metavar="FILE",
        help="persist completed shards to FILE as they land",
    )
    serve.add_argument(
        "--resume", metavar="FILE",
        help="resume a killed fleet campaign from its checkpoint",
    )
    serve.add_argument(
        "--events", metavar="FILE",
        help="append the fleet's JSONL event stream (worker lifecycle, "
        "shard assignment/requeue, forwarded worker telemetry) to FILE; "
        "overrides the campaign file's events_path",
    )
    serve.add_argument(
        "--expect-bug", action="store_true",
        help="exit 1 unless the fleet campaign found a bug (CI gating)",
    )

    worker = sub.add_parser(
        "worker", help="run one fleet worker process (docs/protocol.md)"
    )
    worker.add_argument(
        "--stdio", action="store_true",
        help="speak the protocol over stdin/stdout (how 'serve --workers' "
        "runs its local workers)",
    )
    worker.add_argument(
        "--host", help="coordinator host to connect to over TCP"
    )
    worker.add_argument(
        "--port", type=int, metavar="PORT", help="coordinator port"
    )
    worker.add_argument(
        "--connect-timeout", type=float, default=10.0, metavar="SECONDS",
        help="keep retrying the TCP connection this long (default: 10)",
    )

    submit = sub.add_parser(
        "submit", help="attach local worker processes to a coordinator"
    )
    submit.add_argument(
        "--host", default="127.0.0.1", help="coordinator host"
    )
    submit.add_argument(
        "--port", type=int, required=True, metavar="PORT",
        help="coordinator port",
    )
    submit.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes to attach (default: 1)",
    )
    submit.add_argument(
        "--connect-timeout", type=float, default=10.0, metavar="SECONDS",
        help="per-worker connection retry budget (default: 10)",
    )
    return parser


def _report_lines(report) -> List[str]:
    lines = [report.summary(), f"backend: {report.effective_backend}"]
    for sub in report.sub_reports:
        lines.append(f"  worker {sub.summary()}")
    if report.watchdog_hits:
        lines.append(
            f"watchdog: {report.watchdog_hits} stuck execution(s) canceled"
        )
    if report.interrupted:
        lines.append("campaign interrupted (partial results)")
    if report.first_bug is not None:
        lines.append(f"bug: {report.first_bug}")
    elif report.exhausted:
        lines.append("search space exhausted, no bug found")
    else:
        lines.append("no bug found within the budget")
    return lines


def _cmd_test(args: argparse.Namespace) -> int:
    if (args.target is None) == (args.config is None):
        raise PSharpError("pass exactly one of TARGET or --config FILE")
    specs = [StrategySpec.parse(text) for text in args.strategy or []]
    if args.portfolio is not None and specs:
        raise PSharpError(
            "pass either --portfolio N (the default mix) or repeated "
            "--strategy entries (an explicit mix), not both"
        )
    if args.config is not None:
        if specs:
            raise PSharpError(
                "--strategy cannot be combined with --config; put the "
                "mix in the campaign file's 'specs' field instead"
            )
        config = TestConfig.load(args.config)
        overrides = {}
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.portfolio is not None:
            overrides["portfolio_workers"] = args.portfolio
        if args.coverage or args.coverage_report is not None:
            overrides["coverage"] = True
        if args.events is not None:
            overrides["events_path"] = args.events
        if args.reduction is not None:
            overrides["reduction"] = args.reduction
        if args.state_cache_size is not None:
            overrides["state_cache_size"] = args.state_cache_size
        if overrides:
            config = config.with_overrides(**overrides)
        portfolio = (
            args.portfolio is not None
            or config.specs is not None
            or args.checkpoint is not None
            or args.resume is not None
        )
        campaign = Campaign(config)
        report = (
            campaign.portfolio(checkpoint=args.checkpoint, resume=args.resume)
            if portfolio
            else campaign.run()
        )
        return _finish_test(args, report)
    # Checkpoint/resume are portfolio-campaign features: asking for them
    # promotes a single-strategy invocation to a 1-shard portfolio.
    portfolio = (
        args.portfolio is not None
        or len(specs) > 1
        or args.checkpoint is not None
        or args.resume is not None
    )
    config = TestConfig(
        program=args.target,
        strategy=specs[0] if len(specs) == 1 else None,
        specs=tuple(specs) if len(specs) > 1 else None,
        seed=args.seed,
        max_iterations=args.max_iterations,
        time_limit=args.time_limit,
        max_steps=args.max_steps,
        stop_on_first_bug=not args.keep_going,
        livelock_as_bug=args.livelock_as_bug,
        workers=args.workers,
        max_hot_steps=args.max_hot_steps,
        # None -> the facade default; explicit values (0 included) go
        # through TestConfig validation so --portfolio 0 is rejected.
        portfolio_workers=args.portfolio if args.portfolio is not None else 4,
        faults=_fault_config_from_args(args),
        iteration_timeout=args.iteration_timeout,
        coverage=args.coverage or args.coverage_report is not None,
        events_path=args.events,
        reduction=args.reduction if args.reduction is not None else "none",
        state_cache_size=(
            args.state_cache_size
            if args.state_cache_size is not None
            else DEFAULT_STATE_CACHE_SIZE
        ),
    )
    if portfolio and len(specs) == 1 and args.portfolio is None:
        # --checkpoint/--resume with one --strategy: that one spec is the
        # whole (resumable) mix rather than the default 4-worker blend.
        config = config.with_overrides(specs=(specs[0],), portfolio_workers=1)
    campaign = Campaign(config)
    report = (
        campaign.portfolio(checkpoint=args.checkpoint, resume=args.resume)
        if portfolio
        else campaign.run()
    )
    return _finish_test(args, report)


def _finish_test(args: argparse.Namespace, report) -> int:
    """Shared `test` epilogue: print the report, save artifacts, map the
    outcome to the exit-code convention."""
    for line in _report_lines(report):
        print(line)
    if report.coverage is not None:
        from .testing.reporting import coverage_table

        for line in coverage_table(report.coverage):
            print(line)
    if args.coverage_report:
        from .testing.reporting import save_report

        save_report(args.coverage_report, report)
        print(f"campaign report saved to {args.coverage_report}")
    if args.save_trace:
        bug = report.first_bug
        if bug is None or bug.trace is None:
            print("no trace to save (no bug found)", file=sys.stderr)
        else:
            bug.trace.save(args.save_trace)
            print(
                f"trace saved to {args.save_trace} "
                f"({len(bug.trace)} decisions)"
            )
    if report.interrupted:
        # The conventional 128+SIGINT code: scripts watching the campaign
        # can tell "killed mid-flight, checkpoint written" from failure.
        return 130
    if args.expect_bug and not report.bug_found:
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    config = TestConfig(
        program=args.target,
        max_steps=args.max_steps,
        workers=args.workers,
        faults=_fault_config_from_args(args),
    )
    result = Campaign(config).replay(args.trace)
    assert result is not None  # an explicit trace always replays
    print(f"status: {result.status}")
    if result.bug is not None:
        print(f"reproduced: {result.bug}")
    else:
        print("no bug reproduced")
    if args.expect_bug and not result.buggy:
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if not args.list:
        print("error: nothing to do — pass --list", file=sys.stderr)
        return 2
    from .bench.registry import all_benchmarks

    rows = []
    for benchmark in sorted(all_benchmarks(), key=lambda b: (b.suite, b.name)):
        variants = [
            name
            for name in ("correct", "racy", "buggy")
            if getattr(benchmark, name) is not None
        ]
        monitored = benchmark.buggy or benchmark.correct
        monitors = ",".join(m.__name__ for m in monitored.monitors) or "-"
        rows.append(
            (benchmark.name, benchmark.suite, "/".join(variants),
             benchmark.bug_kind if benchmark.buggy else "-", monitors)
        )
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    header = ("name", "suite", "variants", "bug kind", "monitors")
    widths = [max(w, len(h)) for w, h in zip(widths, header[:4])] + [0]
    for row in (header, *rows):
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json as json_module

    from .testing.reporting import (
        coverage_table,
        coverage_dot,
        load_campaign,
        report_json,
    )

    report = load_campaign(args.file)
    if args.json:
        print(json_module.dumps(report_json(report), indent=2, sort_keys=True))
    elif args.dot == "-":
        pass  # stdout carries only the digraph, pipeable into `dot -Tsvg`
    else:
        for line in _report_lines(report):
            print(line)
        if report.coverage is not None:
            for line in coverage_table(report.coverage):
                print(line)
        else:
            print("no activity coverage recorded (run test with --coverage)")
        if report.telemetry is not None:
            for line in report.telemetry.summary_lines():
                print(line)
    if args.dot:
        if report.coverage is None:
            print(
                "error: no coverage in this report; --dot needs a campaign "
                "run with --coverage",
                file=sys.stderr,
            )
            return 2
        dot = coverage_dot(report.coverage)
        if args.dot == "-":
            sys.stdout.write(dot)
        else:
            with open(args.dot, "w", encoding="utf-8") as fh:
                fh.write(dot)
            print(f"coverage digraph written to {args.dot}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .testing.fleet import run_fleet

    if args.port is None and args.workers <= 0:
        raise PSharpError(
            "serve needs at least one worker source: --port to accept TCP "
            "workers, and/or --workers N local processes"
        )
    config = TestConfig.load(args.config)
    if args.events is not None:
        config = config.with_overrides(events_path=args.events)

    def on_listen(host: str, port: int) -> None:
        print(f"fleet: listening on {host}:{port}", flush=True)

    report = run_fleet(
        config,
        host=args.host,
        port=args.port,
        local_workers=args.workers,
        checkpoint=args.checkpoint,
        resume=args.resume,
        on_listen=on_listen,
    )
    for line in _report_lines(report):
        print(line)
    if report.coverage is not None:
        from .testing.reporting import coverage_table

        for line in coverage_table(report.coverage):
            print(line)
    if report.interrupted:
        return 130
    if args.expect_bug and not report.bug_found:
        return 1
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .testing.fleet import Connection, connect_worker, worker_loop

    if args.stdio == (args.host is not None):
        raise PSharpError("pass exactly one of --stdio or --host/--port")
    if args.stdio:
        # stdout is the protocol channel: keep its raw fd for frames and
        # point fd 1 at stderr so any stray print() cannot corrupt it.
        wire_out = os.dup(sys.stdout.fileno())
        os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
        conn = Connection(sys.stdin.fileno(), wire_out, label="stdio")
    else:
        if args.port is None:
            raise PSharpError("--host needs --port")
        conn = connect_worker(
            args.host, args.port, connect_timeout=args.connect_timeout
        )
    try:
        completed = worker_loop(conn)
    finally:
        conn.close()
    print(f"worker: {completed} shard(s) completed", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import subprocess

    from .testing.fleet import worker_environment

    if args.workers < 1:
        raise PSharpError("submit needs --workers >= 1")
    command = [
        sys.executable, "-m", "repro", "worker",
        "--host", args.host, "--port", str(args.port),
        "--connect-timeout", str(args.connect_timeout),
    ]
    procs = [
        subprocess.Popen(command, env=worker_environment())
        for _ in range(args.workers)
    ]
    failures = sum(1 for proc in procs if proc.wait() != 0)
    print(
        f"submit: {len(procs) - failures}/{len(procs)} worker(s) "
        "completed cleanly",
        file=sys.stderr,
    )
    return 2 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "test": _cmd_test,
        "replay": _cmd_replay,
        "bench": _cmd_bench,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "submit": _cmd_submit,
    }[args.command]
    try:
        return handler(args)
    except PSharpError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into e.g. `head` that exited: the Unix convention
        # is to die quietly.  Point stdout at /dev/null so the
        # interpreter's exit-time flush cannot raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
