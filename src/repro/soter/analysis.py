"""Flow-insensitive whole-program points-to + ownership-transfer check."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..lang.ir import (
    Assign,
    Call,
    ClassDecl,
    CreateMachine,
    External,
    LoadField,
    MethodDecl,
    New,
    Program,
    Return,
    Send,
    Stmt,
    StoreField,
    flatten,
    is_scalar,
)

Region = Tuple[str, ...]  # ("alloc", method, idx) | ("this", cls) | ("param", m, p) | ("ext",)
Var = Tuple[str, str, str]  # (class, method, var)


@dataclass
class SoterViolation:
    machine: str
    method: str
    send_loc: str
    reason: str

    def __str__(self) -> str:
        return f"{self.machine}.{self.method} @{self.send_loc}: {self.reason}"


class SoterAnalysis:
    """Andersen-style constraint solver over the whole program.

    Deliberately framework-blind: sends are just calls that copy a value
    out; the state-machine structure (which handler runs in which state,
    payload freshness per receive) is *not* modelled — the defining
    difference from :mod:`repro.analysis` (Section 5.5).
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.pts: Dict[Var, Set[Region]] = {}
        self.heap: Dict[Region, Set[Region]] = {}
        self._send_sites: List[Tuple[str, str, Stmt]] = []  # (cls, method, stmt)
        self._copies: List[Tuple[Var, Var]] = []  # dst ⊇ src
        self._loads: List[Tuple[Var, Var]] = []  # dst ⊇ H(reach(src))
        self._stores: List[Tuple[Var, Var]] = []  # H(pts(dst)) ⊇ pts(src)
        self._build_constraints()
        self._solve()

    # ------------------------------------------------------------------
    def _var(self, cls: str, method: str, name: str) -> Var:
        return (cls, method, name)

    def _build_constraints(self) -> None:
        for cls in self.program.classes.values():
            if cls.taint_summary is not None:
                continue
            for method in cls.methods.values():
                self._method_constraints(cls, method)

    def _method_constraints(self, cls: ClassDecl, method: MethodDecl) -> None:
        this = self._var(cls.name, method.name, "this")
        self.pts.setdefault(this, set()).add(("this", cls.name))
        for param in method.params:
            if param.is_reference and param.type != "machine":
                var = self._var(cls.name, method.name, param.name)
                self.pts.setdefault(var, set()).add(
                    ("param", f"{cls.name}.{method.name}", param.name)
                )
        alloc_index = 0
        for stmt in flatten(method.body):
            mk = lambda v: self._var(cls.name, method.name, v)
            if isinstance(stmt, Assign):
                self._copies.append((mk(stmt.dst), mk(stmt.src)))
            elif isinstance(stmt, New):
                alloc_index += 1
                self.pts.setdefault(mk(stmt.dst), set()).add(
                    ("alloc", f"{cls.name}.{method.name}", str(alloc_index))
                )
            elif isinstance(stmt, External):
                self.pts.setdefault(mk(stmt.dst), set()).add(("ext",))
            elif isinstance(stmt, LoadField):
                self._loads.append((mk(stmt.dst), mk("this")))
            elif isinstance(stmt, StoreField):
                self._stores.append((mk("this"), mk(stmt.src)))
            elif isinstance(stmt, Call):
                self._call_constraints(cls, method, stmt, mk)
            elif isinstance(stmt, Send):
                if stmt.arg is not None:
                    self._send_sites.append((cls.name, method.name, stmt))
            elif isinstance(stmt, CreateMachine):
                if stmt.arg is not None:
                    self._send_sites.append((cls.name, method.name, stmt))

    def _call_constraints(self, cls, method, stmt: Call, mk) -> None:
        # Context-insensitive linkage: all call sites of a method merge.
        recv_type = method.var_type(stmt.recv) or (
            cls.name if stmt.recv == "this" else None
        )
        callee_cls = self.program.classes.get(recv_type) if recv_type else None
        if callee_cls is None or callee_cls.taint_summary is not None:
            # Container / unknown call: model as stores into the receiver
            # plus a load for the result — coarse, like SOTER's treatment
            # of framework code.
            for arg in stmt.args:
                self._stores.append((mk(stmt.recv), mk(arg)))
            if stmt.dst is not None:
                self._loads.append((mk(stmt.dst), mk(stmt.recv)))
            return
        callee = callee_cls.methods.get(stmt.method)
        if callee is None:
            for arg in stmt.args:
                self._stores.append((mk(stmt.recv), mk(arg)))
            if stmt.dst is not None:
                self._loads.append((mk(stmt.dst), mk(stmt.recv)))
            return
        callee_this = self._var(callee_cls.name, callee.name, "this")
        self._copies.append((callee_this, mk(stmt.recv)))
        for index, param in enumerate(callee.params):
            if index < len(stmt.args):
                callee_param = self._var(callee_cls.name, callee.name, param.name)
                self._copies.append((callee_param, mk(stmt.args[index])))
        if stmt.dst is not None:
            for ret_stmt in flatten(callee.body):
                if isinstance(ret_stmt, Return) and ret_stmt.var is not None:
                    ret_var = self._var(callee_cls.name, callee.name, ret_stmt.var)
                    self._copies.append((mk(stmt.dst), ret_var))

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for dst, src in self._copies:
                src_set = self.pts.get(src, set())
                dst_set = self.pts.setdefault(dst, set())
                if not src_set <= dst_set:
                    dst_set |= src_set
                    changed = True
            for this_var, src in self._stores:
                src_set = self.pts.get(src, set())
                for region in self.pts.get(this_var, set()):
                    bucket = self.heap.setdefault(region, set())
                    if not src_set <= bucket:
                        bucket |= src_set
                        changed = True
            for dst, src in self._loads:
                reach = self.reach(self.pts.get(src, set()))
                dst_set = self.pts.setdefault(dst, set())
                if not reach <= dst_set:
                    dst_set |= reach
                    changed = True

    def reach(self, regions: Set[Region]) -> Set[Region]:
        seen: Set[Region] = set()
        stack = list(regions)
        while stack:
            region = stack.pop()
            if region in seen:
                continue
            seen.add(region)
            stack.extend(self.heap.get(region, ()))
        return seen

    # ------------------------------------------------------------------
    def check(self) -> List[SoterViolation]:
        """Flag each payload whose region stays accessible to its sender."""
        violations: List[SoterViolation] = []
        machine_classes = {
            m.class_name: name for name, m in self.program.machines.items()
        }
        for cls_name, method_name, stmt in self._send_sites:
            machine = machine_classes.get(cls_name, cls_name)
            arg = stmt.arg  # type: ignore[union-attr]
            arg_var = self._var(cls_name, method_name, arg)
            transferred = self.reach(self.pts.get(arg_var, set()))
            if not transferred:
                continue
            retained = self.reach({("this", cls_name)})
            overlap = transferred & retained
            if overlap:
                violations.append(
                    SoterViolation(
                        machine,
                        method_name,
                        stmt.loc,
                        f"payload region(s) {sorted(overlap)[:2]} remain "
                        "reachable from the sender's state",
                    )
                )
                continue
            # Accessible from any *other* handler's variables (no flow or
            # state sensitivity: any co-resident reference counts).
            for var, regions in self.pts.items():
                var_cls, var_method, var_name = var
                if var_cls != cls_name or var_method == method_name:
                    continue
                if var_name == "this":
                    continue
                if transferred & self.reach(regions):
                    violations.append(
                        SoterViolation(
                            machine,
                            method_name,
                            stmt.loc,
                            f"payload aliased by {var_method}.{var_name} "
                            "elsewhere in the machine",
                        )
                    )
                    break
        return violations


def soter_analyze(program: Program) -> List[SoterViolation]:
    """Run the SOTER-style baseline and return its reported violations."""
    return SoterAnalysis(program).check()
