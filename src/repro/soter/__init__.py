"""A SOTER-style ownership-transfer inference baseline (Sections 5.5, 7.2.1).

SOTER [20] "builds upon a field-sensitive points-to analysis.  This
analysis is non-modular and does not leverage an understanding of the
underlying (actor) framework.  As a consequence, SOTER needs to sacrifice
precision to achieve scalability.  Our analysis achieves scalability
without sacrificing precision exactly by leveraging the semantics of the
P# framework."

This baseline reproduces that structural weakness on the same IR:

* a whole-program, *flow-insensitive*, context-insensitive Andersen-style
  points-to analysis (one abstract region per allocation site / symbolic
  parameter, merged across all call sites);
* an ownership check that flags a send when any region reachable from the
  payload is also reachable from the sending machine's state or from any
  variable of its other handlers — with no notion of where in the state
  machine the access happens.

Flow-insensitivity makes the idioms our analysis verifies invisible: a
field reset after a send (Example 5.5), a fresh payload per loop
iteration, or stage-then-send across states all remain flagged — the
source of SOTER's false positives on its own benchmarks (e.g. 70 on
Swordfish, Section 7.2.1).
"""

from .analysis import SoterAnalysis, SoterViolation, soter_analyze

__all__ = ["SoterAnalysis", "SoterViolation", "soter_analyze"]
