"""Benchmark registry: the 12 protocol implementations + AsyncSystem.

Mirrors the paper's two suites (Section 7.2):

* **PSharpBench** — BoundedAsync, German, BasicPaxos, TwoPhaseCommit,
  Chord, MultiPaxos, Raft, ChainReplication.  Each has a *correct*
  (non-racy) variant used for Table 1's precision columns, a *racy*
  variant with deliberately seeded ownership races ("Found all data
  races?"), and a *buggy* variant with an interleaving-dependent safety
  bug for Table 2.
* **SOTER-P#** — Leader, Pi, Chameneos, Swordfish: ports of the four
  worst-performing SOTER benchmarks, used for the precision comparison
  (our analyzer verifies all four; the SOTER-style baseline reports
  false positives).

Plus the Section 7.1 case study stand-in, AsyncSystem, with its five
seeded bugs.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, Union

from ..core.machine import Machine, program_statistics
from ..errors import PSharpError


@dataclass
class Variant:
    """One runnable/analyzable configuration of a benchmark."""

    machines: List[Type[Machine]]
    main: Type[Machine]
    payload: Any = None
    helpers: Tuple[type, ...] = ()
    # Specification monitors (repro.testing.monitors) for this variant:
    # pass to the engine/runtime ``monitors=`` parameter to test the
    # program against its specifications.
    monitors: Tuple[type, ...] = ()
    # Default fault-injection config (repro.testing.faults.FaultConfig)
    # for this variant — fault-enabled benchmarks (suite "faults") carry
    # the fault environment their seeded bug needs; None everywhere else.
    # TestConfig.resolved_faults() picks this up for registry targets.
    faults: Optional[Any] = None


@dataclass
class Benchmark:
    name: str
    suite: str  # "psharpbench" | "soter" | "case-study" | "liveness"
    correct: Variant
    racy: Optional[Variant] = None
    buggy: Optional[Variant] = None
    seeded_races: int = 0  # give-up sites seeded racy in the racy variant
    bug_kind: str = "assertion-failure"
    notes: str = ""

    def loc(self) -> int:
        """Lines of benchmark source (Table 1's LoC column), counting each
        class in the machines' inheritance chains once."""
        seen = set()
        total = 0
        for cls in list(self.correct.machines) + list(self.correct.helpers):
            for klass in cls.__mro__:
                if klass in seen or klass in (Machine, object):
                    continue
                if klass.__module__.startswith("repro.core"):
                    continue
                seen.add(klass)
                total += len(inspect.getsource(klass).splitlines())
        return total

    def statistics(self) -> Dict[str, int]:
        """#M / #ST / #AB of the correct variant (Table 1)."""
        return program_statistics(self.correct.machines)


_REGISTRY: Dict[str, Benchmark] = {}

# The paper's tables abbreviate two benchmark names; accept both spellings
# everywhere a benchmark is looked up by name.
ALIASES: Dict[str, str] = {
    "2PhaseCommit": "TwoPhaseCommit",
    "ChReplication": "ChainReplication",
}


def resolve(name: str) -> str:
    """Canonical registry name for ``name`` (resolves table aliases)."""
    return ALIASES.get(name, name)


def register(benchmark: Benchmark) -> Benchmark:
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def all_benchmarks() -> List[Benchmark]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def get(name: str) -> Benchmark:
    _ensure_loaded()
    return _REGISTRY[resolve(name)]


def suite(name: str) -> List[Benchmark]:
    _ensure_loaded()
    return [b for b in _REGISTRY.values() if b.suite == name]


def names() -> List[str]:
    """Canonical registry names, sorted (CLI ``bench --list`` material)."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def resolve_target(target: Union[str, Type[Machine]]) -> Variant:
    """Resolve a campaign target specification into a runnable
    :class:`Variant` — the single resolution path behind
    :class:`repro.testing.config.TestConfig` and the ``python -m repro``
    CLI.  Three spellings are accepted:

    * a :class:`Machine` subclass — wrapped as a bare variant;
    * a registry benchmark name or table alias (``"Raft"``,
      ``"2PhaseCommit"``) — its *buggy* variant when one exists (the
      tester hunts bugs; registry monitors and payload ride along),
      otherwise the correct variant;
    * ``"module:Class"`` — imported and wrapped, so any user program on
      the path is targetable without registry plumbing.
    """
    if isinstance(target, type) and issubclass(target, Machine):
        return Variant(machines=[target], main=target)
    if not isinstance(target, str):
        raise PSharpError(
            f"campaign target must be a Machine subclass, a benchmark "
            f"name, or 'module:Class', got {target!r}"
        )
    if ":" in target:
        module_name, _, class_name = target.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise PSharpError(
                f"cannot import module {module_name!r} for target "
                f"{target!r}: {exc}"
            ) from exc
        cls = getattr(module, class_name, None)
        if cls is None:
            raise PSharpError(
                f"module {module_name!r} has no attribute {class_name!r}"
            )
        if not (isinstance(cls, type) and issubclass(cls, Machine)):
            raise PSharpError(
                f"{target!r} resolved to {cls!r}, which is not a Machine "
                "subclass"
            )
        return Variant(machines=[cls], main=cls)
    _ensure_loaded()
    canonical = resolve(target)
    if canonical not in _REGISTRY:
        raise PSharpError(
            f"unknown benchmark {target!r}; known: {', '.join(names())} "
            "(or pass 'module:Class')"
        )
    benchmark = _REGISTRY[canonical]
    return benchmark.buggy if benchmark.buggy is not None else benchmark.correct


def buggy_main(name: str) -> Type[Machine]:
    """The entry machine of ``name``'s buggy (Table 2) variant."""
    benchmark = get(name)
    if benchmark.buggy is None:
        raise KeyError(f"benchmark {benchmark.name!r} has no buggy variant")
    return benchmark.buggy.main


def table2_suite() -> List[Benchmark]:
    """The PSharpBench programs with a seeded Table 2 bug."""
    return [b for b in suite("psharpbench") if b.buggy is not None]


def liveness_suite() -> List[Benchmark]:
    """Benchmarks whose buggy variant is a livelock/starvation found via
    liveness-monitor temperature under a fair strategy (Section 7.2's
    hot/cold specification machines)."""
    return suite("liveness")


#: A small, fast, structurally diverse slice of the registry used to
#: smoke-check activity coverage: a leader-election protocol with
#: monitors (Raft), a protocol driven by a coherence directory (German),
#: a liveness benchmark with hot/cold monitor states (ProcessScheduler),
#: and a ring topology (TokenRing).
COVERAGE_SMOKE_NAMES = ("Raft", "German", "ProcessScheduler", "TokenRing")


def coverage_smoke_suite() -> List[Benchmark]:
    """The benchmarks CI drives with ``--coverage`` enabled.

    Kept deliberately small — coverage smoke runs on every backend, so
    each entry costs three campaigns — while still exercising ordinary
    machines, safety monitors, and hot/cold liveness monitors."""
    _ensure_loaded()
    return [_REGISTRY[name] for name in COVERAGE_SMOKE_NAMES]


_LOADED = False


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from . import (  # noqa: F401  (importing registers the benchmarks)
        async_system,
        basic_paxos,
        bounded_async,
        chain_replication,
        chord,
        fault_variants,
        german,
        multi_paxos,
        process_scheduler,
        raft,
        soter_suite,
        token_ring,
        two_phase_commit,
    )
