"""Benchmark registry: the 12 protocol implementations + AsyncSystem.

Mirrors the paper's two suites (Section 7.2):

* **PSharpBench** — BoundedAsync, German, BasicPaxos, TwoPhaseCommit,
  Chord, MultiPaxos, Raft, ChainReplication.  Each has a *correct*
  (non-racy) variant used for Table 1's precision columns, a *racy*
  variant with deliberately seeded ownership races ("Found all data
  races?"), and a *buggy* variant with an interleaving-dependent safety
  bug for Table 2.
* **SOTER-P#** — Leader, Pi, Chameneos, Swordfish: ports of the four
  worst-performing SOTER benchmarks, used for the precision comparison
  (our analyzer verifies all four; the SOTER-style baseline reports
  false positives).

Plus the Section 7.1 case study stand-in, AsyncSystem, with its five
seeded bugs.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from ..core.machine import Machine, program_statistics


@dataclass
class Variant:
    """One runnable/analyzable configuration of a benchmark."""

    machines: List[Type[Machine]]
    main: Type[Machine]
    payload: Any = None
    helpers: Tuple[type, ...] = ()
    # Specification monitors (repro.testing.monitors) for this variant:
    # pass to the engine/runtime ``monitors=`` parameter to test the
    # program against its specifications.
    monitors: Tuple[type, ...] = ()


@dataclass
class Benchmark:
    name: str
    suite: str  # "psharpbench" | "soter" | "case-study" | "liveness"
    correct: Variant
    racy: Optional[Variant] = None
    buggy: Optional[Variant] = None
    seeded_races: int = 0  # give-up sites seeded racy in the racy variant
    bug_kind: str = "assertion-failure"
    notes: str = ""

    def loc(self) -> int:
        """Lines of benchmark source (Table 1's LoC column), counting each
        class in the machines' inheritance chains once."""
        seen = set()
        total = 0
        for cls in list(self.correct.machines) + list(self.correct.helpers):
            for klass in cls.__mro__:
                if klass in seen or klass in (Machine, object):
                    continue
                if klass.__module__.startswith("repro.core"):
                    continue
                seen.add(klass)
                total += len(inspect.getsource(klass).splitlines())
        return total

    def statistics(self) -> Dict[str, int]:
        """#M / #ST / #AB of the correct variant (Table 1)."""
        return program_statistics(self.correct.machines)


_REGISTRY: Dict[str, Benchmark] = {}

# The paper's tables abbreviate two benchmark names; accept both spellings
# everywhere a benchmark is looked up by name.
ALIASES: Dict[str, str] = {
    "2PhaseCommit": "TwoPhaseCommit",
    "ChReplication": "ChainReplication",
}


def resolve(name: str) -> str:
    """Canonical registry name for ``name`` (resolves table aliases)."""
    return ALIASES.get(name, name)


def register(benchmark: Benchmark) -> Benchmark:
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def all_benchmarks() -> List[Benchmark]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def get(name: str) -> Benchmark:
    _ensure_loaded()
    return _REGISTRY[resolve(name)]


def suite(name: str) -> List[Benchmark]:
    _ensure_loaded()
    return [b for b in _REGISTRY.values() if b.suite == name]


def buggy_main(name: str) -> Type[Machine]:
    """The entry machine of ``name``'s buggy (Table 2) variant."""
    benchmark = get(name)
    if benchmark.buggy is None:
        raise KeyError(f"benchmark {benchmark.name!r} has no buggy variant")
    return benchmark.buggy.main


def table2_suite() -> List[Benchmark]:
    """The PSharpBench programs with a seeded Table 2 bug."""
    return [b for b in suite("psharpbench") if b.buggy is not None]


def liveness_suite() -> List[Benchmark]:
    """Benchmarks whose buggy variant is a livelock/starvation found via
    liveness-monitor temperature under a fair strategy (Section 7.2's
    hot/cold specification machines)."""
    return suite("liveness")


_LOADED = False


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from . import (  # noqa: F401  (importing registers the benchmarks)
        async_system,
        basic_paxos,
        bounded_async,
        chain_replication,
        chord,
        german,
        multi_paxos,
        process_scheduler,
        raft,
        soter_suite,
        token_ring,
        two_phase_commit,
    )
