"""SOTER-P#: ports of the four worst-performing SOTER benchmarks [20]
(Section 7.2.1): Leader, Pi, Chameneos and Swordfish.

These are precision benchmarks for the static analysis: each one uses an
ownership idiom that a flow-insensitive, framework-blind points-to
analysis cannot discharge (field staged-and-reset payloads, fresh
payloads per loop iteration, handoff buffers), so the SOTER-style
baseline reports false positives while the P# analysis verifies all four
— reproducing Table 1's SOTER-P# rows (and the "e.g. 70 false positives
in Swordfish" comparison, directionally).
"""

from __future__ import annotations

from ..core.events import Event, Halt
from ..core.machine import Machine, State


# ---------------------------------------------------------------------------
# Leader: Chang-Roberts leader election on a unidirectional ring.
# ---------------------------------------------------------------------------
class ESetRing(Event):
    """(next node, my uid, reporter)"""


class EElection(Event):
    """(uid being forwarded)"""


class ELeader(Event):
    """(leader uid)"""


class LeaderNode(Machine):
    class Electing(State):
        initial = True
        entry = "noop"
        transitions = {ESetRing: "Ringed"}
        deferred = (EElection,)

    class Ringed(State):
        entry = "start"
        actions = {EElection: "on_election"}
        ignored = (ELeader,)

    def noop(self):
        pass

    def start(self):
        config = self.payload
        self.next_node = config[0]
        self.uid = config[1]
        self.reporter = config[2]
        self.send(self.next_node, EElection(self.uid))

    def on_election(self):
        uid = self.payload
        if uid > self.uid:
            self.send(self.next_node, EElection(uid))
        elif uid == self.uid:
            self.send(self.reporter, ELeader(self.uid))


class LeaderReporter(Machine):
    class Waiting(State):
        initial = True
        entry = "setup"
        actions = {ELeader: "on_leader"}

    def setup(self):
        nodes = []
        nodes.append(self.create_machine(LeaderNode))
        nodes.append(self.create_machine(LeaderNode))
        nodes.append(self.create_machine(LeaderNode))
        self.send(nodes[0], ESetRing((nodes[1], 5, self.id)))
        self.send(nodes[1], ESetRing((nodes[2], 9, self.id)))
        self.send(nodes[2], ESetRing((nodes[0], 3, self.id)))
        self.leader = None

    def on_leader(self):
        uid = self.payload
        self.assert_that(uid == 9, "wrong leader elected")
        self.leader = uid
        self.halt()


# ---------------------------------------------------------------------------
# Pi: master/worker numeric integration.  Workers build a fresh result
# record per task — the fresh-payload idiom SOTER merges across iterations.
# ---------------------------------------------------------------------------
class ETask(Event):
    """(master, slice index)"""


class EResult(Event):
    """[slice index, partial sum] as a fresh list per task"""


class PiWorker(Machine):
    class Working(State):
        initial = True
        entry = "noop"
        actions = {ETask: "on_task"}

    def noop(self):
        pass

    def on_task(self):
        msg = self.payload
        master = msg[0]
        index = msg[1]
        result = [index, index * 4]  # fresh record per task: verifiable
        self.send(master, EResult(result))


class PiMaster(Machine):
    class Distributing(State):
        initial = True
        entry = "setup"
        actions = {EResult: "on_result"}

    def setup(self):
        self.total = 0
        self.pending = 4
        self.workers = []
        self.workers.append(self.create_machine(PiWorker))
        self.workers.append(self.create_machine(PiWorker))
        for i in range(4):
            worker = self.workers[i % 2]
            self.send(worker, ETask((self.id, i)))

    def on_result(self):
        record = self.payload
        self.total = self.total + record[1]
        self.pending = self.pending - 1
        if self.pending == 0:
            self.assert_that(self.total == 24, "partial sums lost")
            for worker in self.workers:
                self.send(worker, Halt())
            self.halt()


# ---------------------------------------------------------------------------
# Chameneos: creatures meet at a broker and swap colours.  The broker
# stages the first creature of a pair in a field and clears it when the
# pair is formed — the staged-and-reset idiom (needs xSA; defeats SOTER).
# ---------------------------------------------------------------------------
class EMeet(Event):
    """(creature, colour)"""


class EMeeting(Event):
    """(partner colour)"""


class EFaded(Event):
    pass


class ChameneosBroker(Machine):
    class Brokering(State):
        initial = True
        entry = "setup"
        actions = {EMeet: "on_meet"}

    def setup(self):
        self.waiting = None
        self.meetings_left = 4
        self.create_machine(Creature, (self.id, 0))
        self.create_machine(Creature, (self.id, 1))
        self.create_machine(Creature, (self.id, 2))

    def on_meet(self):
        msg = self.payload
        creature = msg[0]
        colour = msg[1]
        if self.meetings_left == 0:
            self.send(creature, EFaded())
            return
        if self.waiting is None:
            self.waiting = msg  # stage the first of the pair
        else:
            first = self.waiting
            self.waiting = None  # reset: xSA verifies, SOTER cannot
            self.meetings_left = self.meetings_left - 1
            self.send(first[0], EMeeting(colour))
            self.send(creature, EMeeting(first[1]))


class Creature(Machine):
    class Roaming(State):
        initial = True
        entry = "setup"
        actions = {EMeeting: "on_meeting", EFaded: "on_faded"}

    def setup(self):
        config = self.payload
        self.broker = config[0]
        self.colour = config[1]
        self.meetings = 0
        self.send(self.broker, EMeet((self.id, self.colour)))

    def on_meeting(self):
        partner_colour = self.payload
        # complement rule: the two colours become the third colour
        self.colour = 3 - (self.colour + partner_colour) % 3
        self.meetings = self.meetings + 1
        self.send(self.broker, EMeet((self.id, self.colour)))

    def on_faded(self):
        self.halt()


# ---------------------------------------------------------------------------
# Swordfish: a booking system — front desk stages request records in
# fields, forwards them to a backend pool, and recycles buffers.  The mix
# of staging, resets and buffer reuse is what drove SOTER to 70 FPs.
# ---------------------------------------------------------------------------
class EBook(Event):
    """(client, room class)"""


class EProcess(Event):
    """request record handed to the backend"""


class EConfirm(Event):
    """(booking id)"""


class EBackendDone(Event):
    pass


class SwordfishBackend(Machine):
    class Processing(State):
        initial = True
        entry = "setup"
        actions = {EProcess: "on_process"}

    def setup(self):
        self.front = self.payload
        self.processed = 0

    def on_process(self):
        record = self.payload
        client = record[0]
        booking = record[1]
        self.processed = self.processed + 1
        self.send(client, EConfirm(booking))
        self.send(self.front, EBackendDone())


class SwordfishFrontDesk(Machine):
    class Open(State):
        initial = True
        entry = "setup"
        actions = {EBook: "on_book", EBackendDone: "on_done"}

    def setup(self):
        self.backend = self.create_machine(SwordfishBackend, self.id)
        self.staged = None
        self.bookings = 0
        self.in_flight = 0

    def on_book(self):
        msg = self.payload
        client = msg[0]
        self.bookings = self.bookings + 1
        record = [client, self.bookings]  # fresh record per booking
        self.staged = record  # staged in a field ...
        self.forward()

    def forward(self):
        record = self.staged
        self.staged = None  # ... and reset before handing off
        if record is not None:
            self.in_flight = self.in_flight + 1
            self.send(self.backend, EProcess(record))

    def on_done(self):
        self.in_flight = self.in_flight - 1
        self.assert_that(self.in_flight >= 0, "backend over-acknowledged")


class SwordfishClient(Machine):
    class Booking(State):
        initial = True
        entry = "setup"
        actions = {EConfirm: "on_confirm"}

    def setup(self):
        self.front = self.create_machine(SwordfishFrontDesk)
        self.confirmed = 0
        self.send(self.front, EBook((self.id, 1)))
        self.send(self.front, EBook((self.id, 2)))

    def on_confirm(self):
        self.confirmed = self.confirmed + 1
        if self.confirmed == 2:
            self.halt()


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="Leader",
        suite="soter",
        correct=Variant(machines=[LeaderReporter, LeaderNode], main=LeaderReporter),
        notes="Chang-Roberts ring election",
    )
)
register(
    Benchmark(
        name="Pi",
        suite="soter",
        correct=Variant(machines=[PiMaster, PiWorker], main=PiMaster),
        notes="fresh result record per task",
    )
)
register(
    Benchmark(
        name="Chameneos",
        suite="soter",
        correct=Variant(machines=[ChameneosBroker, Creature], main=ChameneosBroker),
        notes="staged-and-reset pairing buffer",
    )
)
register(
    Benchmark(
        name="Swordfish",
        suite="soter",
        correct=Variant(
            machines=[SwordfishClient, SwordfishFrontDesk, SwordfishBackend],
            main=SwordfishClient,
        ),
        notes="staging + buffer recycling: SOTER's 70-FP benchmark",
    )
)
