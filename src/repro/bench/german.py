"""German's cache coherence protocol [10] (ported from the P benchmarks).

A host serializes coherence for three clients.  Clients request shared or
exclusive access; before granting exclusive access the host invalidates
every current sharer and waits for all invalidation acks.  The safety
invariant — checked by the clients — is single-writer: a client granted
exclusive access asserts that no other client still holds access.

Variants
--------
buggy
    The host grants exclusive access after the *first* invalidation ack
    instead of all of them, so with two concurrent sharers the requester
    is granted exclusivity while the second sharer's access is still
    live.  The ``LivelockHost`` sub-variant reproduces the livelock the
    paper found in German (Section 7.2.2): after the workload completes,
    one machine spins re-sending itself a drain event forever —
    detectable only through the depth bound.
racy
    The host sends its live sharer list as a grant payload and keeps
    mutating it afterwards.
"""

from __future__ import annotations

from ..core.events import Event, Halt
from ..core.machine import Machine, State


class EReqShared(Event):
    pass


class EReqExcl(Event):
    pass


class EInvalidate(Event):
    pass


class EInvAck(Event):
    pass


class EGrantShared(Event):
    pass


class EGrantExcl(Event):
    pass


class EAccessDone(Event):
    pass


class EDrain(Event):
    pass


class EStuck(Event):
    pass


REQUESTS_PER_CLIENT = 2
TOTAL_GRANTS = 6  # 3 clients x REQUESTS_PER_CLIENT


class Client(Machine):
    """Issues a bounded stream of nondeterministic share/excl requests."""

    class Serving(State):
        initial = True
        entry = "setup"
        actions = {
            EGrantShared: "on_grant_shared",
            EGrantExcl: "on_grant_excl",
            EInvalidate: "on_invalidate",
        }

    def setup(self):
        self.host = self.payload
        self.mode = 0  # 0 = none, 1 = shared, 2 = exclusive
        self.issued = 0
        self.request_next()

    def request_next(self):
        if self.issued < REQUESTS_PER_CLIENT:
            self.issued = self.issued + 1
            if self.nondet():
                self.send(self.host, EReqExcl(self.id))
            else:
                self.send(self.host, EReqShared(self.id))

    def on_grant_shared(self):
        self.mode = 1
        self.send(self.host, EAccessDone(self.id))
        self.request_next()

    def on_grant_excl(self):
        self.mode = 2
        other_holders = self.payload
        self.assert_that(
            other_holders == 0,
            "exclusive access granted while another client holds access",
        )
        self.send(self.host, EAccessDone(self.id))
        self.request_next()

    def on_invalidate(self):
        self.mode = 0
        self.send(self.host, EInvAck(self.id))


class Host(Machine):
    """Serializes coherence requests; defers requests while invalidating."""

    class Boot(State):
        initial = True
        entry = "setup"
        transitions = {EReqShared: "Sharing", EReqExcl: "Excluding"}
        actions = {EAccessDone: "on_done"}

    class Idle(State):
        transitions = {EReqShared: "Sharing", EReqExcl: "Excluding"}
        actions = {EAccessDone: "on_done"}

    class Sharing(State):
        entry = "grant_shared"
        transitions = {
            EReqShared: "Sharing",
            EReqExcl: "Excluding",
            EStuck: "Draining",
        }
        actions = {EAccessDone: "on_done"}

    class Excluding(State):
        entry = "start_invalidation"
        actions = {EInvAck: "on_inv_ack", EAccessDone: "on_done"}
        deferred = (EReqShared, EReqExcl)
        transitions = {EDrain: "Idle", EStuck: "Draining"}

    class Draining(State):
        entry = "on_drained"

    def setup(self):
        self.sharers = []
        self.owner = None
        self.requester = None
        self.acks_needed = 0
        self.grants = 0
        self.clients = []
        self.clients.append(self.create_machine(Client, self.id))
        self.clients.append(self.create_machine(Client, self.id))
        self.clients.append(self.create_machine(Client, self.id))

    def grant_shared(self):
        requester = self.payload
        self.grants = self.grants + 1
        if requester not in self.sharers:
            self.sharers.append(requester)
        self.owner = None
        self.send(requester, EGrantShared())
        self.check_finished()

    def start_invalidation(self):
        self.requester = self.payload
        self.acks_needed = len(self.sharers)
        if self.owner is not None and self.owner != self.requester:
            self.acks_needed = self.acks_needed + 1
            self.send(self.owner, EInvalidate())
        for sharer in self.sharers:
            self.send(sharer, EInvalidate())
        if self.acks_needed == 0:
            self.finish_exclusive(0)

    def on_inv_ack(self):
        self.acks_needed = self.acks_needed - 1
        if self.acks_needed == 0:
            self.finish_exclusive(0)

    def finish_exclusive(self, still_live):
        self.grants = self.grants + 1
        self.sharers = []
        self.owner = self.requester
        self.send(self.requester, EGrantExcl(still_live))
        self.send(self.id, EDrain())
        self.check_finished()

    def on_done(self):
        pass

    def check_finished(self):
        if self.grants >= TOTAL_GRANTS:
            for client in self.clients:
                self.send(client, Halt())
            self.halt()

    def on_drained(self):
        self.halt()


class BuggyHost(Host):
    """Grants exclusive access after the FIRST invalidation ack; the
    remaining sharers still believe they hold shared access."""

    def on_inv_ack(self):
        self.acks_needed = self.acks_needed - 1
        # BUG: should require acks_needed == 0 before granting.
        self.finish_exclusive(self.acks_needed)


class LivelockHost(Host):
    """After the workload completes, spins on a self-sent drain event
    instead of halting — the shape of the paper's German livelock."""

    class Draining(State):
        entry = "on_drained"
        actions = {EDrain: "on_drained"}
        ignored = (EReqShared, EReqExcl, EAccessDone, EInvAck)

    def check_finished(self):
        if self.grants >= TOTAL_GRANTS:
            for client in self.clients:
                self.send(client, Halt())
            self.raise_event(EStuck())

    def on_drained(self):
        self.send(self.id, EDrain())  # livelock: forever re-enqueued


class RacyHost(Host):
    """Sends its live sharer list with a grant and keeps mutating it."""

    def grant_shared(self):
        requester = self.payload
        self.grants = self.grants + 1
        if requester not in self.sharers:
            self.sharers.append(requester)
        self.owner = None
        self.send(requester, EGrantShared(self.sharers))  # seeded race
        self.check_finished()


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="German",
        suite="psharpbench",
        correct=Variant(machines=[Host, Client], main=Host),
        racy=Variant(machines=[RacyHost, Client], main=RacyHost),
        buggy=Variant(machines=[BuggyHost, Client], main=BuggyHost),
        seeded_races=1,
        notes=(
            "invalidation-ack bug; LivelockHost reproduces the self-send "
            "livelock found via the depth bound (Section 7.2.2)"
        ),
    )
)
