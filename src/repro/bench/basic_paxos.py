"""Lamport's single-decree Paxos [16] (ported from the P benchmarks).

Two proposers compete to get a value chosen by three acceptors; a learner
checks the protocol's safety property: once a value is chosen (accepted
by a majority in some ballot), no different value is ever learned.

The paper notes that for BasicPaxos (and MultiPaxos) the bug had to be
injected artificially (Section 7.2): our buggy variant makes acceptors
forget their promise when a *lower* ballot's prepare arrives — a classic
transcription mistake that lets two majorities choose different values
under the right interleaving.

The racy variant shares a proposer's mutable proposal record with the
acceptors and mutates it after sending.
"""

from __future__ import annotations

from ..core.events import Event, Halt
from ..core.machine import Machine, State


class EPrepare(Event):
    """(proposer, ballot)"""


class EPromise(Event):
    """(acceptor, ballot, accepted_ballot, accepted_value)"""


class EAccept(Event):
    """(proposer, ballot, value)"""


class EAccepted(Event):
    """(ballot, value)"""


class ENack(Event):
    """(ballot)"""


class ELearned(Event):
    """(value) — learner tells the driver what was chosen."""


class EStart(Event):
    pass


class Acceptor(Machine):
    class Active(State):
        initial = True
        entry = "setup"
        actions = {EPrepare: "on_prepare", EAccept: "on_accept"}

    def setup(self):
        self.learner = self.payload
        self.promised = -1
        self.accepted_ballot = -1
        self.accepted_value = None

    def on_prepare(self):
        msg = self.payload
        proposer = msg[0]
        ballot = msg[1]
        if ballot > self.promised:
            self.promised = ballot
            self.send(
                proposer,
                EPromise((self.id, ballot, self.accepted_ballot, self.accepted_value)),
            )
        else:
            self.send(proposer, ENack(ballot))

    def on_accept(self):
        msg = self.payload
        proposer = msg[0]
        ballot = msg[1]
        value = msg[2]
        if ballot >= self.promised:
            self.promised = ballot
            self.accepted_ballot = ballot
            self.accepted_value = value
            self.send(self.learner, EAccepted((ballot, value)))
        else:
            self.send(proposer, ENack(ballot))


class BuggyAcceptor(Acceptor):
    """Injected bug: a stale prepare RESETS the promise, so an old
    proposer can later slip an accept past a newer promise."""

    def on_prepare(self):
        msg = self.payload
        proposer = msg[0]
        ballot = msg[1]
        if ballot > self.promised:
            self.promised = ballot
            self.send(
                proposer,
                EPromise((self.id, ballot, self.accepted_ballot, self.accepted_value)),
            )
        else:
            # BUG: must leave the promise untouched and nack.
            self.promised = ballot
            self.send(proposer, ENack(ballot))


class Proposer(Machine):
    class Idle(State):
        initial = True
        entry = "setup"
        transitions = {EStart: "Preparing"}

    class Preparing(State):
        entry = "send_prepares"
        actions = {EPromise: "on_promise", ENack: "on_nack_prepare"}
        transitions = {EStart: "Accepting"}
        ignored = (EAccepted,)

    class Accepting(State):
        entry = "send_accepts"
        actions = {ENack: "on_nack_accept"}
        transitions = {EStart: "Done"}
        ignored = (EPromise, EAccepted)

    class Done(State):
        ignored = (EPromise, ENack, EAccepted)

    def setup(self):
        config = self.payload
        self.acceptors = config[0]
        self.ballot = config[1]
        self.value = config[2]
        self.promises = 0
        self.best_ballot = -1

    def send_prepares(self):
        self.promises = 0
        self.best_ballot = -1
        for acceptor in self.acceptors:
            self.send(acceptor, EPrepare((self.id, self.ballot)))

    def on_promise(self):
        msg = self.payload
        ballot = msg[1]
        prior_ballot = msg[2]
        prior_value = msg[3]
        if ballot != self.ballot:
            return
        self.promises = self.promises + 1
        if prior_ballot > self.best_ballot and prior_value is not None:
            self.best_ballot = prior_ballot
            self.value = prior_value
        if self.promises >= 2:  # majority of 3
            self.raise_event(EStart())

    def on_nack_prepare(self):
        pass

    def send_accepts(self):
        for acceptor in self.acceptors:
            self.send(acceptor, EAccept((self.id, self.ballot, self.value)))
        self.raise_event(EStart())

    def on_nack_accept(self):
        pass


class Learner(Machine):
    """Tallies EAccepted per ballot; asserts a single chosen value."""

    class Watching(State):
        initial = True
        entry = "setup"
        actions = {EAccepted: "on_accepted"}

    def setup(self):
        self.counts = {}
        self.values = {}
        self.chosen = None

    def on_accepted(self):
        msg = self.payload
        ballot = msg[0]
        value = msg[1]
        if ballot not in self.counts:
            self.counts[ballot] = 0
        self.counts[ballot] = self.counts[ballot] + 1
        self.values[ballot] = value
        if self.counts[ballot] >= 2:  # majority accepted this ballot
            if self.chosen is None:
                self.chosen = value
            self.assert_that(
                self.chosen == value,
                "two different values were chosen",
            )


class PaxosDriver(Machine):
    """Closed-environment driver: 3 acceptors, 2 competing proposers."""

    class Booting(State):
        initial = True
        entry = "setup"

    def setup(self):
        learner = self.create_machine(Learner)
        acceptors = []
        acceptors.append(self.create_machine(Acceptor, learner))
        acceptors.append(self.create_machine(Acceptor, learner))
        acceptors.append(self.create_machine(Acceptor, learner))
        self.start_proposers(acceptors)

    def start_proposers(self, acceptors):
        p1 = self.create_machine(Proposer, (acceptors, 1, 111))
        p2 = self.create_machine(Proposer, (acceptors, 2, 222))
        self.send(p1, EStart())
        self.send(p2, EStart())
        self.halt()


class BuggyPaxosDriver(PaxosDriver):
    def setup(self):
        learner = self.create_machine(Learner)
        acceptors = []
        acceptors.append(self.create_machine(BuggyAcceptor, learner))
        acceptors.append(self.create_machine(BuggyAcceptor, learner))
        acceptors.append(self.create_machine(BuggyAcceptor, learner))
        self.start_proposers(acceptors)


class RacyProposer(Proposer):
    """Shares its mutable proposal record and mutates it after sending."""

    def send_prepares(self):
        self.promises = 0
        self.best_ballot = -1
        self.record = [self.ballot]
        for acceptor in self.acceptors:
            self.send(acceptor, EPrepare((self.id, self.ballot)))
        first = self.acceptors[0]
        self.send(first, ELearned(self.record))  # seeded race
        self.record.append(0)


class RacyPaxosDriver(PaxosDriver):
    def setup(self):
        learner = self.create_machine(Learner)
        acceptors = []
        acceptors.append(self.create_machine(RacyAcceptorStub, learner))
        acceptors.append(self.create_machine(RacyAcceptorStub, learner))
        acceptors.append(self.create_machine(RacyAcceptorStub, learner))
        p1 = self.create_machine(RacyProposer, (acceptors, 1, 111))
        p2 = self.create_machine(RacyProposer, (acceptors, 2, 222))
        self.send(p1, EStart())
        self.send(p2, EStart())
        self.halt()


class RacyAcceptorStub(Acceptor):
    class Active(State):
        initial = True
        entry = "setup"
        actions = {EPrepare: "on_prepare", EAccept: "on_accept"}
        ignored = (ELearned,)


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="BasicPaxos",
        suite="psharpbench",
        correct=Variant(
            machines=[PaxosDriver, Proposer, Acceptor, Learner],
            main=PaxosDriver,
        ),
        racy=Variant(
            machines=[RacyPaxosDriver, RacyProposer, RacyAcceptorStub, Learner],
            main=RacyPaxosDriver,
        ),
        buggy=Variant(
            machines=[BuggyPaxosDriver, Proposer, BuggyAcceptor, Learner],
            main=BuggyPaxosDriver,
        ),
        seeded_races=1,
        notes="injected promise-reset bug (the paper injected one too)",
    )
)
