"""BoundedAsync: "a generic scheduler communicating with a number of
processes under a predefined bound" (Section 7.2, ported from the P
benchmarks [8]).

A scheduler coordinates three processes in rounds.  Each round, every
process reports its local count to the scheduler and to its ring
neighbour; the protocol invariant is that counts never drift more than
one round apart.

Variants
--------
buggy
    The scheduler forwards the round token *before* collecting every
    report (a real mistake of the forgot-to-wait kind the paper
    describes), so a fast process can run two rounds ahead under some
    schedules and the drift assertion fires.
racy
    Each process reports a mutable ``stats`` list and keeps appending to
    it afterwards — a seeded ownership race on the payload.
"""

from __future__ import annotations

from ..core.events import Event, Halt, MachineId
from ..core.machine import Machine, State


class EConfig(Event):
    """(scheduler, neighbour) wiring for a process."""


class ERound(Event):
    """Scheduler -> process: run one round."""


class EReport(Event):
    """Process -> scheduler: (process index, round count)."""


class ECount(Event):
    """Process -> neighbour: my current count."""


class EDone(Event):
    pass


ROUNDS = 3


class Process(Machine):
    """One worker in the ring."""

    class Init(State):
        initial = True
        entry = "setup"
        transitions = {EConfig: "Running"}

    class Running(State):
        entry = "configured"
        actions = {ERound: "on_round", ECount: "on_count"}

    def setup(self):
        self.index = self.payload
        self.count = 0
        self.neighbour_count = 0

    def configured(self):
        pair = self.payload
        self.scheduler = pair[0]
        self.neighbour = pair[1]

    def on_round(self):
        self.count = self.count + 1
        self.send(self.neighbour, ECount(self.count))
        self.send(self.scheduler, EReport((self.index, self.count)))

    def on_count(self):
        self.neighbour_count = self.payload
        drift = self.count - self.neighbour_count
        self.assert_that(
            drift <= 1 and drift >= -1,
            "round drift exceeded the bound",
        )


class Scheduler(Machine):
    """Runs ROUNDS rounds, waiting for all reports between rounds."""

    class Init(State):
        initial = True
        entry = "setup"
        transitions = {EReport: "Collecting"}
        deferred = ()

    class Collecting(State):
        entry = "on_report"
        actions = {EReport: "on_report_more"}

    def setup(self):
        self.round = 0
        self.reports = 0
        self.procs = []
        self.procs.append(self.create_machine(Process, 0))
        self.procs.append(self.create_machine(Process, 1))
        self.procs.append(self.create_machine(Process, 2))
        for i in range(3):
            left = self.procs[i]
            right = self.procs[(i + 1) % 3]
            self.send(left, EConfig((self.id, right)))
        self.start_round()

    def start_round(self):
        self.round = self.round + 1
        self.reports = 0
        for proc in self.procs:
            self.send(proc, ERound())

    def on_report(self):
        self.handle_report()

    def on_report_more(self):
        self.handle_report()

    def handle_report(self):
        self.reports = self.reports + 1
        if self.reports == 3:
            if self.round < ROUNDS:
                self.start_round()
            else:
                for proc in self.procs:
                    self.send(proc, Halt())
                self.halt()


class BuggyScheduler(Scheduler):
    """Forgets to wait for the full barrier: starts the next round after
    the FIRST report, letting one process race ahead of its neighbour."""

    def handle_report(self):
        self.reports = self.reports + 1
        if self.reports == 1 and self.round < ROUNDS:
            self.start_round()
        elif self.round >= ROUNDS and self.reports >= 3:
            for proc in self.procs:
                self.send(proc, Halt())
            self.halt()


class RacyProcess(Process):
    """Reports a mutable stats list and keeps mutating it afterwards."""

    def setup(self):
        self.index = self.payload
        self.count = 0
        self.neighbour_count = 0
        self.stats = []

    def on_round(self):
        self.count = self.count + 1
        self.stats.append(self.count)
        self.send(self.neighbour, ECount(self.count))
        self.send(self.scheduler, EReport(self.stats))  # race: kept + sent
        self.stats.append(0)  # mutation after ownership was given up

    def on_count(self):
        self.neighbour_count = self.payload


class RacyScheduler(Scheduler):
    def handle_report(self):
        self.reports = self.reports + 1
        if self.reports == 3:
            if self.round < ROUNDS:
                self.start_round()
            else:
                for proc in self.procs:
                    self.send(proc, Halt())
                self.halt()


class RacySchedulerMain(RacyScheduler):
    """Entry point wiring racy processes instead of correct ones."""

    def setup(self):
        self.round = 0
        self.reports = 0
        self.procs = []
        self.procs.append(self.create_machine(RacyProcess, 0))
        self.procs.append(self.create_machine(RacyProcess, 1))
        self.procs.append(self.create_machine(RacyProcess, 2))
        for i in range(3):
            left = self.procs[i]
            right = self.procs[(i + 1) % 3]
            self.send(left, EConfig((self.id, right)))
        self.start_round()


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="BoundedAsync",
        suite="psharpbench",
        correct=Variant(machines=[Scheduler, Process], main=Scheduler),
        racy=Variant(
            machines=[RacySchedulerMain, RacyProcess], main=RacySchedulerMain
        ),
        buggy=Variant(machines=[BuggyScheduler, Process], main=BuggyScheduler),
        seeded_races=1,
        notes="barrier-skip bug; racy variant mutates a sent stats list",
    )
)
