"""TokenRing — token circulation under a noisy environment.

Three nodes pass a token around a ring while a ``Pump`` machine ticks
forever, pulsing nodes with background noise — so every execution is
infinite and the ring's health is a pure *liveness* property: the token
must keep completing circuits.  The ``TokenCirculationMonitor`` encodes
it with hot/cold states, invoked *explicitly* by the nodes
(``self.monitor(TokenCirculationMonitor, ...)`` — the ``Monitor<T>(e)``
style of P#), a no-op when the spec is not attached.

This benchmark is the fairness show-case:

* Under an **unfair** strategy (DFS keeps picking the pump; PCT can
  deprioritize the token holder indefinitely) the token starves without
  any program bug — the old depth-bound heuristic would report a spurious
  liveness violation, which is exactly why the runtime now refuses to
  promote depth-bound cutoffs to bugs when ``strategy.is_fair()`` is
  False.
* Under a **fair** strategy the correct ring circulates forever (the
  monitor keeps returning to its cold state; the execution ends as a
  benign ``"depth-bound"``), while the buggy ring's dropped token leaves
  the monitor hot and temperature-based detection names the hot state.

Variants
--------
buggy
    A node that has just absorbed a pulse is "distracted": if the token
    arrives before the node shakes the distraction off, the node drops it
    and circulation stops forever — interleaving-dependent, since the
    pulse and the token race toward the same node.
correct
    Pulses are absorbed without consequence; the token circulates no
    matter how the schedule interleaves the noise.
"""

from __future__ import annotations

from ..core.events import Event
from ..core.machine import Machine, State
from ..testing.monitors import Monitor, cold, hot


class ERingConfig(Event):
    """driver -> node: (next node id, is_origin)"""


class EToken(Event):
    """the circulating token"""


class EPulse(Event):
    """pump -> node: background noise"""


class ETick(Event):
    """pump -> pump: keep the environment alive forever"""


class ETokenMoved(Event):
    """node -> monitor (explicit): the token advanced mid-circuit"""


class ECircuitComplete(Event):
    """origin node -> monitor (explicit): the token closed a full circuit"""


class TokenCirculationMonitor(Monitor):
    """Liveness spec: the token keeps completing circuits of the ring."""

    @cold
    class AtOrigin(State):
        initial = True
        transitions = {ETokenMoved: "InFlight"}
        ignored = (ECircuitComplete,)

    @hot
    class InFlight(State):
        transitions = {ECircuitComplete: "AtOrigin"}
        ignored = (ETokenMoved,)


class RingNode(Machine):
    """Forwards the token to its successor, reporting progress to the
    circulation monitor."""

    class Booting(State):
        initial = True
        entry = "noop"
        transitions = {ERingConfig: "Relaying"}
        deferred = (EToken, EPulse)

    class Relaying(State):
        entry = "configure"
        actions = {EToken: "on_token", EPulse: "on_pulse"}

    def noop(self):
        pass

    def configure(self):
        config = self.payload
        self.next_node = config[0]
        self.is_origin = config[1]
        self.distracted = False

    def on_pulse(self):
        pass

    def on_token(self):
        self.forward_token()

    def forward_token(self):
        if self.is_origin:
            # Close the finished circuit, then immediately mark the next
            # one as departed: the monitor is hot from the origin's
            # forward until the token returns, so a drop *anywhere* in the
            # ring leaves it hot.
            self.monitor(TokenCirculationMonitor, ECircuitComplete())
        self.monitor(TokenCirculationMonitor, ETokenMoved())
        self.send(self.next_node, EToken())


class BuggyRingNode(RingNode):
    """BUG: a pulse distracts the node; a token arriving while distracted
    is dropped on the floor and circulation stops forever."""

    def on_pulse(self):
        self.distracted = True

    def on_token(self):
        if self.distracted and not self.is_origin:
            return  # the token is lost: the ring livelocks
        self.forward_token()


class Pump(Machine):
    """Infinite environment: pulses ring nodes round-robin, forever."""

    class Pumping(State):
        initial = True
        entry = "arm"
        actions = {ETick: "on_tick"}

    def arm(self):
        self.targets = self.payload
        self.cursor = 0
        self.send(self.id, ETick())

    def on_tick(self):
        target = self.targets[self.cursor % len(self.targets)]
        self.cursor = self.cursor + 1
        self.send(target, EPulse())
        self.send(self.id, ETick())


class TokenRingDriver(Machine):
    class Booting(State):
        initial = True
        entry = "setup"

    node_cls = RingNode

    def setup(self):
        nodes = []
        nodes.append(self.create_machine(self.node_cls))
        nodes.append(self.create_machine(self.node_cls))
        nodes.append(self.create_machine(self.node_cls))
        for index, node in enumerate(nodes):
            successor = nodes[(index + 1) % len(nodes)]
            self.send(node, ERingConfig((successor, index == 0)))
        # The pump only pulses non-origin nodes: a dropped token always
        # leaves the monitor hot (mid-circuit), never cold-stuck.
        self.create_machine(Pump, nodes[1:])
        self.send(nodes[0], EToken())
        self.halt()


class BuggyTokenRingDriver(TokenRingDriver):
    node_cls = BuggyRingNode


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="TokenRing",
        suite="liveness",
        correct=Variant(
            machines=[TokenRingDriver, RingNode, Pump],
            main=TokenRingDriver,
            monitors=(TokenCirculationMonitor,),
        ),
        buggy=Variant(
            machines=[BuggyTokenRingDriver, BuggyRingNode, Pump],
            main=BuggyTokenRingDriver,
            monitors=(TokenCirculationMonitor,),
        ),
        bug_kind="liveness",
        notes="pulse-distracted node drops the token; starves under unfair "
        "strategies, genuinely livelocks when the pulse beats the token",
    )
)
