"""Chord distributed hash table [24] — implemented from the original
paper, like the authors did ("The Chord and Raft protocols were
implemented from scratch ... using only the original papers as a
reference").

A small identifier ring (space 16) with three nodes.  Lookups route
around the ring via successor pointers; a node answers when the key
falls in ``(predecessor, self]``.  A client issues lookups and asserts
each key is resolved by its correct owner.

Variants
--------
buggy
    Routing mishandles exact-owner keys while a (nondeterministically
    triggered) stabilization is in flight: the joining node starts
    answering for keys it does not yet own — Table 2 reports Chord's bug
    as shallow (found on CHESS's first schedule; %Buggy 35%).
racy
    A node shares its live finger/successor list with the client.
"""

from __future__ import annotations

from ..core.events import Event, Halt
from ..core.machine import Machine, State


class EConfigure(Event):
    """(my_id, successor, predecessor_id, client)"""


class ELookup(Event):
    """(key, client, hops)"""


class EFound(Event):
    """(key, owner_id)"""


class EJoin(Event):
    """new node joins between predecessor and successor"""


class EFingers(Event):
    """racy payload: the live successor list"""


RING_SPACE = 16


class ChordNode(Machine):
    class Ring(State):
        initial = True
        entry = "setup"
        actions = {ELookup: "on_lookup", EJoin: "on_join"}

    def setup(self):
        config = self.payload
        self.my_id = config[0]
        self.successor = config[1]
        self.predecessor_id = config[2]
        self.client = config[3]
        self.joined = True

    def owns(self, key):
        # key in (predecessor, my_id] on the ring (wrap-around interval).
        low = self.predecessor_id
        high = self.my_id
        if low < high:
            return key > low and key <= high
        return key > low or key <= high

    def on_lookup(self):
        msg = self.payload
        key = msg[0]
        client = msg[1]
        hops = msg[2]
        self.assert_that(hops < 8, "lookup routed forever")
        if self.owns(key):
            self.send(client, EFound((key, self.my_id)))
        else:
            self.send(self.successor, ELookup((key, client, hops + 1)))

    def on_join(self):
        pass


class LookupClient(Machine):
    """Issues lookups for every key and checks the resolved owner."""

    class Driving(State):
        initial = True
        entry = "setup"
        actions = {EFound: "on_found"}
        ignored = (EFingers,)

    def setup(self):
        # Ring: node 2 owns (12, 2], node 7 owns (2, 7], node 12 owns (7, 12].
        self.owners = {1: 2, 4: 7, 9: 12, 14: 2}
        self.pending = 4
        self.nodes = []
        node2 = self.create_machine(ChordNode, None)
        node7 = self.create_machine(ChordNode, None)
        node12 = self.create_machine(ChordNode, None)
        self.send(node2, EConfigure((2, node7, 12, self.id)))
        self.send(node7, EConfigure((7, node12, 2, self.id)))
        self.send(node12, EConfigure((12, node2, 7, self.id)))
        for key in [1, 4, 9, 14]:
            self.send(node2, ELookup((key, self.id, 0)))

    def on_found(self):
        msg = self.payload
        key = msg[0]
        owner = msg[1]
        self.assert_that(
            self.owners[key] == owner,
            "lookup resolved to the wrong owner",
        )
        self.pending = self.pending - 1
        if self.pending == 0:
            self.halt()


# Nodes are created before their ring links exist, so EConfigure carries
# the wiring; the entry handler must therefore tolerate a None payload.
class ChordNodeDeferred(ChordNode):
    class Ring(State):
        initial = True
        entry = "noop_setup"
        transitions = {EConfigure: "Linked"}
        deferred = (ELookup, EJoin)

    class Linked(State):
        entry = "setup"
        actions = {ELookup: "on_lookup", EJoin: "on_join"}

    def noop_setup(self):
        pass


class BuggyChordNode(ChordNodeDeferred):
    """A node 'joining' via EJoin starts answering for its successor's
    keys before the predecessor pointers stabilize."""

    def on_join(self):
        # BUG: collapses its interval to the whole ring mid-stabilization
        # (predecessor == self makes the wrap-around test accept any key).
        self.predecessor_id = self.my_id

    def on_lookup(self):
        msg = self.payload
        key = msg[0]
        client = msg[1]
        hops = msg[2]
        self.assert_that(hops < 8, "lookup routed forever")
        if self.owns(key):
            self.send(client, EFound((key, self.my_id)))
        else:
            self.send(self.successor, ELookup((key, client, hops + 1)))


class BuggyLookupClient(LookupClient):
    def setup(self):
        self.owners = {1: 2, 4: 7, 9: 12, 14: 2}
        self.pending = 4
        node2 = self.create_machine(BuggyChordNode)
        node7 = self.create_machine(BuggyChordNode)
        node12 = self.create_machine(BuggyChordNode)
        self.send(node2, EConfigure((2, node7, 12, self.id)))
        self.send(node7, EConfigure((7, node12, 2, self.id)))
        self.send(node12, EConfigure((12, node2, 7, self.id)))
        if self.nondet():
            self.send(node7, EJoin())  # stabilization in flight
        for key in [1, 4, 9, 14]:
            self.send(node2, ELookup((key, self.id, 0)))


class RacyChordNode(ChordNodeDeferred):
    """Shares its live successor list with the client."""

    def setup(self):
        config = self.payload
        self.my_id = config[0]
        self.successor = config[1]
        self.predecessor_id = config[2]
        self.client = config[3]
        self.fingers = []
        self.fingers.append(self.my_id)
        self.send(self.client, EFingers(self.fingers))  # seeded race
        self.fingers.append(self.predecessor_id)


class RacyLookupClient(LookupClient):
    def setup(self):
        self.owners = {1: 2, 4: 7, 9: 12, 14: 2}
        self.pending = 4
        node2 = self.create_machine(RacyChordNode)
        node7 = self.create_machine(RacyChordNode)
        node12 = self.create_machine(RacyChordNode)
        self.send(node2, EConfigure((2, node7, 12, self.id)))
        self.send(node7, EConfigure((7, node12, 2, self.id)))
        self.send(node12, EConfigure((12, node2, 7, self.id)))
        for key in [1, 4, 9, 14]:
            self.send(node2, ELookup((key, self.id, 0)))


class ChordMain(LookupClient):
    def setup(self):
        self.owners = {1: 2, 4: 7, 9: 12, 14: 2}
        self.pending = 4
        node2 = self.create_machine(ChordNodeDeferred)
        node7 = self.create_machine(ChordNodeDeferred)
        node12 = self.create_machine(ChordNodeDeferred)
        self.send(node2, EConfigure((2, node7, 12, self.id)))
        self.send(node7, EConfigure((7, node12, 2, self.id)))
        self.send(node12, EConfigure((12, node2, 7, self.id)))
        for key in [1, 4, 9, 14]:
            self.send(node2, ELookup((key, self.id, 0)))


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="Chord",
        suite="psharpbench",
        correct=Variant(machines=[ChordMain, ChordNodeDeferred], main=ChordMain),
        racy=Variant(
            machines=[RacyLookupClient, RacyChordNode], main=RacyLookupClient
        ),
        buggy=Variant(
            machines=[BuggyLookupClient, BuggyChordNode], main=BuggyLookupClient
        ),
        seeded_races=1,
        notes="premature-join routing bug, shallow like the paper's",
    )
)
