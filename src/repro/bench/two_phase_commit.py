"""Two-phase distributed commit [13] (ported from the P benchmarks).

A coordinator runs prepare/vote/decide rounds over two participants.  A
timer machine models the environment: its timeout races with the votes,
so the coordinator may have to decide on partial information.  Atomicity
is asserted twice: each participant checks it never commits a transaction
it voted NO on, and a checker machine asserts all participants reach the
same decision per transaction.

Variants
--------
buggy
    On a timeout with only YES votes in hand the coordinator decides
    COMMIT without waiting for the missing vote — which may be a NO
    (a mishandled-event/premature-decision bug of the kind the paper
    found "forgetting to properly handle an event in some state").
racy
    The coordinator ships its mutable transaction log with a commit
    decision and keeps appending to it.
"""

from __future__ import annotations

from ..core.events import Event, Halt
from ..core.machine import Machine, State
from ..testing.monitors import Monitor


class EPrepareReq(Event):
    """coordinator -> participant: (coordinator, txn)"""


class EVote(Event):
    """participant -> coordinator: (participant, txn, yes?)"""


class ECommit(Event):
    """(txn)"""


class EAbort(Event):
    """(txn)"""


class EDecision(Event):
    """participant -> checker: (participant index, txn, committed?)"""


class EStartTimer(Event):
    """coordinator -> timer: (txn)"""


class ETimeout(Event):
    """timer -> coordinator: (txn)"""


class EStartTxn(Event):
    pass


TRANSACTIONS = 2


class Timer(Machine):
    """Environment model: echoes a timeout for each started timer; the
    schedule decides whether it beats the votes."""

    class Waiting(State):
        initial = True
        entry = "setup"
        actions = {EStartTimer: "on_start"}

    def setup(self):
        self.target = self.payload

    def on_start(self):
        self.send(self.target, ETimeout(self.payload))


class Participant(Machine):
    """Votes nondeterministically; reports every decision it applies."""

    class Working(State):
        initial = True
        entry = "setup"
        actions = {
            EPrepareReq: "on_prepare",
            ECommit: "on_commit",
            EAbort: "on_abort",
        }

    def setup(self):
        config = self.payload
        self.index = config[0]
        self.checker = config[1]
        self.voted_yes = False

    def on_prepare(self):
        msg = self.payload
        coordinator = msg[0]
        txn = msg[1]
        self.voted_yes = self.nondet()
        self.send(coordinator, EVote((self.id, txn, self.voted_yes)))

    def on_commit(self):
        txn = self.payload
        self.assert_that(
            self.voted_yes, "committed a transaction this node voted NO on"
        )
        self.send(self.checker, EDecision((self.index, txn, True)))

    def on_abort(self):
        txn = self.payload
        self.send(self.checker, EDecision((self.index, txn, False)))


class AtomicityChecker(Machine):
    """Asserts all participants decide the same way per transaction."""

    class Watching(State):
        initial = True
        entry = "setup"
        actions = {EDecision: "on_decision"}

    def setup(self):
        self.decisions = {}

    def on_decision(self):
        msg = self.payload
        txn = msg[1]
        committed = msg[2]
        if txn in self.decisions:
            self.assert_that(
                self.decisions[txn] == committed,
                "participants disagree on the outcome of a transaction",
            )
        else:
            self.decisions[txn] = committed


class AtomicityMonitor(Monitor):
    """2PC atomicity as a specification monitor: a transaction commits
    only on a unanimous YES quorum.

    Observes the protocol's wire events at *send* time (auto-mirrored):
    it counts YES votes per transaction and fires the moment a commit
    decision for an under-quorum transaction leaves the coordinator —
    catching the premature-commit bug at its source, before any
    participant (whose own assertion is the fallback check) applies it."""

    observes = (EVote, ECommit)

    class Tracking(State):
        initial = True
        entry = "setup"
        actions = {EVote: "on_vote", ECommit: "on_commit"}

    def setup(self):
        self.yes_votes = {}

    def on_vote(self):
        msg = self.payload
        txn = msg[1]
        yes = msg[2]
        if yes:
            self.yes_votes[txn] = self.yes_votes.get(txn, 0) + 1

    def on_commit(self):
        txn = self.payload
        self.assert_that(
            self.yes_votes.get(txn, 0) >= 2,
            f"transaction {txn} committed without a unanimous YES quorum",
        )


class Coordinator(Machine):
    """Drives TRANSACTIONS prepare/vote/decide rounds."""

    class Booting(State):
        initial = True
        entry = "setup"
        transitions = {EStartTxn: "Preparing"}

    class Preparing(State):
        entry = "send_prepares"
        actions = {EVote: "on_vote", ETimeout: "on_timeout"}
        transitions = {EStartTxn: "Preparing"}

    def setup(self):
        self.checker = self.create_machine(AtomicityChecker)
        self.timer = self.create_machine(Timer, self.id)
        self.participants = []
        self.participants.append(
            self.create_machine(Participant, (0, self.checker))
        )
        self.participants.append(
            self.create_machine(Participant, (1, self.checker))
        )
        self.txn = 0
        self.yes_votes = 0
        self.votes_seen = 0
        self.decided = True
        self.raise_event(EStartTxn())

    def send_prepares(self):
        self.txn = self.txn + 1
        self.yes_votes = 0
        self.votes_seen = 0
        self.decided = False
        for participant in self.participants:
            self.send(participant, EPrepareReq((self.id, self.txn)))
        self.send(self.timer, EStartTimer(self.txn))

    def on_vote(self):
        msg = self.payload
        txn = msg[1]
        yes = msg[2]
        if txn != self.txn or self.decided:
            return
        self.votes_seen = self.votes_seen + 1
        if yes:
            self.yes_votes = self.yes_votes + 1
        if self.votes_seen == 2:
            self.decide(self.yes_votes == 2)

    def on_timeout(self):
        txn = self.payload
        if txn == self.txn and not self.decided:
            self.decide(False)  # abort on timeout: always safe

    def decide(self, commit):
        self.decided = True
        for participant in self.participants:
            if commit:
                self.send(participant, ECommit(self.txn))
            else:
                self.send(participant, EAbort(self.txn))
        self.next_txn()

    def next_txn(self):
        if self.txn < TRANSACTIONS:
            self.send(self.id, EStartTxn())
        else:
            for participant in self.participants:
                self.send(participant, Halt())
            self.send(self.timer, Halt())
            self.send(self.checker, Halt())
            self.halt()


class BuggyCoordinator(Coordinator):
    """On timeout, commits if every vote seen so far was YES."""

    def on_timeout(self):
        txn = self.payload
        if txn == self.txn and not self.decided:
            # BUG: should abort; the missing vote may be a NO.
            self.decide(self.yes_votes == self.votes_seen and self.yes_votes > 0)


class RacyCoordinator(Coordinator):
    """Appends to the log it already shipped with a decision."""

    def send_prepares(self):
        self.log = []
        self.txn = self.txn + 1
        self.yes_votes = 0
        self.votes_seen = 0
        self.decided = False
        for participant in self.participants:
            self.send(participant, EPrepareReq((self.id, self.txn)))
        self.send(self.timer, EStartTimer(self.txn))

    def decide(self, commit):
        self.decided = True
        self.log.append(self.txn)
        for participant in self.participants:
            if commit:
                self.send(participant, ECommit(self.log))  # seeded race
            else:
                self.send(participant, EAbort(self.txn))
        self.log.append(0)
        self.next_txn()


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="TwoPhaseCommit",
        suite="psharpbench",
        correct=Variant(
            machines=[Coordinator, Participant, AtomicityChecker, Timer],
            main=Coordinator,
            monitors=(AtomicityMonitor,),
        ),
        racy=Variant(
            machines=[RacyCoordinator, Participant, AtomicityChecker, Timer],
            main=RacyCoordinator,
        ),
        buggy=Variant(
            machines=[BuggyCoordinator, Participant, AtomicityChecker, Timer],
            main=BuggyCoordinator,
            monitors=(AtomicityMonitor,),
        ),
        seeded_races=1,
        notes="premature commit on timeout with partial YES votes",
    )
)
