"""ProcessScheduler — a livelock benchmark for liveness monitors.

The classic liveness-specification scenario (the shape of P#'s
ProcessScheduler sample): a client asks a scheduler for the CPU, and the
specification says every request is *eventually* granted.  The
``CpuProgressMonitor`` liveness monitor encodes that obligation with
hot/cold states — hot while a request is outstanding, cold once granted
(Section 7.2's specification machines).

An interrupt source races with the client: the scheduler handles at most
one interrupt, running a short recovery before serving deferred requests.

Variants
--------
buggy
    The recovery re-arms itself forever (its ``ERecover`` transition
    re-enters the recovering state, whose entry handler sends a fresh
    ``ERecover``), so once an interrupt is handled the scheduler spins and
    the deferred CPU request is never granted.  Whether that matters is
    interleaving-dependent: if the request was granted *before* the
    interrupt was dequeued, the spin is benign (the monitor is cold) and
    only the depth bound ends the execution; if the interrupt wins the
    race, the monitor stays hot forever — a genuine livelock that
    temperature-based detection pinpoints under a fair schedule, and that
    the bare depth-bound heuristic cannot distinguish from the benign
    spin.
correct
    Recovery runs exactly one ``ERecover`` round and returns to ``Idle``,
    where the deferred request is granted; every execution terminates
    with the monitor cold.
"""

from __future__ import annotations

from ..core.events import Event
from ..core.machine import Machine, State
from ..testing.monitors import Monitor, cold, hot


class EReqCpu(Event):
    """client -> scheduler: request the CPU (payload: client id)"""


class EGrantCpu(Event):
    """scheduler -> client: the CPU is yours"""


class EInterrupt(Event):
    """interrupt source -> scheduler: drop everything and recover"""


class ERecover(Event):
    """scheduler -> scheduler: one recovery round"""


class CpuProgressMonitor(Monitor):
    """Liveness spec: every CPU request is eventually granted.

    Mirrored automatically on sends of ``EReqCpu`` / ``EGrantCpu``."""

    observes = (EReqCpu, EGrantCpu)

    @cold
    class Satisfied(State):
        initial = True
        transitions = {EReqCpu: "Starved"}
        ignored = (EGrantCpu,)

    @hot
    class Starved(State):
        transitions = {EGrantCpu: "Satisfied"}
        ignored = (EReqCpu,)


class SchedClient(Machine):
    """Asks for the CPU once, halts when granted."""

    class Running(State):
        initial = True
        entry = "ask"
        actions = {EGrantCpu: "on_grant"}

    def ask(self):
        self.send(self.payload, EReqCpu(self.id))

    def on_grant(self):
        self.halt()


class InterruptSource(Machine):
    """Fires one interrupt at the scheduler, racing the client's request."""

    class Firing(State):
        initial = True
        entry = "fire"

    def fire(self):
        self.send(self.payload, EInterrupt())
        self.halt()


class CpuScheduler(Machine):
    """Grants requests from ``Idle``; an interrupt triggers one recovery
    round during which requests are deferred."""

    class Idle(State):
        initial = True
        entry = "noop"
        actions = {EReqCpu: "on_request"}
        transitions = {EInterrupt: "Recovering"}
        ignored = (ERecover,)

    class Recovering(State):
        entry = "start_recovery"
        deferred = (EReqCpu,)
        transitions = {ERecover: "Idle"}
        ignored = (EInterrupt,)

    def noop(self):
        pass

    def on_request(self):
        self.send(self.payload, EGrantCpu())

    def start_recovery(self):
        self.send(self.id, ERecover())


class BuggyCpuScheduler(CpuScheduler):
    """BUG: recovery re-enters itself on ``ERecover`` — each re-entry
    sends a fresh ``ERecover``, so the scheduler spins forever with the
    client's request deferred (livelock iff the interrupt was dequeued
    before the request)."""

    class Recovering(State):
        entry = "start_recovery"
        deferred = (EReqCpu,)
        transitions = {ERecover: "Recovering"}
        ignored = (EInterrupt,)


class SchedulerDriver(Machine):
    class Booting(State):
        initial = True
        entry = "setup"

    scheduler_cls = CpuScheduler

    def setup(self):
        scheduler = self.create_machine(self.scheduler_cls)
        self.create_machine(SchedClient, scheduler)
        self.create_machine(InterruptSource, scheduler)
        self.halt()


class BuggySchedulerDriver(SchedulerDriver):
    scheduler_cls = BuggyCpuScheduler


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="ProcessScheduler",
        suite="liveness",
        correct=Variant(
            machines=[SchedulerDriver, CpuScheduler, SchedClient, InterruptSource],
            main=SchedulerDriver,
            monitors=(CpuProgressMonitor,),
        ),
        buggy=Variant(
            machines=[
                BuggySchedulerDriver,
                BuggyCpuScheduler,
                SchedClient,
                InterruptSource,
            ],
            main=BuggySchedulerDriver,
            monitors=(CpuProgressMonitor,),
        ),
        bug_kind="liveness",
        notes="recovery spin starves a deferred CPU request; found via "
        "hot-state temperature under a fair schedule",
    )
)
