"""AsyncSystem: the Section 7.1 case-study stand-in.

The paper ports "a large asynchronous system from Microsoft, used for
rapid development of distributed services": a dispatcher plus a library
of abstract APIs that service authors inherit (the Figure 1 master-worker
architecture).  The proprietary system is not available, so this module
reproduces its *shape*: a ``Dispatcher`` machine coordinating a set of
``BaseService`` machines that can be flipped between master and worker
roles, an abstract service API (``initialize_state`` / ``update_state`` /
``copy_state`` / ``process_client_request``) overridden by a concrete
``UserService``, and a client-request pump.

Five seeded bugs mirror the case study's five findings (two found while
porting, three during analysis and testing); each is enabled by a
dedicated driver so the harness can hunt them one at a time:

bug1  a worker flipped to master while a copy is in flight replies to a
      stale eCopyState and two masters serve simultaneously;
bug2  the dispatcher forgets to re-arm its ack counter between rounds;
bug3  update applied to a worker that was already demoted (unhandled
      event in the demoted state);
bug4  the master broadcasts its live state list (an ownership race, the
      kind the static analyzer catches);
bug5  a service acknowledges a role change before completing its state
      hand-off, losing an update.
"""

from __future__ import annotations

from ..core.events import Event, Halt
from ..core.machine import Machine, State


class EChangeToMaster(Event):
    """(worker list)"""


class EChangeToWorker(Event):
    """(dispatcher)"""


class EUpdateState(Event):
    """(value)"""


class ECopyState(Event):
    """(master state snapshot)"""


class EClientRequest(Event):
    """(value)"""


class EAck(Event):
    pass


class EConfig(Event):
    """(dispatcher, service index)"""


ROUNDS = 4


class BaseService(Machine):
    """The abstract service API of Figure 1: subclasses override the four
    abstract actions; states and transitions are inherited."""

    class Init(State):
        initial = True
        entry = "service_init"
        transitions = {
            EChangeToMaster: "Master",
            EChangeToWorker: "Worker",
        }
        deferred = (EUpdateState, ECopyState, EClientRequest)

    class Worker(State):
        entry = "enter_worker"
        transitions = {EChangeToMaster: "Master", EChangeToWorker: "Worker"}
        actions = {EUpdateState: "on_update", ECopyState: "on_copy"}
        ignored = (EClientRequest,)

    class Master(State):
        entry = "enter_master"
        transitions = {EChangeToWorker: "Worker", EChangeToMaster: "Master"}
        actions = {EClientRequest: "on_client_request"}
        ignored = (EUpdateState, ECopyState)

    def service_init(self):
        config = self.payload
        self.dispatcher = config[0]
        self.service_id = config[1]
        self.state_data = []
        self.initialize_state()

    def enter_worker(self):
        self.send(self.dispatcher, EAck())

    def enter_master(self):
        workers = self.payload
        self.workers = workers
        self.send(self.dispatcher, EAck())
        for worker in self.workers:
            snapshot = self.copy_state()
            self.send(worker, ECopyState(snapshot))

    def on_update(self):
        self.update_state(self.payload)

    def on_copy(self):
        snapshot = self.payload
        self.state_data = snapshot

    def on_client_request(self):
        self.process_client_request(self.payload)
        for worker in self.workers:
            self.send(worker, EUpdateState(self.payload))

    # -- the abstract API -------------------------------------------------
    def initialize_state(self):
        pass

    def update_state(self, value):
        pass

    def copy_state(self):
        return []

    def process_client_request(self, value):
        pass


class UserService(BaseService):
    """A concrete service: keeps an append-only list of applied values."""

    def initialize_state(self):
        self.applied = []

    def update_state(self, value):
        self.applied.append(value)
        self.state_data.append(value)

    def copy_state(self):
        snapshot = []
        for value in self.state_data:
            snapshot.append(value)
        return snapshot

    def process_client_request(self, value):
        self.applied.append(value)
        self.state_data.append(value)


class Dispatcher(Machine):
    """Figure 1's coordinator: rotates the master role and pumps client
    requests, one round per ack."""

    class Booting(State):
        initial = True
        entry = "setup"
        transitions = {EAck: "Querying"}

    class Querying(State):
        entry = "on_ack"
        transitions = {EAck: "Querying"}

    def setup(self):
        self.services = []
        self.services.append(self.create_machine(UserService, (self.id, 0)))
        self.services.append(self.create_machine(UserService, (self.id, 1)))
        self.services.append(self.create_machine(UserService, (self.id, 2)))
        self.round = 0
        self.master_index = 0
        self.assign_roles()

    def assign_roles(self):
        master = self.services[self.master_index]
        workers = [s for s in self.services if s != master]
        for worker in workers:
            self.send(worker, EChangeToWorker((self.id,)))
        self.send(master, EChangeToMaster(workers))

    def on_ack(self):
        self.round = self.round + 1
        if self.round >= ROUNDS:
            for service in self.services:
                self.send(service, Halt())
            self.halt()
            return
        choice = self.nondet_int(3)
        master = self.services[self.master_index]
        if choice == 0:
            self.send(master, EClientRequest(self.round))
        elif choice == 1:
            self.master_index = (self.master_index + 1) % 3
            self.assign_roles()
        else:
            self.send(master, EClientRequest(self.round * 10))


# ---------------------------------------------------------------------------
# The five seeded bugs
# ---------------------------------------------------------------------------
class Bug1Service(UserService):
    """bug1: the Master state handles ECopyState instead of ignoring it.
    During a double rotation, the previous master's in-flight snapshot
    reaches the NEW master and rolls its state back; the next client
    request trips the monotonicity assert."""

    class Master(State):
        entry = "enter_master"
        transitions = {EChangeToWorker: "Worker", EChangeToMaster: "Master"}
        actions = {
            EClientRequest: "on_client_request",
            ECopyState: "on_copy",  # BUG: master must ignore stale copies
        }
        ignored = (EUpdateState,)

    def initialize_state(self):
        self.applied = []
        self.version = 0

    def process_client_request(self, value):
        self.assert_that(
            len(self.state_data) >= self.version,
            "master state rolled back by a stale snapshot",
        )
        self.applied.append(value)
        self.state_data.append(value)
        self.version = len(self.state_data)


class Bug2Dispatcher(Dispatcher):
    """bug2: a duplicate role flip is sent but not accounted for — the
    dispatcher's ack bookkeeping eventually sees more acks than role
    changes it believes it issued."""

    def setup(self):
        self.acks_seen = 0
        self.changes_issued = 0
        self.services = []
        self.services.append(self.create_machine(UserService, (self.id, 0)))
        self.services.append(self.create_machine(UserService, (self.id, 1)))
        self.services.append(self.create_machine(UserService, (self.id, 2)))
        self.round = 0
        self.master_index = 0
        self.assign_roles()

    def assign_roles(self):
        master = self.services[self.master_index]
        workers = [s for s in self.services if s != master]
        for worker in workers:
            self.send(worker, EChangeToWorker((self.id,)))
        self.send(master, EChangeToMaster(workers))
        self.send(master, EChangeToMaster(workers))  # BUG: duplicate flip
        self.changes_issued = self.changes_issued + 3  # ...counted as 3

    def on_ack(self):
        self.acks_seen = self.acks_seen + 1
        self.assert_that(
            self.acks_seen <= self.changes_issued,
            "more acks than issued role changes",
        )
        self.round = self.round + 1
        if self.round >= ROUNDS:
            for service in self.services:
                self.send(service, Halt())
            self.halt()
            return
        choice = self.nondet_int(3)
        master = self.services[self.master_index]
        if choice == 0:
            self.send(master, EClientRequest(self.round))
        elif choice == 1:
            self.master_index = (self.master_index + 1) % 3
            self.assign_roles()
        else:
            self.send(master, EClientRequest(self.round * 10))


class Bug3Service(UserService):
    """bug3: the demoted state forgets its EUpdateState binding — a late
    update to a just-demoted worker is an unhandled event."""

    class Worker(State):
        entry = "enter_worker"
        transitions = {EChangeToMaster: "Master", EChangeToWorker: "Worker"}
        actions = {ECopyState: "on_copy"}  # BUG: EUpdateState unbound
        ignored = (EClientRequest,)


class Bug4Service(UserService):
    """bug4: copy_state leaks the LIVE state list (the ownership race the
    static analyzer flags).  At runtime, workers appending updates to the
    shared list corrupt the master's length bookkeeping."""

    def initialize_state(self):
        self.applied = []
        self.version = 0

    def copy_state(self):
        return self.state_data  # BUG: live reference escapes

    def enter_master(self):
        workers = self.payload
        self.workers = workers
        self.version = len(self.state_data)
        self.send(self.dispatcher, EAck())
        for worker in self.workers:
            snapshot = self.copy_state()
            self.send(worker, ECopyState(snapshot))

    def process_client_request(self, value):
        self.assert_that(
            len(self.state_data) == self.version,
            "master state mutated behind its back (shared snapshot)",
        )
        self.applied.append(value)
        self.state_data.append(value)
        self.version = len(self.state_data)


class Bug5Service(UserService):
    """bug5: acknowledges a role change before the state hand-off and may
    skip the hand-off entirely; updates stream length hints so stale
    workers notice the lost snapshot."""

    def enter_master(self):
        workers = self.payload
        self.workers = workers
        self.send(self.dispatcher, EAck())  # ack before the hand-off
        if self.nondet():
            for worker in self.workers:
                snapshot = self.copy_state()
                self.send(worker, ECopyState(snapshot))
        # BUG: on the other branch the hand-off never happens.

    def on_client_request(self):
        self.process_client_request(self.payload)
        expected = len(self.state_data)
        for worker in self.workers:
            self.send(worker, EUpdateState((self.payload, expected)))

    def on_update(self):
        msg = self.payload
        self.update_state(msg[0])
        self.assert_that(
            len(self.state_data) == msg[1],
            "update applied over a missing state hand-off",
        )


class _BugDriverBase(Dispatcher):
    """Dispatcher mixing client requests with master rotations."""

    def setup(self):
        self.services = []
        self.build_services()
        self.round = 0
        self.master_index = 0
        self.assign_roles()

    def build_services(self):
        pass

    def on_ack(self):
        self.round = self.round + 1
        if self.round >= ROUNDS:
            for service in self.services:
                self.send(service, Halt())
            self.halt()
            return
        choice = self.nondet_int(3)
        master = self.services[self.master_index]
        if choice == 0:
            self.send(master, EClientRequest(self.round))
        elif choice == 1:
            self.master_index = (self.master_index + 1) % 3
            self.assign_roles()
        else:
            self.send(master, EClientRequest(self.round * 10))


class Bug1Driver(_BugDriverBase):
    def build_services(self):
        self.services.append(self.create_machine(Bug1Service, (self.id, 0)))
        self.services.append(self.create_machine(Bug1Service, (self.id, 1)))
        self.services.append(self.create_machine(Bug1Service, (self.id, 2)))


class Bug2Driver(Bug2Dispatcher):
    pass


class Bug3Driver(_BugDriverBase):
    def build_services(self):
        self.services.append(self.create_machine(Bug3Service, (self.id, 0)))
        self.services.append(self.create_machine(Bug3Service, (self.id, 1)))
        self.services.append(self.create_machine(Bug3Service, (self.id, 2)))


class Bug4Driver(_BugDriverBase):
    def build_services(self):
        self.services.append(self.create_machine(Bug4Service, (self.id, 0)))
        self.services.append(self.create_machine(Bug4Service, (self.id, 1)))
        self.services.append(self.create_machine(Bug4Service, (self.id, 2)))


class Bug5Driver(_BugDriverBase):
    def build_services(self):
        self.services.append(self.create_machine(Bug5Service, (self.id, 0)))
        self.services.append(self.create_machine(Bug5Service, (self.id, 1)))
        self.services.append(self.create_machine(Bug5Service, (self.id, 2)))


BUG_DRIVERS = {
    "bug1": (Bug1Driver, Bug1Service),
    "bug2": (Bug2Driver, UserService),
    "bug3": (Bug3Driver, Bug3Service),
    "bug4": (Bug4Driver, Bug4Service),
    "bug5": (Bug5Driver, Bug5Service),
}


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="AsyncSystem",
        suite="case-study",
        correct=Variant(
            machines=[Dispatcher, UserService, BaseService], main=Dispatcher
        ),
        racy=Variant(
            machines=[Bug4Driver, Bug4Service, BaseService], main=Bug4Driver
        ),
        buggy=Variant(
            machines=[Bug3Driver, Bug3Service, BaseService], main=Bug3Driver
        ),
        seeded_races=1,
        notes="Section 7.1 stand-in; five seeded bugs in BUG_DRIVERS",
    )
)
