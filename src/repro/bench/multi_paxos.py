"""MultiPaxos [5] — Paxos extended to a sequence of consensus slots with
a stable leader ("Paxos made live"), ported in the spirit of the P
benchmarks.

Two leaders compete with one prepare phase each, then stream accepts for
two slots; three acceptors keep per-slot accepted state; a learner
asserts per-slot agreement (no slot learns two different values).

The paper injected the MultiPaxos bug artificially (Section 7.2); ours is
injected too: the buggy leader skips re-running the prepare phase after
being nacked, streaming accepts under a stale ballot.

The racy variant stores a batch in a leader field, sends it to the
acceptors, and also re-sends the same batch to the learner later from a
different state — the exact residual pattern Section 7.2.1 reports xSA
cannot discharge (it needs the read-only extension).
"""

from __future__ import annotations

from copy import deepcopy

from ..core.events import Event, Halt
from ..core.machine import Machine, State


class EPrepare(Event):
    """(leader, ballot)"""


class EPromise(Event):
    """(ballot, accepted: {slot: (ballot, value)})"""


class EAccept(Event):
    """(leader, ballot, slot, value)"""


class EAccepted(Event):
    """(slot, ballot, value)"""


class ENack(Event):
    """(ballot)"""


class EGoPrepare(Event):
    pass


class EGoStream(Event):
    pass


class EBatch(Event):
    """racy/read-only payload: a batch of proposed values"""


SLOTS = 2


class MpAcceptor(Machine):
    class Active(State):
        initial = True
        entry = "setup"
        actions = {EPrepare: "on_prepare", EAccept: "on_accept"}
        ignored = (EBatch,)

    def setup(self):
        self.learner = self.payload
        self.promised = -1
        self.accepted = {}

    def on_prepare(self):
        msg = self.payload
        leader = msg[0]
        ballot = msg[1]
        if ballot > self.promised:
            self.promised = ballot
            snapshot = deepcopy(self.accepted)  # promises carry a snapshot
            self.send(leader, EPromise((ballot, snapshot)))
        else:
            self.send(leader, ENack(ballot))

    def on_accept(self):
        msg = self.payload
        leader = msg[0]
        ballot = msg[1]
        slot = msg[2]
        value = msg[3]
        if ballot >= self.promised:
            self.promised = ballot
            self.accepted[slot] = (ballot, value)
            self.send(self.learner, EAccepted((slot, ballot, value)))
        else:
            self.send(leader, ENack(ballot))


class MpLearner(Machine):
    class Watching(State):
        initial = True
        entry = "setup"
        actions = {EAccepted: "on_accepted"}
        ignored = (EBatch,)

    def setup(self):
        self.counts = {}
        self.chosen = {}

    def on_accepted(self):
        msg = self.payload
        slot = msg[0]
        ballot = msg[1]
        value = msg[2]
        key = (slot, ballot)
        if key not in self.counts:
            self.counts[key] = 0
        self.counts[key] = self.counts[key] + 1
        if self.counts[key] >= 2:  # majority for (slot, ballot)
            if slot not in self.chosen:
                self.chosen[slot] = value
            self.assert_that(
                self.chosen[slot] == value,
                "a slot learned two different values",
            )


class MpLeader(Machine):
    """Prepare once, then stream accepts for every slot."""

    MAX_ATTEMPTS = 3

    class Idle(State):
        initial = True
        entry = "setup"
        transitions = {EGoPrepare: "Preparing"}

    class Preparing(State):
        entry = "send_prepare"
        actions = {EPromise: "on_promise", ENack: "on_nack"}
        transitions = {EGoStream: "Streaming", EGoPrepare: "Preparing"}

    class Streaming(State):
        entry = "stream_accepts"
        actions = {ENack: "on_stream_nack", EPromise: "on_late_promise"}
        transitions = {EGoPrepare: "Preparing"}

    class Retired(State):
        ignored = (EPromise, ENack)

    def setup(self):
        config = self.payload
        self.acceptors = config[0]
        self.ballot = config[1]
        self.base_value = config[2]
        self.promises = 0
        self.attempts = 0
        self.prior = {}

    def send_prepare(self):
        self.promises = 0
        self.attempts = self.attempts + 1
        for acceptor in self.acceptors:
            self.send(acceptor, EPrepare((self.id, self.ballot)))

    def retry(self):
        if self.attempts < 3:
            self.raise_event(EGoPrepare())
        else:
            self.halt()

    def on_promise(self):
        msg = self.payload
        ballot = msg[0]
        accepted = msg[1]
        if ballot != self.ballot:
            return
        self.promises = self.promises + 1
        for slot in accepted:
            entry = accepted[slot]
            if slot not in self.prior or entry[0] > self.prior[slot][0]:
                self.prior[slot] = entry
        if self.promises == 2:
            self.raise_event(EGoStream())

    def on_nack(self):
        nacked = self.payload
        if nacked >= self.ballot:
            self.ballot = self.ballot + 2  # keep ballots disjoint per leader
            self.retry()

    def stream_accepts(self):
        # The batch summary is broadcast by reference to every acceptor —
        # receivers only ever read it.  This is the residual pattern of
        # Section 7.2.1 that xSA cannot discharge (the same field content
        # is sent to several machines) and that the read-only extension
        # suppresses.
        self.batch = []
        for slot in range(SLOTS):
            value = self.base_value + slot
            if slot in self.prior:
                value = self.prior[slot][1]
            self.batch.append(value)
            for acceptor in self.acceptors:
                self.send(acceptor, EAccept((self.id, self.ballot, slot, value)))
        for acceptor in self.acceptors:
            self.send(acceptor, EBatch(self.batch))

    def on_stream_nack(self):
        nacked = self.payload
        if nacked >= self.ballot:
            self.ballot = self.ballot + 2
            self.retry()

    def on_late_promise(self):
        pass


class BuggyMpLeader(MpLeader):
    """After a nack during streaming, bumps the ballot and KEEPS streaming
    without re-running prepare — so it never learns values accepted under
    the competing ballot and overwrites them with its own."""

    def on_stream_nack(self):
        nacked = self.payload
        if nacked >= self.ballot and self.attempts < 3:
            self.attempts = self.attempts + 1
            self.ballot = nacked + 1
            # BUG: must go back to Preparing; streams stale values instead.
            self.stream_accepts()


class RacyMpLeader(MpLeader):
    """Stages a batch in a field, sends it while streaming, then re-sends
    the same batch from a later state — the residual read-only pattern."""

    def stream_accepts(self):
        self.batch = []
        for slot in range(SLOTS):
            value = self.base_value + slot
            if slot in self.prior:
                value = self.prior[slot][1]
            self.batch.append(value)
            for acceptor in self.acceptors:
                self.send(acceptor, EAccept((self.id, self.ballot, slot, value)))
        first = self.acceptors[0]
        self.send(first, EBatch(self.batch))  # shared...
        self.batch.append(0)  # ...and mutated: a real seeded race


class MpDriver(Machine):
    class Booting(State):
        initial = True
        entry = "setup"

    def setup(self):
        learner = self.create_machine(MpLearner)
        acceptors = []
        acceptors.append(self.create_machine(MpAcceptor, learner))
        acceptors.append(self.create_machine(MpAcceptor, learner))
        acceptors.append(self.create_machine(MpAcceptor, learner))
        l1 = self.create_machine(MpLeader, (acceptors, 1, 100))
        l2 = self.create_machine(MpLeader, (acceptors, 2, 200))
        self.send(l1, EGoPrepare())
        self.send(l2, EGoPrepare())
        self.halt()


class BuggyMpDriver(MpDriver):
    def setup(self):
        learner = self.create_machine(MpLearner)
        acceptors = []
        acceptors.append(self.create_machine(MpAcceptor, learner))
        acceptors.append(self.create_machine(MpAcceptor, learner))
        acceptors.append(self.create_machine(MpAcceptor, learner))
        l1 = self.create_machine(BuggyMpLeader, (acceptors, 1, 100))
        l2 = self.create_machine(BuggyMpLeader, (acceptors, 2, 200))
        self.send(l1, EGoPrepare())
        self.send(l2, EGoPrepare())
        self.halt()


class RacyMpDriver(MpDriver):
    def setup(self):
        learner = self.create_machine(MpLearner)
        acceptors = []
        acceptors.append(self.create_machine(MpAcceptor, learner))
        acceptors.append(self.create_machine(MpAcceptor, learner))
        acceptors.append(self.create_machine(MpAcceptor, learner))
        l1 = self.create_machine(RacyMpLeader, (acceptors, 1, 100))
        l2 = self.create_machine(RacyMpLeader, (acceptors, 2, 200))
        self.send(l1, EGoPrepare())
        self.send(l2, EGoPrepare())
        self.halt()


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="MultiPaxos",
        suite="psharpbench",
        correct=Variant(
            machines=[MpDriver, MpLeader, MpAcceptor, MpLearner], main=MpDriver
        ),
        racy=Variant(
            machines=[RacyMpDriver, RacyMpLeader, MpAcceptor, MpLearner],
            main=RacyMpDriver,
        ),
        buggy=Variant(
            machines=[BuggyMpDriver, BuggyMpLeader, MpAcceptor, MpLearner],
            main=BuggyMpDriver,
        ),
        seeded_races=1,
        notes="injected stale-ballot streaming bug (paper injected one too)",
    )
)
