"""Raft consensus [22] — implemented from the original paper, like the
authors did ("The Chord and Raft protocols were implemented from scratch
in two days using only the original papers as a reference").

Three servers run leader election with terms and a minimal log
replication phase.  A nondeterministic election-timer machine models the
environment, firing timeouts at schedule-chosen servers.  Safety
properties asserted by a checker machine: at most one leader per term
(Election Safety) and committed entries never diverge at an index.

Variants
--------
buggy
    A candidate counts vote grants without checking which term they were
    granted in, so a stale vote from an abandoned election can complete a
    later term's majority and two leaders appear in one term.  The bug
    needs two servers running two interleaved elections each, plus a
    delayed vote delivery — matching Table 2's characterization of Raft's
    bug as the deepest and rarest (%Buggy 2%, by far the largest #SP).
racy
    A leader ships its live log list in heartbeats and keeps mutating it.
"""

from __future__ import annotations

from ..core.events import Event, Halt
from ..core.machine import Machine, State
from ..testing.monitors import Monitor


class EConfig(Event):
    """(peers, checker)"""


class ETimeout(Event):
    """timer -> server: start an election"""


class ERequestVote(Event):
    """(candidate, term, candidate log length)"""


class EVoteGranted(Event):
    """(voter, term)"""


class ELeaderElected(Event):
    """server -> checker: (server, term)"""


class EAppend(Event):
    """leader -> follower: (leader, term, entry)"""


class EAppendAck(Event):
    """(follower, term, entry)"""


class ECommitted(Event):
    """server -> checker: (index, entry)"""


class EFire(Event):
    """driver -> timer: fire one timeout at a nondet-chosen server"""


class EBecomeCandidate(Event):
    pass


class EBecomeLeader(Event):
    pass


class EBackToFollower(Event):
    pass


TIMEOUTS = 4


class ElectionTimer(Machine):
    """Environment: each EFire delivers a timeout to one server, chosen
    by controlled nondeterminism (the paper's random schedulers leave
    such choices random; DFS enumerates them)."""

    class Armed(State):
        initial = True
        entry = "noop"
        actions = {EFire: "on_fire"}

    def noop(self):
        pass

    def on_fire(self):
        servers = self.payload
        which = self.nondet_int(3)
        self.send(servers[which], ETimeout())


class SafetyChecker(Machine):
    """Election safety + committed-entry agreement."""

    class Watching(State):
        initial = True
        entry = "setup"
        actions = {ELeaderElected: "on_leader", ECommitted: "on_committed"}

    def setup(self):
        self.leaders = {}
        self.committed = {}

    def on_leader(self):
        msg = self.payload
        server = msg[0]
        term = msg[1]
        if term in self.leaders:
            self.assert_that(
                self.leaders[term] == server,
                "two leaders elected in the same term",
            )
        else:
            self.leaders[term] = server

    def on_committed(self):
        msg = self.payload
        index = msg[0]
        entry = msg[1]
        if index in self.committed:
            self.assert_that(
                self.committed[index] == entry,
                "committed entries diverge at an index",
            )
        else:
            self.committed[index] = entry


class ElectionSafetyMonitor(Monitor):
    """Raft Election Safety as a specification monitor: at most one leader
    per term.

    Observes ``ELeaderElected`` at *send* time (auto-mirrored), so a
    double election is caught the instant the second leader announces
    itself — before the ``SafetyChecker`` machine even dequeues the
    announcement.  Attach via the benchmark variant's ``monitors``."""

    observes = (ELeaderElected,)

    class Watching(State):
        initial = True
        entry = "setup"
        actions = {ELeaderElected: "on_leader"}

    def setup(self):
        self.leaders = {}

    def on_leader(self):
        msg = self.payload
        server = msg[0]
        term = msg[1]
        if term in self.leaders:
            self.assert_that(
                self.leaders[term] == server,
                f"two leaders elected in term {term}",
            )
        else:
            self.leaders[term] = server


class RaftServer(Machine):
    """Follower / Candidate / Leader roles as explicit states."""

    class Booting(State):
        initial = True
        entry = "init_fields"
        transitions = {EConfig: "Follower"}
        deferred = (ETimeout, ERequestVote, EAppend, EVoteGranted, EAppendAck)

    class Follower(State):
        entry = "become_follower"
        transitions = {EBecomeCandidate: "Candidate"}
        actions = {
            ETimeout: "on_timeout",
            ERequestVote: "on_request_vote",
            EAppend: "on_append",
            EVoteGranted: "ignore_event",
            EAppendAck: "ignore_event",
        }

    class Candidate(State):
        entry = "start_election"
        transitions = {
            EBecomeLeader: "Leader",
            EBackToFollower: "Follower",
            EBecomeCandidate: "Candidate",  # a fresh timeout restarts us
        }
        actions = {
            EVoteGranted: "on_vote_granted",
            ERequestVote: "on_request_vote",
            ETimeout: "on_timeout",
            EAppend: "on_append_as_candidate",
            EAppendAck: "ignore_event",
        }

    class Leader(State):
        entry = "become_leader"
        transitions = {EBackToFollower: "Follower"}
        actions = {
            EAppendAck: "on_append_ack",
            ERequestVote: "on_request_vote",
            EAppend: "on_append_as_leader",
            EVoteGranted: "ignore_event",
            ETimeout: "ignore_event",
        }

    def init_fields(self):
        self.current_term = 0
        self.voted_for = None
        self.votes = 0
        self.log = []
        self.acks = 0
        self.peers = []
        self.checker = None

    def become_follower(self):
        if self.payload is not None and self.current_term == 0:
            config = self.payload
            self.peers = config[0]
            self.checker = config[1]

    def on_timeout(self):
        self.begin_candidacy(self.current_term + 1)

    def begin_candidacy(self, term):
        if term > self.current_term:
            self.current_term = term
            self.voted_for = self.id
            self.votes = 1
            self.raise_event(EBecomeCandidate())

    def start_election(self):
        for peer in self.peers:
            self.send(
                peer, ERequestVote((self.id, self.current_term, len(self.log)))
            )

    def on_request_vote(self):
        msg = self.payload
        candidate = msg[0]
        term = msg[1]
        candidate_log = msg[2]
        # Raft's up-to-date restriction: never elect a leader missing
        # committed entries (Section 5.4.1 of the Raft paper).
        up_to_date = candidate_log >= len(self.log)
        if term > self.current_term:
            self.current_term = term
            if up_to_date:
                self.voted_for = candidate
                self.send(candidate, EVoteGranted((self.id, term)))
            else:
                self.voted_for = None
        elif term == self.current_term and self.voted_for is None and up_to_date:
            self.voted_for = candidate
            self.send(candidate, EVoteGranted((self.id, term)))

    def on_vote_granted(self):
        msg = self.payload
        term = msg[1]
        if term == self.current_term:
            self.votes = self.votes + 1
            if self.votes == 2:  # majority of 3 (self + one peer)
                self.raise_event(EBecomeLeader())

    def become_leader(self):
        self.send(self.checker, ELeaderElected((self.id, self.current_term)))
        entry = self.current_term * 100
        self.log.append(entry)
        self.acks = 1
        for peer in self.peers:
            self.send(peer, EAppend((self.id, self.current_term, entry)))

    def apply_append(self, msg):
        leader = msg[0]
        term = msg[1]
        if term >= self.current_term:
            self.current_term = term
            # The entry value is term-determined; recomputing it keeps the
            # log free of payload aliases.
            self.log.append(term * 100)
            self.send(leader, EAppendAck((self.id, term, term * 100)))

    def on_append(self):
        self.apply_append(self.payload)

    def on_append_as_candidate(self):
        msg = self.payload
        term = msg[1]
        self.apply_append(msg)
        if term >= self.current_term:
            self.raise_event(EBackToFollower())

    def on_append_as_leader(self):
        msg = self.payload
        term = msg[1]
        if term > self.current_term:
            self.apply_append(msg)
            self.raise_event(EBackToFollower())

    def on_append_ack(self):
        msg = self.payload
        term = msg[1]
        entry = msg[2]
        if term == self.current_term:
            self.acks = self.acks + 1
            if self.acks == 2:  # majority of 3
                index = len(self.log) - 1
                self.send(self.checker, ECommitted((index, entry)))

    def ignore_event(self):
        pass


class BuggyRaftServer(RaftServer):
    """Counts vote grants without a term check — the seeded deep bug."""

    def on_vote_granted(self):
        msg = self.payload
        # BUG: a vote granted in an abandoned earlier election still
        # counts toward the current term's majority.
        self.votes = self.votes + 1
        if self.votes == 2:
            self.raise_event(EBecomeLeader())


class RacyRaftServer(RaftServer):
    """Ships the live log list inside heartbeats."""

    def become_leader(self):
        self.send(self.checker, ELeaderElected((self.id, self.current_term)))
        entry = self.current_term * 100
        self.log.append(entry)
        self.acks = 1
        for peer in self.peers:
            self.send(peer, EAppend((self.id, self.current_term, self.log)))
        self.log.append(0)  # seeded race: mutate after sending


class RaftDriver(Machine):
    class Booting(State):
        initial = True
        entry = "setup"

    def setup(self):
        checker = self.create_machine(SafetyChecker)
        timer = self.create_machine(ElectionTimer)
        servers = []
        servers.append(self.create_machine(RaftServer))
        servers.append(self.create_machine(RaftServer))
        servers.append(self.create_machine(RaftServer))
        self.wire(servers, checker, timer)

    def wire(self, servers, checker, timer):
        for server in servers:
            peers = [s for s in servers if s != server]
            self.send(server, EConfig((peers, checker)))
        for _i in range(TIMEOUTS):
            self.send(timer, EFire(servers))
        self.halt()


class BuggyRaftDriver(RaftDriver):
    def setup(self):
        checker = self.create_machine(SafetyChecker)
        timer = self.create_machine(ElectionTimer)
        servers = []
        servers.append(self.create_machine(BuggyRaftServer))
        servers.append(self.create_machine(BuggyRaftServer))
        servers.append(self.create_machine(BuggyRaftServer))
        self.wire(servers, checker, timer)


class RacyRaftDriver(RaftDriver):
    def setup(self):
        checker = self.create_machine(SafetyChecker)
        timer = self.create_machine(ElectionTimer)
        servers = []
        servers.append(self.create_machine(RacyRaftServer))
        servers.append(self.create_machine(RacyRaftServer))
        servers.append(self.create_machine(RacyRaftServer))
        self.wire(servers, checker, timer)


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="Raft",
        suite="psharpbench",
        correct=Variant(
            machines=[RaftDriver, RaftServer, ElectionTimer, SafetyChecker],
            main=RaftDriver,
            monitors=(ElectionSafetyMonitor,),
        ),
        racy=Variant(
            machines=[RacyRaftDriver, RacyRaftServer, ElectionTimer, SafetyChecker],
            main=RacyRaftDriver,
        ),
        buggy=Variant(
            machines=[BuggyRaftDriver, BuggyRaftServer, ElectionTimer, SafetyChecker],
            main=BuggyRaftDriver,
            monitors=(ElectionSafetyMonitor,),
        ),
        seeded_races=1,
        notes="heartbeat clears voted_for: two leaders in one term, deep",
    )
)
