"""Fault-enabled benchmark variants: bugs reachable only under faults.

The paper tests *schedule* nondeterminism; real distributed protocols
also face *environment* nondeterminism — lossy networks and crashing
nodes.  These variants pair existing PSharpBench protocols with a
:class:`~repro.testing.faults.FaultConfig` so the tester explores both
kinds of nondeterminism at once, deterministically (every injected fault
is a strategy decision recorded in the schedule trace).

Each benchmark here carries a bug that **no schedule can reach without
faults**:

``RaftLossy``
    The *correct* Raft implementation plus an election-progress liveness
    monitor, driven by a timer that aims every timeout at one fixed
    server.  With reliable delivery that server always wins an election:
    it is the only candidate, each peer's inbox serves its vote requests
    in term order, so the final-term request always finds ``term >
    current_term`` and draws a grant that completes the majority (the
    stock nondeterministic timer does *not* give this guarantee — three
    interleaved candidacies can split-vote and exhaust the timeout
    budget leaderless, schedule alone).  The monitor goes cold and the
    run is clean.  Under message drops a vote request, a grant — or the
    server's initial config — can vanish, the system quiesces
    leaderless, and the monitor is still hot at termination: a liveness
    violation whose *only* cause is loss.

``TwoPhaseCommitCrash``
    Two-phase commit with a coordinator that crash-restarts from
    durable state (``persistent_fields``).  The correct recovery rule is
    *presumed abort*: a coordinator that cannot find a logged decision
    for the in-flight transaction must abort it.  The buggy variant
    recovers with *presumed commit* — sound-looking (it only commits
    what it was already voting on) but wrong: the un-logged missing vote
    may be a NO, and a participant then applies a commit for a
    transaction it rejected.  Without crash faults both coordinators
    behave identically to the stock ``Coordinator``, so the bug is
    crash-only by construction.
"""

from __future__ import annotations

from ..core.machine import Machine, State
from ..testing.faults import FaultConfig
from ..testing.monitors import Monitor, cold, hot
from .raft import (
    TIMEOUTS,
    EConfig,
    EFire,
    ELeaderElected,
    ETimeout as ERaftTimeout,
    RaftServer,
    SafetyChecker,
)
from .two_phase_commit import (
    AtomicityChecker,
    AtomicityMonitor,
    Coordinator,
    EStartTxn,
    ETimeout,
    EVote,
    Participant,
    Timer,
)


# ---------------------------------------------------------------------------
# RaftLossy: leader election under message loss
# ---------------------------------------------------------------------------
class ElectionProgressMonitor(Monitor):
    """Liveness spec: an election eventually completes.

    Hot from boot until the first ``ELeaderElected`` announcement
    (observed at send time, so a dropped announcement still cools the
    monitor — the drop models network loss, not a failure of the
    elected server to exist).  Loss-free Raft always elects within the
    driver's timeout budget; staying hot at termination therefore
    witnesses a loss-induced election failure."""

    observes = (ELeaderElected,)

    @hot
    class AwaitingLeader(State):
        initial = True
        transitions = {ELeaderElected: "LeaderElected"}

    @cold
    class LeaderElected(State):
        ignored = (ELeaderElected,)


class FixedElectionTimer(Machine):
    """Environment for the lossy variant: every timeout goes to server 0.

    A single repeatedly-timing-out server is the configuration whose
    election *provably* succeeds under reliable delivery (see the module
    docstring) — which is what makes leaderless termination a faithful
    witness of message loss rather than of schedule-chosen vote
    splitting."""

    class Armed(State):
        initial = True
        entry = "noop"
        actions = {EFire: "on_fire"}

    def noop(self):
        pass

    def on_fire(self):
        servers = self.payload
        self.send(servers[0], ERaftTimeout())


class LossyRaftDriver(Machine):
    """Boots three correct Raft servers under the fixed-target timer."""

    class Booting(State):
        initial = True
        entry = "setup"

    def setup(self):
        checker = self.create_machine(SafetyChecker)
        timer = self.create_machine(FixedElectionTimer)
        servers = []
        servers.append(self.create_machine(RaftServer))
        servers.append(self.create_machine(RaftServer))
        servers.append(self.create_machine(RaftServer))
        for server in servers:
            peers = [s for s in servers if s != server]
            self.send(server, EConfig((peers, checker)))
        for _i in range(TIMEOUTS):
            self.send(timer, EFire(servers))
        self.halt()


#: Per-send drop probability (permille-rounded by FaultConfig) and fault
#: budget for the lossy-network environment.  A quarter of sends dropped,
#: at most 8 per execution: deep enough to starve an election, bounded
#: enough that most schedules still terminate quickly.
RAFT_LOSSY_FAULTS = FaultConfig(drop=0.25, max_faults=8)


# ---------------------------------------------------------------------------
# TwoPhaseCommitCrash: coordinator crash-restart recovery
# ---------------------------------------------------------------------------
class RecoverableCoordinator(Coordinator):
    """A 2PC coordinator that survives crash-restart faults.

    Its durable state (``persistent_fields``) is what a real coordinator
    would write-ahead-log: the participant/timer/checker wiring, the
    current transaction number and whether it was decided.  The volatile
    vote counts are deliberately *not* durable — losing them is exactly
    the recovery dilemma 2PC's presumed-abort rule resolves.

    On reboot the initial state's entry handler distinguishes first boot
    (``booted`` unset) from recovery, where it applies **presumed
    abort**: an undecided in-flight transaction is aborted (always safe
    — no participant can have applied a commit the coordinator never
    sent), then the protocol resumes with the next transaction.
    """

    persistent_fields = (
        "booted", "checker", "timer", "participants", "txn", "decided",
    )

    class Booting(State):
        initial = True
        entry = "boot_or_recover"
        transitions = {EStartTxn: "Preparing"}
        # Stale messages from before the crash (a late vote from a
        # participant that had not yet processed its prepare, the old
        # transaction's timeout) must not wedge the rebooting machine.
        ignored = (EVote, ETimeout)

    def boot_or_recover(self):
        if not getattr(self, "booted", False):
            self.booted = True
            self.setup()
        elif not self.decided:
            self.recover_undecided()
        else:
            # Crashed between deciding and starting the next round: the
            # self-posted EStartTxn was volatile (inbox), so re-post it.
            self.next_txn()

    def recover_undecided(self):
        self.decide(False)  # presumed abort: always safe


class PresumedCommitCoordinator(RecoverableCoordinator):
    """Recovers with *presumed commit* — the crash-only seeded bug."""

    def recover_undecided(self):
        # BUG: the votes lost in the crash may have included a NO; the
        # participant that cast it will assert on applying this commit,
        # and the atomicity monitor fires at the commit send.
        self.decide(True)


#: Crash probability per scheduling opportunity of the coordinator, with
#: a budget of 2 crash-restarts per execution.  Only the coordinator
#: crashes: the seeded bug is in its recovery logic, and restricting the
#: blast radius keeps executions short.
TPC_CRASH_FAULTS = FaultConfig(
    crash=0.10, max_faults=2, crash_classes=(RecoverableCoordinator,),
)


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="RaftLossy",
        suite="faults",
        correct=Variant(
            machines=[LossyRaftDriver, RaftServer, FixedElectionTimer, SafetyChecker],
            main=LossyRaftDriver,
            monitors=(ElectionProgressMonitor,),
        ),
        buggy=Variant(
            machines=[LossyRaftDriver, RaftServer, FixedElectionTimer, SafetyChecker],
            main=LossyRaftDriver,
            monitors=(ElectionProgressMonitor,),
            faults=RAFT_LOSSY_FAULTS,
        ),
        bug_kind="liveness",
        notes="correct Raft; message drops starve leader election",
    )
)

register(
    Benchmark(
        name="TwoPhaseCommitCrash",
        suite="faults",
        correct=Variant(
            machines=[RecoverableCoordinator, Participant, AtomicityChecker, Timer],
            main=RecoverableCoordinator,
            monitors=(AtomicityMonitor,),
            faults=TPC_CRASH_FAULTS,
        ),
        buggy=Variant(
            machines=[
                PresumedCommitCoordinator, Participant, AtomicityChecker, Timer,
            ],
            main=PresumedCommitCoordinator,
            monitors=(AtomicityMonitor,),
            faults=TPC_CRASH_FAULTS,
        ),
        notes="presumed-commit recovery after coordinator crash-restart",
    )
)
