"""Benchmark programs: PSharpBench, SOTER-P# and the AsyncSystem case study."""

from .registry import Benchmark, Variant, all_benchmarks, get, suite

__all__ = ["Benchmark", "Variant", "all_benchmarks", "get", "suite"]
