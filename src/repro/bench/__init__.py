"""Benchmark programs: PSharpBench, SOTER-P# and the AsyncSystem case study."""

from .registry import (
    Benchmark,
    Variant,
    all_benchmarks,
    buggy_main,
    get,
    liveness_suite,
    names,
    resolve,
    resolve_target,
    suite,
    table2_suite,
)

__all__ = [
    "Benchmark",
    "Variant",
    "all_benchmarks",
    "buggy_main",
    "get",
    "liveness_suite",
    "names",
    "resolve",
    "resolve_target",
    "suite",
    "table2_suite",
]
