"""Chain replication [26] (ported from the P benchmarks).

Writes enter at the head, propagate down the chain, and are acknowledged
from the tail; reads are served by the tail.  The invariant asserted by
the client: a read issued after a write's ack must observe that write
(the linearizability guarantee chain replication provides).

A failure-detector environment machine nondeterministically "fails" the
middle node and splices the chain (head -> tail).

Variants
--------
buggy
    On reconfiguration the new chain drops the failed node's in-flight
    updates instead of re-propagating them, so an acknowledged write can
    vanish.  Like the paper's ChReplication bug ("occurred 100% of the
    time; ... requires only one of several random binary choices made by
    the non-deterministic environment"), it hinges on environment
    choices rather than a rare interleaving.
racy
    The head forwards its live pending-update list down the chain.
"""

from __future__ import annotations

from ..core.events import Event, Halt
from ..core.machine import Machine, State


class EChain(Event):
    """(successor or None, is_tail)"""


class EWrite(Event):
    """client -> head: (key, value, client)"""


class EPropagate(Event):
    """(key, value, client)"""


class EWriteAck(Event):
    """tail -> client: (key, value)"""


class ERead(Event):
    """client -> tail: (key, client)"""


class EReadReply(Event):
    """tail -> client: (key, value or None)"""


class EFail(Event):
    """failure detector -> node: drop out of the chain"""


class ESplice(Event):
    """failure detector -> head: (new successor)"""


class EMaybeFail(Event):
    """driver -> detector: consider failing the middle node"""


class EPending(Event):
    """racy payload: the live pending list"""


class Replica(Machine):
    """One chain node; behaves as head, middle or tail based on wiring."""

    class Booting(State):
        initial = True
        entry = "init_fields"
        transitions = {EChain: "Serving"}
        deferred = (EWrite, EPropagate, ERead)

    class Serving(State):
        entry = "configure"
        actions = {
            EWrite: "on_write",
            EPropagate: "on_propagate",
            ERead: "on_read",
            EFail: "on_fail",
            ESplice: "on_splice",
        }
        ignored = (EPending,)

    class Failed(State):
        ignored = (EWrite, EPropagate, ERead, EFail, ESplice, EChain, EPending)

    def init_fields(self):
        self.store = {}
        self.successor = None
        self.is_tail = False

    def configure(self):
        config = self.payload
        self.successor = config[0]
        self.is_tail = config[1]

    def on_write(self):
        self.apply_update(self.payload)

    def on_propagate(self):
        self.apply_update(self.payload)

    def apply_update(self, msg):
        key = msg[0]
        value = msg[1]
        client = msg[2]
        self.store[key] = value
        if self.is_tail:
            self.send(client, EWriteAck((key, value)))
        else:
            self.send(self.successor, EPropagate((key, value, client)))

    def on_read(self):
        msg = self.payload
        key = msg[0]
        client = msg[1]
        found = None
        if key in self.store:
            found = self.store[key]
        self.send(client, EReadReply((key, found)))

    def on_fail(self):
        self.raise_event(EFailNow())

    def on_splice(self):
        self.successor = self.payload


class EFailNow(Event):
    pass


# EFailNow is raised internally; wire it into the Serving state.
class ReplicaNode(Replica):
    class Serving(State):
        entry = "configure"
        transitions = {EFailNow: "Failed"}
        actions = {
            EWrite: "on_write",
            EPropagate: "on_propagate",
            ERead: "on_read",
            EFail: "on_fail",
            ESplice: "on_splice",
        }
        ignored = (EPending,)


class FailureDetector(Machine):
    """Environment: on EMaybeFail, nondeterministically fails the middle
    node and splices head -> tail."""

    class Watching(State):
        initial = True
        entry = "noop"
        actions = {EMaybeFail: "on_maybe_fail"}

    def noop(self):
        pass

    def on_maybe_fail(self):
        chain = self.payload
        head = chain[0]
        middle = chain[1]
        tail = chain[2]
        if self.nondet():
            self.send(middle, EFail())
            self.send(head, ESplice(tail))


class ChainClient(Machine):
    """Writes a key, waits for the ack, then reads it back and asserts
    the acknowledged write is visible."""

    class Writing(State):
        initial = True
        entry = "setup"
        transitions = {EWriteAck: "Reading"}
        ignored = (EReadReply,)

    class Reading(State):
        entry = "issue_read"
        actions = {EReadReply: "on_reply"}
        ignored = (EWriteAck,)

    def setup(self):
        detector = self.create_machine(FailureDetector)
        head = self.create_machine(ReplicaNode)
        middle = self.create_machine(ReplicaNode)
        tail = self.create_machine(ReplicaNode)
        self.tail = tail
        self.send(tail, EChain((None, True)))
        self.send(middle, EChain((tail, False)))
        self.send(head, EChain((middle, False)))
        self.send(head, EWrite((7, 77, self.id)))
        self.send(detector, EMaybeFail((head, middle, tail)))

    def issue_read(self):
        msg = self.payload
        self.expected_key = msg[0]
        self.expected_value = msg[1]
        self.send(self.tail, ERead((self.expected_key, self.id)))

    def on_reply(self):
        msg = self.payload
        value = msg[1]
        self.assert_that(
            value == self.expected_value,
            "acknowledged write is not visible at the tail",
        )
        self.halt()


class BuggyReplicaNode(ReplicaNode):
    """BUG: a non-tail node acknowledges the write as soon as it applies
    it locally, before the update is durable at the tail.  The client's
    read then races the in-flight propagation down the chain — a shallow,
    frequently-hit bug like the paper's ChReplication one."""

    def apply_update(self, msg):
        key = msg[0]
        value = msg[1]
        client = msg[2]
        self.store[key] = value
        if self.is_tail:
            self.send(client, EWriteAck((key, value)))
        else:
            # BUG: premature acknowledgement from a middle node.
            self.send(client, EWriteAck((key, value)))
            self.send(self.successor, EPropagate((key, value, client)))


class BuggyChainClient(ChainClient):
    def setup(self):
        detector = self.create_machine(FailureDetector)
        head = self.create_machine(BuggyReplicaNode)
        middle = self.create_machine(BuggyReplicaNode)
        tail = self.create_machine(BuggyReplicaNode)
        self.tail = tail
        self.send(tail, EChain((None, True)))
        self.send(middle, EChain((tail, False)))
        self.send(head, EChain((middle, False)))
        self.send(head, EWrite((7, 77, self.id)))
        self.send(detector, EMaybeFail((head, middle, tail)))


class RacyReplicaNode(ReplicaNode):
    """Forwards its live pending list down the chain."""

    def init_fields(self):
        self.store = {}
        self.successor = None
        self.is_tail = False
        self.pending = []

    def apply_update(self, msg):
        key = msg[0]
        value = msg[1]
        client = msg[2]
        self.store[key] = value
        if self.is_tail:
            self.send(client, EWriteAck((key, value)))
        else:
            self.pending.append(key)
            self.send(self.successor, EPending(self.pending))  # seeded race
            self.pending.append(0)
            self.send(self.successor, EPropagate((key, value, client)))


class RacyChainClient(ChainClient):
    def setup(self):
        detector = self.create_machine(FailureDetector)
        head = self.create_machine(RacyReplicaNode)
        middle = self.create_machine(RacyReplicaNode)
        tail = self.create_machine(RacyReplicaNode)
        self.tail = tail
        self.send(tail, EChain((None, True)))
        self.send(middle, EChain((tail, False)))
        self.send(head, EChain((middle, False)))
        self.send(head, EWrite((7, 77, self.id)))
        self.send(detector, EMaybeFail((head, middle, tail)))


from .registry import Benchmark, Variant, register

register(
    Benchmark(
        name="ChainReplication",
        suite="psharpbench",
        correct=Variant(
            machines=[ChainClient, ReplicaNode, FailureDetector],
            main=ChainClient,
        ),
        racy=Variant(
            machines=[RacyChainClient, RacyReplicaNode, FailureDetector],
            main=RacyChainClient,
        ),
        buggy=Variant(
            machines=[BuggyChainClient, BuggyReplicaNode, FailureDetector],
            main=BuggyChainClient,
        ),
        seeded_races=1,
        notes="environment-choice bug: failure drops an acked in-flight write",
    )
)
