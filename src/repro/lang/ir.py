"""Abstract syntax of the paper's core object-oriented language (Figure 2).

The statement forms mirror the paper's grammar::

    stmt s ::= send_dst evt(v) | return v | v := v | v := c
             | v := v op v | this.v := v | v := this.v
             | v := new class | v := v.m(v...)
             | if (v) ss else ss | while (v) ss

plus a few extensions used by the implementation, all of which the paper's
implementation also supports: ``assert``, controlled nondeterminism,
dynamic machine creation ("our implementation ... does allow for dynamic
machine instantiation", Section 4), and ``External`` — an opaque value
used by the cross-state analysis when lifting handler payloads.

Member variables of *other* objects are only accessible through method
calls, exactly as in the paper ("a member of another class is only
accessible via appropriate method calls"); the Python frontend desugars
``obj.field`` accesses into synthetic accessor methods to satisfy this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

SCALAR_TYPES = frozenset({"int", "bool", "float", "str", "void", "scalar"})


def is_scalar(type_name: str) -> bool:
    return type_name in SCALAR_TYPES


@dataclass(frozen=True)
class VarDecl:
    name: str
    type: str  # a SCALAR_TYPES member, "machine", or a class name

    @property
    def is_reference(self) -> bool:
        return not is_scalar(self.type)


class Stmt:
    """Base class of all statements; ``loc`` is a human-readable source tag."""

    loc: str = ""

    def vars_used(self) -> List[str]:
        """Variables whose *values* this statement reads."""
        return []

    def vars_occurring(self) -> List[str]:
        """All variables syntactically occurring in the statement
        (the paper's ``vars(N)``)."""
        return self.vars_used()


@dataclass
class Assign(Stmt):
    """``dst := src``"""

    dst: str
    src: str
    loc: str = ""

    def vars_used(self):
        return [self.src]

    def vars_occurring(self):
        return [self.dst, self.src]

    def __str__(self):
        return f"{self.dst} := {self.src}"


@dataclass
class Const(Stmt):
    """``dst := c`` (also covers ``null`` via value None)"""

    dst: str
    value: object
    loc: str = ""

    def vars_occurring(self):
        return [self.dst]

    def __str__(self):
        return f"{self.dst} := {self.value!r}"


@dataclass
class Op(Stmt):
    """``dst := left op right`` — scalars only."""

    dst: str
    left: str
    op: str
    right: str
    loc: str = ""

    def vars_used(self):
        return [self.left, self.right]

    def vars_occurring(self):
        return [self.dst, self.left, self.right]

    def __str__(self):
        return f"{self.dst} := {self.left} {self.op} {self.right}"


@dataclass
class StoreField(Stmt):
    """``this.field := src``"""

    field: str
    src: str
    loc: str = ""

    def vars_used(self):
        return [self.src]

    def vars_occurring(self):
        return ["this", self.src]

    def __str__(self):
        return f"this.{self.field} := {self.src}"


@dataclass
class LoadField(Stmt):
    """``dst := this.field``"""

    dst: str
    field: str
    loc: str = ""

    def vars_used(self):
        return ["this"]

    def vars_occurring(self):
        return [self.dst, "this"]

    def __str__(self):
        return f"{self.dst} := this.{self.field}"


@dataclass
class New(Stmt):
    """``dst := new cls``"""

    dst: str
    cls: str
    loc: str = ""

    def vars_occurring(self):
        return [self.dst]

    def __str__(self):
        return f"{self.dst} := new {self.cls}"


@dataclass
class Call(Stmt):
    """``dst := recv.method(args)`` (dst may be None for void calls)."""

    dst: Optional[str]
    recv: str
    method: str
    args: List[str] = field(default_factory=list)
    loc: str = ""

    def vars_used(self):
        return [self.recv, *self.args]

    def vars_occurring(self):
        occurring = [self.recv, *self.args]
        if self.dst is not None:
            occurring.append(self.dst)
        return occurring

    def __str__(self):
        prefix = f"{self.dst} := " if self.dst else ""
        return f"{prefix}{self.recv}.{self.method}({', '.join(self.args)})"


@dataclass
class Send(Stmt):
    """``send dst evt(arg)`` — transfers ownership of ``arg``'s reachable heap."""

    dst: str
    event: str
    arg: Optional[str] = None
    loc: str = ""

    def vars_used(self):
        return [self.dst] + ([self.arg] if self.arg is not None else [])

    def __str__(self):
        arg = self.arg if self.arg is not None else ""
        return f"send {self.dst} {self.event}({arg})"


@dataclass
class Return(Stmt):
    """``return v`` (v may be None for void)."""

    var: Optional[str] = None
    loc: str = ""

    def vars_used(self):
        return [self.var] if self.var is not None else []

    def __str__(self):
        return f"return {self.var or ''}"


@dataclass
class If(Stmt):
    cond: str
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)
    loc: str = ""

    def vars_used(self):
        return [self.cond]

    def __str__(self):
        return f"if ({self.cond}) ..."


@dataclass
class While(Stmt):
    cond: str
    body: List[Stmt] = field(default_factory=list)
    loc: str = ""

    def vars_used(self):
        return [self.cond]

    def __str__(self):
        return f"while ({self.cond}) ..."


@dataclass
class Assert(Stmt):
    """``assert v`` — scalar condition; a bug when false (extension)."""

    var: str
    message: str = "assertion failed"
    loc: str = ""

    def vars_used(self):
        return [self.var]

    def __str__(self):
        return f"assert {self.var}"


@dataclass
class Nondet(Stmt):
    """``dst := nondet`` — controlled nondeterministic boolean (extension)."""

    dst: str
    loc: str = ""

    def vars_occurring(self):
        return [self.dst]

    def __str__(self):
        return f"{self.dst} := nondet"


@dataclass
class CreateMachine(Stmt):
    """``dst := create machine_name(arg)`` — dynamic instantiation."""

    dst: str
    machine: str
    arg: Optional[str] = None
    loc: str = ""

    def vars_used(self):
        return [self.arg] if self.arg is not None else []

    def vars_occurring(self):
        used = self.vars_used()
        return [self.dst, *used]

    def __str__(self):
        return f"{self.dst} := create {self.machine}({self.arg or ''})"


@dataclass
class External(Stmt):
    """``dst := external`` — an opaque value from outside the method.

    Used when the cross-state analysis lifts a handler payload into the
    overarching machine CFG: each handler invocation receives a fresh,
    unknown payload.
    """

    dst: str
    loc: str = ""

    def vars_occurring(self):
        return [self.dst]

    def __str__(self):
        return f"{self.dst} := external"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------
@dataclass
class MethodDecl:
    """``type m(vd) { vd ss }`` of Figure 2."""

    name: str
    params: List[VarDecl] = field(default_factory=list)
    locals: List[VarDecl] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    ret_type: str = "void"

    def param_names(self) -> List[str]:
        return [p.name for p in self.params]

    def reference_params(self) -> List[str]:
        return [p.name for p in self.params if p.is_reference]

    def var_type(self, name: str) -> Optional[str]:
        for v in self.params:
            if v.name == name:
                return v.type
        for v in self.locals:
            if v.name == name:
                return v.type
        return None


@dataclass
class ClassDecl:
    """``class class { vd md }`` of Figure 2.

    ``taint_summary`` — when set, the class is *summary-only* (a built-in
    like ``list``): each method maps input roles to the output roles its
    taint flows into (see :mod:`repro.analysis.taint`), and has no body.
    """

    name: str
    fields: List[VarDecl] = field(default_factory=list)
    methods: Dict[str, MethodDecl] = field(default_factory=dict)
    taint_summary: Optional[Dict[str, Dict[str, frozenset]]] = None

    def field_names(self) -> List[str]:
        return [f.name for f in self.fields]


@dataclass
class StateHandler:
    """One row of a machine's transition function ``Tm``: in state
    ``state``, event ``event`` is handled by invoking ``method`` (with the
    payload as its argument) and moving to ``next_state``."""

    state: str
    event: str
    method: str
    next_state: str


@dataclass
class MachineDecl:
    """A machine: a class, an initial state, and a transition function
    (the ``(class_m, q_m, Q_m, T_m)`` tuple of Section 4).

    ``initial`` names the method that runs on startup.  In the core
    calculus states *are* methods, so the initial state name coincides
    with it; frontends whose state names differ from their entry-method
    names (the Python embedding) set ``initial_state`` explicitly.
    """

    name: str
    class_name: str
    initial: str  # the 0/1-argument startup method
    handlers: List[StateHandler] = field(default_factory=list)
    initial_state: str = ""

    def __post_init__(self) -> None:
        if not self.initial_state:
            self.initial_state = self.initial

    def transition(self, state: str, event: str) -> Optional[StateHandler]:
        for handler in self.handlers:
            if handler.state == state and handler.event == event:
                return handler
        return None

    def states(self) -> List[str]:
        names = [self.initial_state]
        for handler in self.handlers:
            for state in (handler.state, handler.next_state):
                if state not in names:
                    names.append(state)
        return names

    def handled_events(self, state: str) -> List[str]:
        return [h.event for h in self.handlers if h.state == state]


@dataclass
class Program:
    """A whole system: classes, machines, and the initial machine set."""

    classes: Dict[str, ClassDecl] = field(default_factory=dict)
    machines: Dict[str, MachineDecl] = field(default_factory=dict)
    name: str = "program"

    def cls(self, name: str) -> ClassDecl:
        return self.classes[name]

    def method(self, class_name: str, method_name: str) -> Optional[MethodDecl]:
        klass = self.classes.get(class_name)
        if klass is None:
            return None
        return klass.methods.get(method_name)

    def machine_class(self, machine_name: str) -> ClassDecl:
        return self.classes[self.machines[machine_name].class_name]


def flatten(body: List[Stmt]) -> List[Stmt]:
    """All statements in a body, recursing into if/while blocks."""
    out: List[Stmt] = []
    for stmt in body:
        out.append(stmt)
        if isinstance(stmt, If):
            out.extend(flatten(stmt.then_body))
            out.extend(flatten(stmt.else_body))
        elif isinstance(stmt, While):
            out.extend(flatten(stmt.body))
    return out
