"""Control flow graphs over the core-language IR.

"We represent each method as a single-entry, single-exit control flow
graph (CFG), where each CFG node consists of a single statement.  The
entry and exit nodes are denoted Entry and Exit.  Employing CFGs allows us
to treat conditionals, loops and sequences of statements in a uniform
manner" (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from .ir import If, MethodDecl, Return, Stmt, While


@dataclass
class Node:
    """A CFG node holding at most one statement (None for Entry/Exit)."""

    index: int
    stmt: Optional[Stmt] = None
    label: str = ""
    succs: List["Node"] = field(default_factory=list)
    preds: List["Node"] = field(default_factory=list)

    @property
    def is_entry(self) -> bool:
        return self.label == "Entry"

    @property
    def is_exit(self) -> bool:
        return self.label == "Exit"

    def __hash__(self) -> int:
        return self.index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.index == self.index

    def __repr__(self) -> str:
        if self.stmt is None:
            return f"<{self.label}>"
        where = f" @{self.stmt.loc}" if self.stmt.loc else ""
        return f"<n{self.index}: {self.stmt}{where}>"


class Cfg:
    """Single-entry single-exit CFG of one method."""

    def __init__(self, method: MethodDecl) -> None:
        self.method = method
        self.nodes: List[Node] = []
        self.entry = self._node(label="Entry")
        self.exit = self._node(label="Exit")
        tails = self._build(method.body, [self.entry])
        for tail in tails:
            self._edge(tail, self.exit)

    # -- construction ----------------------------------------------------
    def _node(self, stmt: Optional[Stmt] = None, label: str = "") -> Node:
        node = Node(index=len(self.nodes), stmt=stmt, label=label)
        self.nodes.append(node)
        return node

    def _edge(self, src: Node, dst: Node) -> None:
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)

    def _build(self, body: List[Stmt], tails: List[Node]) -> List[Node]:
        """Append ``body`` after every node in ``tails``; return new tails."""
        for stmt in body:
            if not tails:
                break  # unreachable code after return
            if isinstance(stmt, If):
                cond = self._node(stmt)
                for tail in tails:
                    self._edge(tail, cond)
                # _build returns [cond] unchanged for an empty branch, which
                # models the fall-through edge.
                then_tails = self._build(stmt.then_body, [cond])
                else_tails = self._build(stmt.else_body, [cond])
                tails = list(dict.fromkeys(then_tails + else_tails))
            elif isinstance(stmt, While):
                cond = self._node(stmt)
                for tail in tails:
                    self._edge(tail, cond)
                body_tails = self._build(stmt.body, [cond])
                for tail in body_tails:
                    self._edge(tail, cond)  # back edge
                tails = [cond]
            elif isinstance(stmt, Return):
                node = self._node(stmt)
                for tail in tails:
                    self._edge(tail, node)
                self._edge(node, self.exit)
                tails = []
            else:
                node = self._node(stmt)
                for tail in tails:
                    self._edge(tail, node)
                tails = [node]
        return tails

    # -- queries ---------------------------------------------------------
    def statement_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.stmt is not None]

    def reachable_from(self, start: Node, *, skip_start: bool = True) -> Set[Node]:
        """Nodes reachable from ``start`` by following successor edges."""
        seen: Set[Node] = set()
        stack = list(start.succs) if skip_start else [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(node.succs)
        return seen

    def reaching(self, target: Node, *, skip_target: bool = True) -> Set[Node]:
        """Nodes from which ``target`` is reachable (backwards closure)."""
        seen: Set[Node] = set()
        stack = list(target.preds) if skip_target else [target]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(node.preds)
        return seen

    def __str__(self) -> str:
        lines = [f"cfg of {self.method.name}:"]
        for node in self.nodes:
            succs = ", ".join(f"n{s.index}" for s in node.succs)
            lines.append(f"  {node!r} -> [{succs}]")
        return "\n".join(lines)


def build_cfgs(methods: Iterable[MethodDecl]) -> Dict[str, Cfg]:
    return {m.name: Cfg(m) for m in methods}
