"""Operational semantics of the core language (Figures 3 and 4).

The interpreter executes system configurations ``(h, M)`` where ``h`` is a
heap shared between machines and ``M`` maps machine identifiers to machine
configurations ``(m, q, E, l, S, ss)`` — machine, current state, event
queue, local store, call stack and statements left to execute.

Transitions follow the paper's three rules:

INTERNAL
    execute one statement of one machine (Figure 3's small-step rules);
SEND
    append the event to the destination's queue (including self-sends);
RECEIVE
    when a machine has no statement left, use the transition function
    ``T_m`` to find the first handleable queued event, move to the next
    state and invoke its method with the payload.

The interleaving of machines is decided by a pluggable ``chooser`` — a
step-granularity scheduler used by the systematic explorer and by the
dynamic race detector tests.  The race detector implements the paper's
Section 5 definition via vector clocks: two accesses to the same
``(object, field)`` from different machines race when they are causally
unordered (no chain of send/receive or creation edges between them) and
at least one is a write.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .ir import (
    Assert,
    Assign,
    Call,
    Const,
    CreateMachine,
    External,
    If,
    LoadField,
    MethodDecl,
    New,
    Nondet,
    Op,
    Program,
    Return,
    Send,
    StoreField,
    Stmt,
    While,
)


class InterpreterError(Exception):
    """A genuine bug in the interpreted program (assertion failure etc.)."""


@dataclass(frozen=True)
class Ref:
    """A heap reference (the paper's ``ref``)."""

    id: int
    cls: str

    def __repr__(self) -> str:
        return f"&{self.cls}#{self.id}"


@dataclass(frozen=True)
class MachineVal:
    """A machine identifier value (member of the paper's ``ID`` set)."""

    id: int
    name: str = ""

    def __repr__(self) -> str:
        return f"#{self.name}{self.id}"


@dataclass
class RaceReport:
    """Two causally-unordered conflicting accesses to the same field."""

    ref: Ref
    field: str
    first_machine: int
    first_stmt: str
    second_machine: int
    second_stmt: str
    second_is_write: bool

    def __str__(self) -> str:
        kind = "write" if self.second_is_write else "read"
        return (
            f"race on {self.ref}.{self.field}: machine {self.first_machine} "
            f"({self.first_stmt}) vs machine {self.second_machine} "
            f"{kind} ({self.second_stmt})"
        )


class _VectorClock:
    __slots__ = ("clocks",)

    def __init__(self, clocks: Optional[Dict[int, int]] = None) -> None:
        self.clocks: Dict[int, int] = dict(clocks or {})

    def tick(self, mid: int) -> None:
        self.clocks[mid] = self.clocks.get(mid, 0) + 1

    def join(self, other: "_VectorClock") -> None:
        for mid, clock in other.clocks.items():
            if clock > self.clocks.get(mid, 0):
                self.clocks[mid] = clock

    def copy(self) -> "_VectorClock":
        return _VectorClock(self.clocks)

    def happens_before(self, other: "_VectorClock") -> bool:
        """self <= other componentwise."""
        return all(clock <= other.clocks.get(mid, 0) for mid, clock in self.clocks.items())


class RaceDetector:
    """Vector-clock based detector for the paper's data race definition."""

    def __init__(self) -> None:
        self._clocks: Dict[int, _VectorClock] = {}
        self.races: List[RaceReport] = []
        # (ref.id, field) -> (last write, reads since then)
        self._writes: Dict[Tuple[int, str], Tuple[int, _VectorClock, str]] = {}
        self._reads: Dict[Tuple[int, str], List[Tuple[int, _VectorClock, str]]] = {}

    def clock_of(self, mid: int) -> _VectorClock:
        if mid not in self._clocks:
            self._clocks[mid] = _VectorClock({mid: 0})
        return self._clocks[mid]

    def on_send(self, sender: int) -> _VectorClock:
        clock = self.clock_of(sender)
        clock.tick(sender)
        return clock.copy()

    def on_receive(self, receiver: int, snapshot: Optional[_VectorClock]) -> None:
        clock = self.clock_of(receiver)
        if snapshot is not None:
            clock.join(snapshot)
        clock.tick(receiver)

    def on_create(self, creator: int, created: int) -> None:
        snapshot = self.clock_of(creator)
        snapshot.tick(creator)
        self.clock_of(created).join(snapshot)

    def on_access(self, mid: int, ref: Ref, field: str, is_write: bool, stmt: str) -> None:
        key = (ref.id, field)
        clock = self.clock_of(mid)
        last_write = self._writes.get(key)
        if last_write is not None:
            write_mid, write_clock, write_stmt = last_write
            if write_mid != mid and not write_clock.happens_before(clock):
                self.races.append(
                    RaceReport(ref, field, write_mid, write_stmt, mid, stmt, is_write)
                )
        if is_write:
            for read_mid, read_clock, read_stmt in self._reads.get(key, []):
                if read_mid != mid and not read_clock.happens_before(clock):
                    self.races.append(
                        RaceReport(ref, field, read_mid, read_stmt, mid, stmt, True)
                    )
            self._writes[key] = (mid, clock.copy(), stmt)
            self._reads[key] = []
        else:
            self._reads.setdefault(key, []).append((mid, clock.copy(), stmt))


@dataclass
class _Frame:
    method: MethodDecl
    locals: Dict[str, Any]
    todo: List[Stmt]
    dst: Optional[str] = None  # caller variable receiving the return value


class _MachineConfig:
    """The paper's machine configuration ``(m, q, E, l, S, ss)``."""

    def __init__(self, interp: "Interpreter", mid: MachineVal, decl_name: str) -> None:
        self.interp = interp
        self.mid = mid
        self.decl = interp.program.machines[decl_name]
        self.state = self.decl.initial_state
        self.queue: List[Tuple[str, Any, Any]] = []  # (event, value, vc snapshot)
        self.frames: List[_Frame] = []
        self.self_ref = interp.allocate(self.decl.class_name)
        self.halted = False

    # -- enabledness ----------------------------------------------------
    def receivable_index(self) -> Optional[int]:
        """Index of the first queued event ``T_m`` is willing to handle."""
        for index, (event, _value, _vc) in enumerate(self.queue):
            if self.decl.transition(self.state, event) is not None:
                return index
        return None

    def enabled(self) -> bool:
        if self.halted:
            return False
        if self.frames and self.frames[-1].todo:
            return True
        return not self.frames and self.receivable_index() is not None

    # -- frame management -------------------------------------------------
    def push_method(
        self, method: MethodDecl, args: List[Any], dst: Optional[str], this: Any
    ) -> None:
        if len(args) != len(method.params):
            raise InterpreterError(
                f"{method.name} expects {len(method.params)} args, got {len(args)}"
            )
        locals_: Dict[str, Any] = {"this": this, "me": self.mid}
        for param, arg in zip(method.params, args):
            locals_[param.name] = arg
        for local in method.locals:
            locals_[local.name] = None
        self.frames.append(_Frame(method, locals_, list(method.body), dst))


class Interpreter:
    """Executes a :class:`Program` under a controllable schedule.

    Parameters
    ----------
    program:
        The parsed program.
    instances:
        Names of machine declarations to instantiate initially (defaults
        to every declared machine, in declaration order — the paper's
        initial system configuration over the identifier set ``ID``).
    chooser:
        ``chooser(options: int, kind: str) -> int`` — the scheduling /
        nondeterminism oracle.  Defaults to uniform random.
    detect_races:
        Attach a :class:`RaceDetector` and monitor every heap access.
    """

    def __init__(
        self,
        program: Program,
        instances: Optional[List[str]] = None,
        chooser: Optional[Callable[[int, str], int]] = None,
        detect_races: bool = True,
        max_steps: int = 100_000,
        seed: int = 0,
    ) -> None:
        self.program = program
        self.heap: Dict[Tuple[int, str], Any] = {}
        self._next_ref = itertools.count()
        self._rng = random.Random(seed)
        self.chooser = chooser or (lambda n, kind: self._rng.randrange(n))
        self.detector = RaceDetector() if detect_races else None
        self.max_steps = max_steps
        self.steps = 0
        self.machines: List[_MachineConfig] = []
        self.error: Optional[str] = None
        for name in instances if instances is not None else list(program.machines):
            self._create_machine(name, creator=None, payload=None)

    # ------------------------------------------------------------------
    # Heap
    # ------------------------------------------------------------------
    def allocate(self, cls: str) -> Ref:
        ref = Ref(next(self._next_ref), cls)
        klass = self.program.classes.get(cls)
        if klass is not None:
            for fld in klass.fields:
                self.heap[(ref.id, fld.name)] = None
        return ref

    def _create_machine(
        self, decl_name: str, creator: Optional[_MachineConfig], payload: Any
    ) -> MachineVal:
        mid = MachineVal(len(self.machines), decl_name)
        config = _MachineConfig(self, mid, decl_name)
        self.machines.append(config)
        if self.detector is not None and creator is not None:
            self.detector.on_create(creator.mid.id, mid.id)
        init = self.program.method(config.decl.class_name, config.decl.initial)
        if init is None:
            raise InterpreterError(
                f"machine {decl_name} lacks initial method {config.decl.initial!r}"
            )
        args: List[Any] = []
        if len(init.params) == 1:
            args = [payload]
        config.push_method(init, args, None, config.self_ref)
        return mid

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def enabled_machines(self) -> List[_MachineConfig]:
        return [m for m in self.machines if m.enabled()]

    def run(self) -> Optional[str]:
        """Run until quiescence, error, or the step bound.  Returns the
        error message (assertion failure etc.) or None."""
        while self.error is None:
            enabled = self.enabled_machines()
            if not enabled:
                break
            self.steps += 1
            if self.steps > self.max_steps:
                self.error = "step bound exceeded (potential livelock)"
                break
            choice = self.chooser(len(enabled), "sched")
            machine = enabled[choice % len(enabled)]
            try:
                self._step(machine)
            except InterpreterError as exc:
                self.error = str(exc)
        return self.error

    @property
    def races(self) -> List[RaceReport]:
        return self.detector.races if self.detector is not None else []

    def _step(self, machine: _MachineConfig) -> None:
        if machine.frames and machine.frames[-1].todo:
            stmt = machine.frames[-1].todo.pop(0)
            self._execute(machine, machine.frames[-1], stmt)
            # Implicit return at end of a void method body.
            while machine.frames and not machine.frames[-1].todo:
                finished = machine.frames.pop()
                if machine.frames and finished.dst is not None:
                    machine.frames[-1].locals[finished.dst] = None
            return
        # RECEIVE rule.
        index = machine.receivable_index()
        assert index is not None
        event, value, snapshot = machine.queue.pop(index)
        handler = machine.decl.transition(machine.state, event)
        assert handler is not None
        if self.detector is not None:
            self.detector.on_receive(machine.mid.id, snapshot)
        machine.state = handler.next_state
        method = self.program.method(machine.decl.class_name, handler.method)
        if method is None:
            raise InterpreterError(
                f"machine {machine.decl.name} lacks method {handler.method!r}"
            )
        args = [value] if len(method.params) == 1 else []
        machine.push_method(method, args, None, machine.self_ref)

    # ------------------------------------------------------------------
    # Statement execution (Figure 3)
    # ------------------------------------------------------------------
    def _value(self, frame: _Frame, name: str) -> Any:
        if name in frame.locals:
            return frame.locals[name]
        # Numeric / boolean literals appearing as operands.
        if name == "true":
            return True
        if name == "false":
            return False
        if name == "null":
            return None
        try:
            return int(name)
        except ValueError:
            pass
        try:
            return float(name)
        except ValueError:
            pass
        raise InterpreterError(f"unbound variable {name!r} in {frame.method.name}")

    def _execute(self, machine: _MachineConfig, frame: _Frame, stmt: Stmt) -> None:
        locals_ = frame.locals

        if isinstance(stmt, Assign):
            locals_[stmt.dst] = self._value(frame, stmt.src)
        elif isinstance(stmt, Const):
            locals_[stmt.dst] = stmt.value
        elif isinstance(stmt, Op):
            locals_[stmt.dst] = self._apply_op(
                stmt.op, self._value(frame, stmt.left), self._value(frame, stmt.right)
            )
        elif isinstance(stmt, StoreField):
            this = locals_["this"]
            if not isinstance(this, Ref):
                raise InterpreterError(f"this is not a reference: {this!r}")
            self._access(machine, this, stmt.field, True, stmt)
            self.heap[(this.id, stmt.field)] = self._value(frame, stmt.src)
        elif isinstance(stmt, LoadField):
            this = locals_["this"]
            if not isinstance(this, Ref):
                raise InterpreterError(f"this is not a reference: {this!r}")
            self._access(machine, this, stmt.field, False, stmt)
            locals_[stmt.dst] = self.heap.get((this.id, stmt.field))
        elif isinstance(stmt, New):
            locals_[stmt.dst] = self.allocate(stmt.cls)
        elif isinstance(stmt, Call):
            self._call(machine, frame, stmt)
        elif isinstance(stmt, Send):
            self._send(machine, frame, stmt)
        elif isinstance(stmt, Return):
            value = self._value(frame, stmt.var) if stmt.var is not None else None
            frame.todo.clear()
            machine.frames.pop()
            if machine.frames and frame.dst is not None:
                machine.frames[-1].locals[frame.dst] = value
        elif isinstance(stmt, If):
            branch = stmt.then_body if self._value(frame, stmt.cond) else stmt.else_body
            frame.todo[:0] = branch
        elif isinstance(stmt, While):
            if self._value(frame, stmt.cond):
                frame.todo[:0] = list(stmt.body) + [stmt]
        elif isinstance(stmt, Assert):
            if not self._value(frame, stmt.var):
                raise InterpreterError(
                    f"assertion failed in {machine.decl.name}.{frame.method.name}"
                    f" at {stmt.loc or '?'}: {stmt.message}"
                )
        elif isinstance(stmt, Nondet):
            locals_[stmt.dst] = bool(self.chooser(2, "bool"))
        elif isinstance(stmt, External):
            # An opaque, freshly-allocated object of unknown class.
            locals_[stmt.dst] = self.allocate("$external")
        elif isinstance(stmt, CreateMachine):
            payload = self._value(frame, stmt.arg) if stmt.arg is not None else None
            locals_[stmt.dst] = self._create_machine(stmt.machine, machine, payload)
        else:  # pragma: no cover
            raise InterpreterError(f"unknown statement {stmt!r}")

    def _apply_op(self, op: str, left: Any, right: Any) -> Any:
        table: Dict[str, Callable[[Any, Any], Any]] = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
            "%": lambda a, b: a % b,
            "<": lambda a, b: a < b,
            ">": lambda a, b: a > b,
            "<=": lambda a, b: a <= b,
            ">=": lambda a, b: a >= b,
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "&&": lambda a, b: bool(a) and bool(b),
            "||": lambda a, b: bool(a) or bool(b),
        }
        if op not in table:
            raise InterpreterError(f"unknown operator {op!r}")
        return table[op](left, right)

    def _access(
        self,
        machine: _MachineConfig,
        ref: Ref,
        field: str,
        is_write: bool,
        stmt: Stmt,
    ) -> None:
        if self.detector is not None:
            self.detector.on_access(
                machine.mid.id, ref, field, is_write, f"{stmt} @{stmt.loc or '?'}"
            )

    def _call(self, machine: _MachineConfig, frame: _Frame, stmt: Call) -> None:
        recv = self._value(frame, stmt.recv)
        if not isinstance(recv, Ref):
            raise InterpreterError(
                f"receiver {stmt.recv!r} is not an object: {recv!r}"
            )
        method = self.program.method(recv.cls, stmt.method)
        if method is None:
            raise InterpreterError(f"{recv.cls} has no method {stmt.method!r}")
        args = [self._value(frame, a) for a in stmt.args]
        machine.push_method(method, args, stmt.dst, recv)

    def _send(self, machine: _MachineConfig, frame: _Frame, stmt: Send) -> None:
        dst = self._value(frame, stmt.dst)
        if not isinstance(dst, MachineVal):
            raise InterpreterError(f"send target {stmt.dst!r} is not a machine: {dst!r}")
        value = self._value(frame, stmt.arg) if stmt.arg is not None else None
        snapshot = None
        if self.detector is not None:
            snapshot = self.detector.on_send(machine.mid.id)
        target = self.machines[dst.id]
        if not target.halted:
            target.queue.append((stmt.event, value, snapshot))


# ---------------------------------------------------------------------------
# Systematic exploration (used to cross-validate the static analysis)
# ---------------------------------------------------------------------------
class _DfsChooser:
    """Decision-stack chooser enumerating all finite choice sequences."""

    def __init__(self) -> None:
        self.stack: List[List[int]] = []  # [index, options]
        self.cursor = 0
        self.started = False

    def prepare(self) -> bool:
        if not self.started:
            self.started = True
            self.cursor = 0
            return True
        while self.stack and self.stack[-1][0] >= self.stack[-1][1] - 1:
            self.stack.pop()
        if not self.stack:
            return False
        self.stack[-1][0] += 1
        self.cursor = 0
        return True

    def __call__(self, options: int, kind: str) -> int:
        if self.cursor == len(self.stack):
            self.stack.append([0, options])
        index, _recorded = self.stack[self.cursor]
        self.cursor += 1
        return min(index, options - 1)


@dataclass
class ExplorationResult:
    schedules: int
    races: List[RaceReport]
    errors: List[str]
    exhausted: bool

    @property
    def race_free(self) -> bool:
        return not self.races


def explore(
    program: Program,
    instances: Optional[List[str]] = None,
    max_schedules: int = 2_000,
    max_steps: int = 2_000,
    detect_races: bool = True,
) -> ExplorationResult:
    """Systematically explore the statement-level interleavings of a
    program, collecting dynamic races and errors across all schedules.

    This is the ground truth against which the static analysis of
    Section 5 is validated: if the analysis claims race-freedom, no
    explored schedule may exhibit a race (Theorem 5.1).
    """
    chooser = _DfsChooser()
    races: List[RaceReport] = []
    errors: List[str] = []
    schedules = 0
    exhausted = False
    while schedules < max_schedules:
        if not chooser.prepare():
            exhausted = True
            break
        interp = Interpreter(
            program,
            instances=instances,
            chooser=chooser,
            detect_races=detect_races,
            max_steps=max_steps,
        )
        error = interp.run()
        schedules += 1
        races.extend(interp.races)
        if error is not None:
            errors.append(error)
    return ExplorationResult(schedules, races, errors, exhausted)
