"""A recursive-descent parser for the core language's surface syntax.

The concrete syntax follows the paper's examples (4.1, 4.2) closely::

    class elem {
        int val;
        elem next;
        int get_val() { int ret; ret := this.val; return ret; }
        void set_next(elem n) { this.next := n; }
    }

    machine list_manager {
        elem list;
        void init() { this.list := null; }
        void add(elem payload) {
            elem tmp;
            tmp := this.list;
            payload.set_next(tmp);
            this.list := payload;
        }
        void get(machine payload) {
            elem tmp;
            tmp := this.list;
            send payload eReply(tmp);
        }
        transitions {
            init: eAdd -> add, eGet -> get;
            add:  eAdd -> add, eGet -> get;
            get:  eAdd -> add, eGet -> get;
        }
    }

Machines declare their member variables and methods directly (the machine
*is* its class, as in Section 4 where ``class_m`` defines the methods).
The ``transitions`` block is the transition function ``T_m``: in state
``q``, event ``e`` is handled by method/state ``q'`` (the paper's states
*are* methods).  The first method of a machine is its initial state unless
a method named ``init`` exists.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ir import (
    Assert,
    Assign,
    Call,
    Const,
    CreateMachine,
    External,
    If,
    LoadField,
    MethodDecl,
    New,
    Nondet,
    Op,
    Program,
    Return,
    Send,
    StateHandler,
    Stmt,
    StoreField,
    MachineDecl,
    ClassDecl,
    VarDecl,
    While,
)


class ParseError(Exception):
    pass


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<num>-?\d+(\.\d+)?)
  | (?P<assign>:=)
  | (?P<arrow>->)
  | (?P<op><=|>=|==|!=|&&|\|\||[+\-*/%<>!])
  | (?P<punct>[{}();,.:])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "class", "machine", "transitions", "if", "else", "while", "return",
    "send", "new", "null", "true", "false", "assert", "nondet", "create",
    "external", "this",
}


class _Tokens:
    def __init__(self, text: str) -> None:
        self.tokens: List[Tuple[str, str]] = []
        pos = 0
        line = 1
        self.lines: List[int] = []
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise ParseError(f"line {line}: unexpected character {text[pos]!r}")
            kind = match.lastgroup
            value = match.group()
            line += value.count("\n")
            if kind != "ws":
                self.tokens.append((kind, value))
                self.lines.append(line)
            pos = match.end()
        self.pos = 0

    def peek(self, offset: int = 0) -> Optional[Tuple[str, str]]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        if self.pos >= len(self.tokens):
            raise ParseError("unexpected end of input")
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, value: str) -> None:
        kind, got = self.next()
        if got != value:
            raise ParseError(
                f"line {self.line()}: expected {value!r}, got {got!r}"
            )

    def accept(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == value:
            self.pos += 1
            return True
        return False

    def ident(self) -> str:
        kind, value = self.next()
        if kind != "ident":
            raise ParseError(f"line {self.line()}: expected identifier, got {value!r}")
        return value

    def line(self) -> int:
        index = min(self.pos, len(self.lines) - 1)
        return self.lines[index] if self.lines else 0


def parse_program(text: str, name: str = "program") -> Program:
    """Parse a whole program: a sequence of class and machine declarations."""
    tokens = _Tokens(text)
    program = Program(name=name)
    while tokens.peek() is not None:
        kind, value = tokens.peek()
        if value == "class":
            klass = _parse_class(tokens)
            program.classes[klass.name] = klass
        elif value == "machine":
            machine, klass = _parse_machine(tokens)
            program.machines[machine.name] = machine
            program.classes[klass.name] = klass
        else:
            raise ParseError(
                f"line {tokens.line()}: expected 'class' or 'machine', got {value!r}"
            )
    return program


def _parse_class(tokens: _Tokens) -> ClassDecl:
    tokens.expect("class")
    name = tokens.ident()
    fields, methods = _parse_members(tokens, allow_transitions=False)[:2]
    return ClassDecl(name=name, fields=fields, methods={m.name: m for m in methods})


def _parse_machine(tokens: _Tokens) -> Tuple[MachineDecl, ClassDecl]:
    tokens.expect("machine")
    name = tokens.ident()
    fields, methods, handlers = _parse_members(tokens, allow_transitions=True)
    klass = ClassDecl(name=name, fields=fields, methods={m.name: m for m in methods})
    if not methods:
        raise ParseError(f"machine {name} has no methods")
    initial = "init" if "init" in klass.methods else methods[0].name
    machine = MachineDecl(
        name=name, class_name=name, initial=initial, handlers=handlers
    )
    return machine, klass


def _parse_members(tokens: _Tokens, allow_transitions: bool):
    tokens.expect("{")
    fields: List[VarDecl] = []
    methods: List[MethodDecl] = []
    handlers: List[StateHandler] = []
    while not tokens.accept("}"):
        token = tokens.peek()
        if allow_transitions and token is not None and token[1] == "transitions":
            tokens.next()
            handlers.extend(_parse_transitions(tokens))
            continue
        type_name = tokens.ident()
        member_name = tokens.ident()
        follow = tokens.peek()
        if follow is not None and follow[1] == "(":
            methods.append(_parse_method(tokens, type_name, member_name))
        else:
            tokens.expect(";")
            fields.append(VarDecl(member_name, type_name))
    return fields, methods, handlers


def _parse_transitions(tokens: _Tokens) -> List[StateHandler]:
    """``transitions { state: evt -> next, evt -> next; ... }``"""
    tokens.expect("{")
    handlers: List[StateHandler] = []
    while not tokens.accept("}"):
        state = tokens.ident()
        tokens.expect(":")
        while True:
            event = tokens.ident()
            tokens.expect("->")
            next_state = tokens.ident()
            # In the core calculus a state *is* the method that handles the
            # transition into it (RECEIVE invokes v_m.q'(val)).
            handlers.append(StateHandler(state, event, next_state, next_state))
            if not tokens.accept(","):
                break
        tokens.expect(";")
    return handlers


def _parse_method(tokens: _Tokens, ret_type: str, name: str) -> MethodDecl:
    tokens.expect("(")
    params: List[VarDecl] = []
    if not tokens.accept(")"):
        while True:
            param_type = tokens.ident()
            param_name = tokens.ident()
            params.append(VarDecl(param_name, param_type))
            if not tokens.accept(","):
                break
        tokens.expect(")")
    tokens.expect("{")
    locals_: List[VarDecl] = []
    # Local declarations: `type v;` lines at the start of the body.
    while True:
        first = tokens.peek()
        second = tokens.peek(1)
        third = tokens.peek(2)
        if (
            first is not None
            and first[0] == "ident"
            and (first[1] == "machine" or first[1] not in KEYWORDS)
            and second is not None
            and second[0] == "ident"
            and second[1] not in KEYWORDS
            and third is not None
            and third[1] == ";"
        ):
            type_name = tokens.ident()
            var_name = tokens.ident()
            tokens.expect(";")
            locals_.append(VarDecl(var_name, type_name))
        else:
            break
    body = _parse_block_tail(tokens)
    return MethodDecl(
        name=name, params=params, locals=locals_, body=body, ret_type=ret_type
    )


def _parse_block(tokens: _Tokens) -> List[Stmt]:
    tokens.expect("{")
    return _parse_block_tail(tokens)


def _parse_block_tail(tokens: _Tokens) -> List[Stmt]:
    body: List[Stmt] = []
    while not tokens.accept("}"):
        body.append(_parse_stmt(tokens))
    return body


def _parse_stmt(tokens: _Tokens) -> Stmt:
    line = tokens.line()
    loc = f"line {line}"
    kind, value = tokens.peek()

    if value == "if":
        tokens.next()
        tokens.expect("(")
        cond = tokens.ident()
        tokens.expect(")")
        then_body = _parse_block(tokens)
        else_body: List[Stmt] = []
        if tokens.accept("else"):
            else_body = _parse_block(tokens)
        return If(cond, then_body, else_body, loc=loc)

    if value == "while":
        tokens.next()
        tokens.expect("(")
        cond = tokens.ident()
        tokens.expect(")")
        body = _parse_block(tokens)
        return While(cond, body, loc=loc)

    if value == "return":
        tokens.next()
        var = None
        if not tokens.accept(";"):
            var = tokens.ident()
            tokens.expect(";")
        return Return(var, loc=loc)

    if value == "send":
        tokens.next()
        dst = tokens.ident()
        event = tokens.ident()
        tokens.expect("(")
        arg = None
        if not tokens.accept(")"):
            arg = _operand(tokens)
            tokens.expect(")")
        tokens.expect(";")
        return Send(dst, event, arg, loc=loc)

    if value == "assert":
        tokens.next()
        var = tokens.ident()
        tokens.expect(";")
        return Assert(var, loc=loc)

    if value == "this":
        # this.f := v;  (v may also be a literal: null, true, false, 0, ...)
        tokens.next()
        tokens.expect(".")
        field = tokens.ident()
        tokens.expect(":=")
        src = _operand(tokens)
        tokens.expect(";")
        return StoreField(field, src, loc=loc)

    # Otherwise: assignment `v := ...;` or a void call `v.m(...);`
    first = tokens.ident()
    if tokens.accept("."):
        method = tokens.ident()
        args = _parse_args(tokens)
        tokens.expect(";")
        return Call(None, first, method, args, loc=loc)

    tokens.expect(":=")
    return _parse_assignment_rhs(tokens, first, loc)


def _parse_assignment_rhs(tokens: _Tokens, dst: str, loc: str) -> Stmt:
    kind, value = tokens.peek()

    if value == "new":
        tokens.next()
        cls = tokens.ident()
        tokens.expect(";")
        return New(dst, cls, loc=loc)

    if value == "null":
        tokens.next()
        tokens.expect(";")
        return Const(dst, None, loc=loc)

    if value in ("true", "false"):
        tokens.next()
        tokens.expect(";")
        return Const(dst, value == "true", loc=loc)

    if value == "nondet":
        tokens.next()
        tokens.expect(";")
        return Nondet(dst, loc=loc)

    if value == "external":
        tokens.next()
        tokens.expect(";")
        return External(dst, loc=loc)

    if value == "create":
        tokens.next()
        machine = tokens.ident()
        tokens.expect("(")
        arg = None
        if not tokens.accept(")"):
            arg = _operand(tokens)
            tokens.expect(")")
        tokens.expect(";")
        return CreateMachine(dst, machine, arg, loc=loc)

    if kind == "num":
        tokens.next()
        tokens.expect(";")
        number = float(value) if "." in value else int(value)
        return Const(dst, number, loc=loc)

    if value == "this":
        tokens.next()
        tokens.expect(".")
        field = tokens.ident()
        tokens.expect(";")
        return LoadField(dst, field, loc=loc)

    # v := v' | v := v' op v'' | v := v'.m(args)
    src = tokens.ident()
    if tokens.accept("."):
        method = tokens.ident()
        args = _parse_args(tokens)
        tokens.expect(";")
        return Call(dst, src, method, args, loc=loc)

    follow = tokens.peek()
    if follow is not None and follow[0] == "op":
        op = tokens.next()[1]
        right = _operand(tokens)
        tokens.expect(";")
        return Op(dst, src, op, right, loc=loc)

    tokens.expect(";")
    return Assign(dst, src, loc=loc)


def _operand(tokens: _Tokens) -> str:
    """An identifier or a literal (number, true/false/null), as a string.

    The interpreter resolves literal strings at evaluation time; the
    static analysis only tracks reference-typed variables, so literals are
    inert there.
    """
    kind, value = tokens.next()
    if kind in ("ident", "num"):
        return value
    raise ParseError(f"line {tokens.line()}: expected operand, got {value!r}")


def _parse_args(tokens: _Tokens) -> List[str]:
    tokens.expect("(")
    args: List[str] = []
    if not tokens.accept(")"):
        while True:
            args.append(_operand(tokens))
            if not tokens.accept(","):
                break
        tokens.expect(")")
    return args
