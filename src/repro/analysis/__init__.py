"""Static data race analysis (Section 5): taint-based heap overlap,
gives-up (Figure 5), respects-ownership (Section 5.3), cross-state
analysis (Section 5.4) and the read-only extension (Section 8)."""

from .engine import ProgramAnalysis, analyze_program
from .ownership import GiveUpSite, OwnershipAnalysis, OwnershipViolation
from .readonly import ReadOnlyAnalysis
from .taint import FactMap, MethodInfo, Summary, TaintEngine
from .xsa import Driver, build_driver

__all__ = [
    "analyze_program",
    "ProgramAnalysis",
    "OwnershipAnalysis",
    "OwnershipViolation",
    "GiveUpSite",
    "ReadOnlyAnalysis",
    "TaintEngine",
    "MethodInfo",
    "Summary",
    "FactMap",
    "Driver",
    "build_driver",
]
