"""Inter-procedural taint tracking implementing ``may_overlap`` (Sec. 5.1).

The paper implements its heap-overlap predicates "through an
inter-procedural taint tracking analysis.  The analysis is flow- and
context-sensitive. ... Our summary function is member variable
insensitive, i.e. when we note in our analysis that a member of an object
should become tainted, we taint the whole object instead."

Two propagation modes are provided:

``closure_facts`` (bidirectional)
    Computes, for a seed ``(v, N)``, the set of variables at every program
    point that may reach a heap object reachable from ``v`` on entry to
    ``N``.  Facts propagate forward through assignments *and* backward
    (e.g. ``tainted(ret, Exit)(Entry) = {this}`` for Example 4.1's
    ``get_next``): the paper's ``tainted`` function relates arbitrary node
    pairs, which requires tracking value flows in both directions.

``forward_facts`` (forward-only)
    Used for condition 3 of Section 5.3 (uses *after* the give-up point)
    and for method summaries.  Seeded with the full overlap closure at the
    give-up point, forward propagation is sound for temporally-later uses
    while keeping the strong updates that make the cross-state analysis
    precise (a handler's fresh payload kills stale taint — see
    Example 5.5 and the xSA discussion in DESIGN.md).

Context sensitivity comes from per-method summaries: for each input role
(``this`` or a formal parameter) the summary records the output roles
(including the pseudo-role ``$ret``) its taint may flow to, plus the roles
whose reachable heap the method may *mutate* (used by the read-only
extension).  Summaries are computed as a whole-program fixed point, which
converges because roles and methods are finite and flows only grow.

Library calls without source are havocked: "each heap object reachable
before the call is reachable from all variables involved in the call once
the call returns" (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..lang.cfg import Cfg, Node
from ..lang.ir import (
    Assert,
    Assign,
    Call,
    ClassDecl,
    Const,
    CreateMachine,
    External,
    If,
    LoadField,
    MethodDecl,
    New,
    Nondet,
    Op,
    Program,
    Return,
    Send,
    Stmt,
    StoreField,
    While,
    is_scalar,
)

RET = "$ret"
MethodKey = Tuple[str, str]  # (class name, method name)


@dataclass
class Summary:
    """Taint summary of one method.

    ``flows[r]`` — output roles tainted at exit when input role ``r`` is
    tainted at entry.  ``mutates`` — input roles whose reachable heap the
    method may write.  ``sends`` — whether the method (transitively)
    performs a send.
    """

    flows: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    mutates: FrozenSet[str] = frozenset()
    sends: bool = False

    def flow(self, role: str) -> FrozenSet[str]:
        return self.flows.get(role, frozenset())


def havoc_summary(arity: int) -> Summary:
    """The conservative summary for calls into code without source."""
    roles = ["this"] + [f"$fp{i}" for i in range(arity)]
    every = frozenset(roles + [RET])
    return Summary(
        flows={r: every for r in roles},
        mutates=frozenset(roles),
        sends=False,
    )


@dataclass
class FactMap:
    """Per-node IN/OUT taint sets of one intra-procedural run."""

    ins: Dict[int, FrozenSet[str]]
    outs: Dict[int, FrozenSet[str]]

    def in_of(self, node: Node) -> FrozenSet[str]:
        return self.ins.get(node.index, frozenset())

    def out_of(self, node: Node) -> FrozenSet[str]:
        return self.outs.get(node.index, frozenset())


class MethodInfo:
    """Resolved method: declaration, CFG and reference-variable typing."""

    def __init__(
        self, class_name: str, decl: MethodDecl, cfg: Optional[Cfg] = None
    ) -> None:
        self.class_name = class_name
        self.decl = decl
        self.cfg = cfg if cfg is not None else Cfg(decl)
        self.ref_vars: Set[str] = {"this"}
        self._types: Dict[str, str] = {"this": class_name}
        for var in list(decl.params) + list(decl.locals):
            self._types[var.name] = var.type
            if var.is_reference and var.type != "machine":
                self.ref_vars.add(var.name)

    def is_ref(self, name: str) -> bool:
        if name in self.ref_vars:
            return True
        # Unknown names are literals or untyped temporaries; temporaries
        # are declared by the frontends, so unknowns are literals: scalar.
        return False

    def type_of(self, name: str) -> Optional[str]:
        return self._types.get(name)

    @property
    def key(self) -> MethodKey:
        return (self.class_name, self.decl.name)


class TaintEngine:
    """Whole-program taint engine with memoized per-seed queries."""

    def __init__(self, program: Program, extra_methods: Iterable[MethodInfo] = ()) -> None:
        self.program = program
        self.methods: Dict[MethodKey, MethodInfo] = {}
        for cls in program.classes.values():
            for method in cls.methods.values():
                info = MethodInfo(cls.name, method)
                self.methods[info.key] = info
        for info in extra_methods:
            self.methods[info.key] = info
        self.summaries: Dict[MethodKey, Summary] = {}
        self._closure_cache: Dict[Tuple[MethodKey, str, int], FactMap] = {}
        self._compute_summaries()

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def register(self, info: MethodInfo) -> None:
        """Add a synthetic method (used by the cross-state analysis)."""
        self.methods[info.key] = info
        self._summarize(info)  # callees' summaries already stable

    def resolve_call(self, caller: MethodInfo, stmt: Call) -> Tuple[Optional[Summary], Optional[MethodKey]]:
        """Summary for a call site, or a havoc summary when unresolvable."""
        recv_type = caller.type_of(stmt.recv)
        if recv_type is None or is_scalar(recv_type) or recv_type == "machine":
            return havoc_summary(len(stmt.args)), None
        cls = self.program.classes.get(recv_type)
        if cls is None:
            return havoc_summary(len(stmt.args)), None
        if cls.taint_summary is not None:
            entry = cls.taint_summary.get(stmt.method)
            if entry is None:
                return havoc_summary(len(stmt.args)), None
            return (
                Summary(
                    flows=dict(entry.get("flows", {})),
                    mutates=frozenset(entry.get("mutates", ())),
                    sends=bool(entry.get("sends", False)),
                ),
                None,
            )
        key = (cls.name, stmt.method)
        if key not in self.methods:
            return havoc_summary(len(stmt.args)), None
        return self.summaries.get(key, Summary()), key

    @staticmethod
    def role_to_actual(stmt: Call, callee: Optional[MethodInfo], role: str) -> Optional[str]:
        """Map a callee role to the caller-side actual variable."""
        if role == "this":
            return stmt.recv
        if role == RET:
            return stmt.dst
        if role.startswith("$fp"):
            index = int(role[3:])
            return stmt.args[index] if index < len(stmt.args) else None
        if callee is not None:
            for index, param in enumerate(callee.decl.params):
                if param.name == role:
                    return stmt.args[index] if index < len(stmt.args) else None
        return None

    def call_role_pairs(self, stmt: Call, key: Optional[MethodKey]) -> List[Tuple[str, str]]:
        """(role, actual) pairs for the call's inputs."""
        pairs = [("this", stmt.recv)]
        callee = self.methods.get(key) if key is not None else None
        for index, arg in enumerate(stmt.args):
            if callee is not None and index < len(callee.decl.params):
                pairs.append((callee.decl.params[index].name, arg))
            else:
                pairs.append((f"$fp{index}", arg))
        return pairs

    # ------------------------------------------------------------------
    # Transfer functions
    # ------------------------------------------------------------------
    def _fwd(self, info: MethodInfo, node: Node, taints: FrozenSet[str]) -> FrozenSet[str]:
        stmt = node.stmt
        if stmt is None or isinstance(stmt, (Send, Assert, If, While, CreateMachine)):
            # CreateMachine's destination is a machine id (scalar).
            if isinstance(stmt, CreateMachine):
                return taints - {stmt.dst}
            return taints
        if isinstance(stmt, Assign):
            out = taints - {stmt.dst}
            if stmt.src in taints and info.is_ref(stmt.dst):
                out |= {stmt.dst}
            return out
        if isinstance(stmt, (Const, New, Op, Nondet, External)):
            return taints - {stmt.dst}
        if isinstance(stmt, LoadField):
            out = taints - {stmt.dst}
            if "this" in taints and info.is_ref(stmt.dst):
                out |= {stmt.dst}
            return out
        if isinstance(stmt, StoreField):
            if stmt.src in taints:
                return taints | {"this"}
            return taints
        if isinstance(stmt, Return):
            if stmt.var is not None and stmt.var in taints:
                return taints | {RET}
            return taints
        if isinstance(stmt, Call):
            summary, key = self.resolve_call(info, stmt)
            out = set(taints)
            if stmt.dst is not None:
                out.discard(stmt.dst)
            for role, actual in self.call_role_pairs(stmt, key):
                if actual not in taints:
                    continue
                for out_role in summary.flow(role):
                    target = self.role_to_actual(
                        stmt, self.methods.get(key) if key else None, out_role
                    )
                    if target is not None and info.is_ref(target):
                        out.add(target)
            return frozenset(out)
        return taints

    def _bwd(self, info: MethodInfo, node: Node, taints: FrozenSet[str]) -> FrozenSet[str]:
        stmt = node.stmt
        if stmt is None or isinstance(stmt, (Send, Assert, If, While)):
            return taints
        if isinstance(stmt, CreateMachine):
            return taints - {stmt.dst}
        if isinstance(stmt, Assign):
            out = taints - {stmt.dst}
            if stmt.dst in taints and info.is_ref(stmt.src):
                out |= {stmt.src}
            return out
        if isinstance(stmt, (Const, New, Op, Nondet, External)):
            return taints - {stmt.dst}
        if isinstance(stmt, LoadField):
            out = taints - {stmt.dst}
            if stmt.dst in taints:
                out |= {"this"}
            return out
        if isinstance(stmt, StoreField):
            # this@after reaches old-this's heap *and* src's heap: either
            # may hold the overlap object.
            if "this" in taints and info.is_ref(stmt.src):
                return taints | {stmt.src}
            return taints
        if isinstance(stmt, Return):
            if RET in taints and stmt.var is not None and info.is_ref(stmt.var):
                return taints | {stmt.var}
            return taints
        if isinstance(stmt, Call):
            summary, key = self.resolve_call(info, stmt)
            callee = self.methods.get(key) if key is not None else None
            out = set(taints)
            if stmt.dst is not None:
                out.discard(stmt.dst)
            for role, actual in self.call_role_pairs(stmt, key):
                for out_role in summary.flow(role):
                    target = self.role_to_actual(stmt, callee, out_role)
                    tainted_after = (
                        stmt.dst in taints if out_role == RET else (target in taints)
                    )
                    if tainted_after and info.is_ref(actual):
                        out.add(actual)
            return frozenset(out)
        return taints

    # ------------------------------------------------------------------
    # Dataflow drivers
    # ------------------------------------------------------------------
    def forward_facts(
        self,
        info: MethodInfo,
        seeds: Dict[int, FrozenSet[str]],
    ) -> FactMap:
        """Forward-only propagation; ``seeds`` maps node index -> vars
        injected into that node's IN set."""
        ins: Dict[int, Set[str]] = {n.index: set() for n in info.cfg.nodes}
        outs: Dict[int, Set[str]] = {n.index: set() for n in info.cfg.nodes}
        for index, vars_ in seeds.items():
            ins[index] |= vars_
        changed = True
        while changed:
            changed = False
            for node in info.cfg.nodes:
                in_set = set(ins[node.index])
                for pred in node.preds:
                    in_set |= outs[pred.index]
                if in_set != ins[node.index]:
                    ins[node.index] = in_set
                    changed = True
                out_set = set(self._fwd(info, node, frozenset(in_set)))
                if out_set != outs[node.index]:
                    outs[node.index] = out_set
                    changed = True
        return FactMap(
            {k: frozenset(v) for k, v in ins.items()},
            {k: frozenset(v) for k, v in outs.items()},
        )

    def closure_facts(self, info: MethodInfo, seed_var: str, seed_node: Node) -> FactMap:
        """Bidirectional may-overlap closure for seed (var at entry of node)."""
        cache_key = (info.key, seed_var, seed_node.index)
        cached = self._closure_cache.get(cache_key)
        if cached is not None:
            return cached
        ins: Dict[int, Set[str]] = {n.index: set() for n in info.cfg.nodes}
        outs: Dict[int, Set[str]] = {n.index: set() for n in info.cfg.nodes}
        ins[seed_node.index].add(seed_var)
        changed = True
        while changed:
            changed = False
            for node in info.cfg.nodes:
                in_set = set(ins[node.index])
                for pred in node.preds:
                    in_set |= outs[pred.index]  # forward along edges
                in_set |= self._bwd(info, node, frozenset(outs[node.index]))
                if in_set != ins[node.index]:
                    ins[node.index] = in_set
                    changed = True
                out_set = set(outs[node.index])
                out_set |= self._fwd(info, node, frozenset(in_set))
                for succ in node.succs:
                    out_set |= ins[succ.index]  # backward along edges
                if out_set != outs[node.index]:
                    outs[node.index] = out_set
                    changed = True
        result = FactMap(
            {k: frozenset(v) for k, v in ins.items()},
            {k: frozenset(v) for k, v in outs.items()},
        )
        self._closure_cache[cache_key] = result
        return result

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def _compute_summaries(self) -> None:
        for key in self.methods:
            self.summaries[key] = Summary()
        changed = True
        while changed:
            changed = False
            for info in list(self.methods.values()):
                new = self._summarize(info)
                old = self.summaries[info.key]
                if new.flows != old.flows or new.mutates != old.mutates or new.sends != old.sends:
                    self.summaries[info.key] = new
                    changed = True

    def _summarize(self, info: MethodInfo) -> Summary:
        roles = ["this"] + [p.name for p in info.decl.params if p.is_reference and p.type != "machine"]
        flows: Dict[str, FrozenSet[str]] = {}
        mutated: Set[str] = set()
        sends = self._method_sends(info)
        for role in roles:
            facts = self.forward_facts(info, {info.cfg.entry.index: frozenset({role})})
            exit_taints = facts.in_of(info.cfg.exit)
            outputs = set()
            for out_role in roles:
                if out_role in exit_taints and out_role != role:
                    outputs.add(out_role)
            if role in exit_taints:
                outputs.add(role)  # identity preserved unless killed
            if RET in exit_taints:
                outputs.add(RET)
            flows[role] = frozenset(outputs)
            if self._role_mutated(info, role, facts):
                mutated.add(role)
        summary = Summary(flows=flows, mutates=frozenset(mutated), sends=sends)
        self.summaries[info.key] = summary
        return summary

    def _method_sends(self, info: MethodInfo) -> bool:
        for node in info.cfg.statement_nodes():
            if isinstance(node.stmt, (Send, CreateMachine)):
                return True
            if isinstance(node.stmt, Call):
                summary, _key = self.resolve_call(info, node.stmt)
                if summary.sends:
                    return True
        return False

    def _machine_class_names(self) -> frozenset:
        return frozenset(m.class_name for m in self.program.machines.values())

    def _role_mutated(self, info: MethodInfo, role: str, facts: FactMap) -> bool:
        """Whether heap reachable from ``role`` at entry may be written."""
        machine_classes = self._machine_class_names()
        for node in info.cfg.statement_nodes():
            stmt = node.stmt
            taints = facts.in_of(node)
            if isinstance(stmt, StoreField):
                # The object written is the receiver itself.  A machine
                # instance is never part of a payload (only MachineIds
                # travel), so a store into a *machine's* own field cannot
                # mutate heap reachable from a payload role; for helper
                # objects the receiver may be reachable from a parameter,
                # so overlap is conservatively enough.
                if role == "this":
                    return True
                if "this" in taints and info.class_name not in machine_classes:
                    return True
                continue
            if isinstance(stmt, Call):
                summary, key = self.resolve_call(info, stmt)
                for in_role, actual in self.call_role_pairs(stmt, key):
                    if actual in taints and in_role in summary.mutates:
                        return True
        return False
