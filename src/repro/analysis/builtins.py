"""Taint summaries for Python's builtin containers.

The Python frontend lowers ``list``/``dict``/``set``/``tuple`` operations
to method calls on summary-only classes (``ClassDecl.taint_summary``).
Summaries use the same role convention as computed method summaries:
``flows[in_role] = {out_roles}`` means heap reachable from ``in_role`` at
entry may be reachable from each ``out_role`` after the call; ``mutates``
lists roles whose reachable heap the operation writes.

The frontend synthesizes a few pseudo-methods:

``$get`` / ``$set``      subscript read / write
``$item``                an arbitrary element (loop iteration, min/max, ...)
``$add``                 literal construction (``[a, b]`` appends twice)
``$copy``                shallow copy (shares elements)
"""

from __future__ import annotations

from ..lang.ir import ClassDecl

_THIS = frozenset({"this"})
_RET = frozenset({"$ret"})
_THIS_RET = frozenset({"this", "$ret"})


def _summary(flows=None, mutates=(), sends=False):
    return {
        "flows": {k: frozenset(v) for k, v in (flows or {}).items()},
        "mutates": frozenset(mutates),
        "sends": sends,
    }


_LIST_METHODS = {
    "append": _summary({"$fp0": _THIS}, mutates=["this"]),
    "extend": _summary({"$fp0": _THIS}, mutates=["this"]),
    "insert": _summary({"$fp1": _THIS}, mutates=["this"]),
    "remove": _summary(mutates=["this"]),
    "pop": _summary({"this": _THIS_RET}, mutates=["this"]),
    "clear": _summary(mutates=["this"]),
    "sort": _summary(mutates=["this"]),
    "reverse": _summary(mutates=["this"]),
    "copy": _summary({"this": _THIS_RET}),
    "index": _summary(),
    "count": _summary(),
    "$get": _summary({"this": _THIS_RET}),
    "$set": _summary({"$fp0": _THIS, "$fp1": _THIS}, mutates=["this"]),
    "$item": _summary({"this": _THIS_RET}),
    "$add": _summary({"$fp0": _THIS}, mutates=["this"]),
    "$copy": _summary({"this": _THIS_RET}),
}

_DICT_METHODS = {
    "get": _summary({"this": _THIS_RET, "$fp1": _RET}),
    "pop": _summary({"this": _THIS_RET}, mutates=["this"]),
    "setdefault": _summary({"this": _THIS_RET, "$fp1": _THIS_RET}, mutates=["this"]),
    "update": _summary({"$fp0": _THIS}, mutates=["this"]),
    "clear": _summary(mutates=["this"]),
    "keys": _summary({"this": _THIS_RET}),
    "values": _summary({"this": _THIS_RET}),
    "items": _summary({"this": _THIS_RET}),
    "copy": _summary({"this": _THIS_RET}),
    "$get": _summary({"this": _THIS_RET}),
    "$set": _summary({"$fp0": _THIS, "$fp1": _THIS}, mutates=["this"]),
    "$item": _summary({"this": _THIS_RET}),
    "$add": _summary({"$fp0": _THIS}, mutates=["this"]),
    "$copy": _summary({"this": _THIS_RET}),
    "$del": _summary(mutates=["this"]),
}

_SET_METHODS = {
    "add": _summary({"$fp0": _THIS}, mutates=["this"]),
    "discard": _summary(mutates=["this"]),
    "remove": _summary(mutates=["this"]),
    "pop": _summary({"this": _THIS_RET}, mutates=["this"]),
    "clear": _summary(mutates=["this"]),
    "union": _summary({"this": _RET, "$fp0": _RET}),
    "copy": _summary({"this": _THIS_RET}),
    "$get": _summary({"this": _THIS_RET}),
    "$item": _summary({"this": _THIS_RET}),
    "$add": _summary({"$fp0": _THIS}, mutates=["this"]),
    "$copy": _summary({"this": _THIS_RET}),
}

_TUPLE_METHODS = {
    "$get": _summary({"this": _THIS_RET}),
    "$item": _summary({"this": _THIS_RET}),
    "$add": _summary({"$fp0": _THIS}, mutates=["this"]),
    "$copy": _summary({"this": _THIS_RET}),
    "index": _summary(),
    "count": _summary(),
}


def builtin_classes() -> dict:
    """Summary-only ClassDecls registered by the Python frontend."""
    return {
        "list": ClassDecl(name="list", taint_summary=_LIST_METHODS),
        "dict": ClassDecl(name="dict", taint_summary=_DICT_METHODS),
        "set": ClassDecl(name="set", taint_summary=_SET_METHODS),
        "tuple": ClassDecl(name="tuple", taint_summary=_TUPLE_METHODS),
    }


CONTAINER_TYPES = frozenset({"list", "dict", "set", "tuple"})
