"""Top-level static analysis driver: base ownership analysis + xSA +
read-only extension, producing the :class:`AnalysisReport` consumed by the
Table 1 harness.

The workflow mirrors Section 7.2.1: the base analysis runs first; on
detecting ownership violations the cross-state analysis is run per
machine ("we run a cross-state analysis (xSA) upon detection of an
ownership violation") and matching violations are suppressed; the
read-only extension then optionally downgrades the residual
read-only-sharing pattern.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AnalysisDiagnostic, AnalysisReport
from ..lang.ir import Program
from .ownership import OwnershipAnalysis, OwnershipViolation
from .readonly import ReadOnlyAnalysis
from .taint import TaintEngine
from .xsa import build_driver


@dataclass
class ProgramAnalysis:
    """Full result: per-machine violations with suppression provenance."""

    program: Program
    violations: List[Tuple[str, OwnershipViolation]] = field(default_factory=list)
    suppressed: Dict[int, str] = field(default_factory=dict)  # index -> reason
    xsa_enabled: bool = True
    readonly_enabled: bool = False
    seconds: float = 0.0

    def surviving(self) -> List[Tuple[str, OwnershipViolation]]:
        return [
            pair
            for index, pair in enumerate(self.violations)
            if index not in self.suppressed
        ]

    @property
    def verified(self) -> bool:
        return not self.surviving()

    def to_report(self) -> AnalysisReport:
        report = AnalysisReport(
            program=self.program.name,
            xsa_enabled=self.xsa_enabled,
            readonly_enabled=self.readonly_enabled,
            seconds=self.seconds,
        )
        for index, (machine, violation) in enumerate(self.violations):
            for diagnostic in violation.diagnostics(machine):
                diagnostic.suppressed_by = self.suppressed.get(index)
                report.diagnostics.append(diagnostic)
        return report

    def violation_count(self) -> int:
        """Number of surviving give-up sites flagged (Table 1 counts
        violations per reported site, not per failed condition)."""
        return len(self.surviving())


def analyze_program(
    program: Program,
    xsa: bool = True,
    readonly: bool = False,
    taint: Optional[TaintEngine] = None,
) -> ProgramAnalysis:
    """Run the complete static data race analysis on a program."""
    start = time.perf_counter()
    taint_engine = taint if taint is not None else TaintEngine(program)
    ownership = OwnershipAnalysis(program, taint_engine)

    analysis = ProgramAnalysis(program, xsa_enabled=xsa, readonly_enabled=readonly)
    for machine_name in program.machines:
        for violation in ownership.check_machine(machine_name):
            analysis.violations.append((machine_name, violation))
    for violation in ownership.check_helpers():
        analysis.violations.append(("<helpers>", violation))

    if xsa and analysis.violations:
        _run_xsa(program, taint_engine, ownership, analysis)

    if readonly and analysis.surviving():
        read_only = ReadOnlyAnalysis(program, ownership)
        for index, (machine_name, violation) in enumerate(analysis.violations):
            if index in analysis.suppressed or machine_name == "<helpers>":
                continue
            if read_only.suppresses(machine_name, violation):
                analysis.suppressed[index] = "readonly"

    analysis.seconds = time.perf_counter() - start
    return analysis


def _run_xsa(
    program: Program,
    taint: TaintEngine,
    ownership: OwnershipAnalysis,
    analysis: ProgramAnalysis,
) -> None:
    """Re-judge machine-level violations on the overarching driver CFG."""
    flagged_machines = {
        machine
        for machine, _violation in analysis.violations
        if machine != "<helpers>"
    }
    for machine_name in sorted(flagged_machines):
        driver = build_driver(program, taint, machine_name)
        if driver is None:
            continue  # outside the liftable fragment: keep base verdicts
        surviving_keys = set()
        for site in ownership.give_up_sites(driver.info):
            violation = ownership.check_site(site)
            if violation is not None:
                surviving_keys.add(site.loc_key)
        for index, (machine, violation) in enumerate(analysis.violations):
            if machine != machine_name or index in analysis.suppressed:
                continue
            if violation.site.loc_key not in surviving_keys:
                analysis.suppressed[index] = "xsa"
