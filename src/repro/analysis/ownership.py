"""Gives-up analysis (Figure 5) and respects-ownership checks (Sec. 5.3).

Ownership discipline: "an action assumes ownership of any payload it
receives and any object it creates; it gives up ownership of any payload
it sends as part of an event.  As long as each object has a unique owner,
data races cannot occur" (Section 1).

``gives_up(m)`` is the set of input roles (formal parameters, extended
with ``this`` for helper methods that send their own state) from which a
heap object may be reachable that is also reachable from a variable
occurring in a send statement — computed as a fixed point because methods
may be mutually recursive (Figure 5).

A node that gives up a variable ``w`` respects ownership iff (Sec. 5.3):

1. no node ``N'`` on a path Entry -> N lets ``this`` reach an object
   reachable from ``w`` at ``N`` (the machine would retain access through
   a field — Example 5.4 flags exactly this);
2. ``w != this`` and no *other* variable occurring in ``N`` overlaps
   ``w`` (aliases entering the same call could resurrect the reference);
3. no variable used on a path N -> Exit overlaps what was given up.

Condition 3 is checked with forward-only propagation seeded with the full
overlap closure at ``N``: sound for temporally-later uses, while strong
updates keep loop re-entries precise (see the module docstring of
:mod:`repro.analysis.taint` and DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import AnalysisDiagnostic
from ..lang.cfg import Node
from ..lang.ir import Call, CreateMachine, Program, Send
from .taint import MethodInfo, MethodKey, RET, TaintEngine


@dataclass
class GiveUpSite:
    """One occurrence of ownership transfer in a method body."""

    info: MethodInfo
    node: Node
    var: str
    kind: str  # "send" | "create" | "call"
    event: Optional[str] = None  # for sends

    @property
    def loc_key(self) -> str:
        """Stable identity of the give-up site across CFG rebuilds.

        Statements inlined into an xSA driver carry ``origin@loc`` tags;
        base-analysis sites synthesize the same form, so a driver verdict
        can be matched to the base verdict it re-judges.
        """
        loc = self.node.stmt.loc if self.node.stmt is not None else ""
        if "@" in loc:
            return loc
        return f"{self.info.decl.name}@{loc or f'n{self.node.index}'}"


@dataclass
class OwnershipViolation:
    """All failed conditions for one give-up site."""

    site: GiveUpSite
    failures: List[Tuple[int, str]] = field(default_factory=list)  # (condition, detail)
    readonly_uses_only: bool = True  # condition-3 uses were all plain reads
    flagged_uses: List[Tuple[Node, frozenset]] = field(
        default_factory=list
    )  # condition-3 use nodes with the overlapping variables
    loaded_fields: frozenset = frozenset()  # fields whose content overlaps w

    def diagnostics(self, machine: str) -> List[AnalysisDiagnostic]:
        return [
            AnalysisDiagnostic(
                kind="ownership-violation",
                machine=machine,
                method=self.site.info.decl.name,
                node=repr(self.site.node),
                variable=self.site.var,
                condition=condition,
                message=detail,
            )
            for condition, detail in self.failures
        ]


class OwnershipAnalysis:
    """Whole-program gives-up + respects-ownership analysis."""

    def __init__(self, program: Program, taint: Optional[TaintEngine] = None) -> None:
        self.program = program
        self.taint = taint if taint is not None else TaintEngine(program)
        self.gives_up: Dict[MethodKey, FrozenSet[str]] = {}
        self._compute_gives_up()

    # ------------------------------------------------------------------
    # Figure 5: the gives-up fixed point
    # ------------------------------------------------------------------
    def _compute_gives_up(self) -> None:
        for key in self.taint.methods:
            self.gives_up[key] = frozenset()
        changed = True
        while changed:
            changed = False
            for info in self.taint.methods.values():
                new = self._gives_up_of(info)
                if new != self.gives_up[info.key]:
                    self.gives_up[info.key] = new
                    changed = True

    def _gives_up_of(self, info: MethodInfo) -> FrozenSet[str]:
        roles = {"this"} | {
            p.name
            for p in info.decl.params
            if p.is_reference and p.type != "machine"
        }
        given: Set[str] = set()
        for node in info.cfg.statement_nodes():
            for var in self._given_up_vars(info, node):
                closure = self.taint.closure_facts(info, var, node)
                # may_overlap(N, v)_out(Entry, w): w's heap at method entry
                # intersects the sent value's heap at N.
                entry_taints = closure.out_of(info.cfg.entry)
                given |= roles & entry_taints
        return frozenset(given)

    def _given_up_vars(self, info: MethodInfo, node: Node) -> List[str]:
        """Variables whose ownership this node transfers away."""
        stmt = node.stmt
        if isinstance(stmt, Send):
            if stmt.arg is not None and info.is_ref(stmt.arg):
                return [stmt.arg]
            return []
        if isinstance(stmt, CreateMachine):
            if stmt.arg is not None and info.is_ref(stmt.arg):
                return [stmt.arg]
            return []
        if isinstance(stmt, Call):
            _summary, key = self.taint.resolve_call(info, stmt)
            if key is None:
                return []  # library code cannot send
            callee_given = self.gives_up.get(key, frozenset())
            out: List[str] = []
            for role, actual in self.taint.call_role_pairs(stmt, key):
                if role in callee_given and info.is_ref(actual):
                    out.append(actual)
            return out
        return []

    def give_up_sites(self, info: MethodInfo) -> List[GiveUpSite]:
        sites: List[GiveUpSite] = []
        for node in info.cfg.statement_nodes():
            stmt = node.stmt
            kind = (
                "send"
                if isinstance(stmt, Send)
                else "create"
                if isinstance(stmt, CreateMachine)
                else "call"
            )
            event = stmt.event if isinstance(stmt, Send) else None
            for var in self._given_up_vars(info, node):
                sites.append(GiveUpSite(info, node, var, kind, event))
        return sites

    # ------------------------------------------------------------------
    # Section 5.3: respects-ownership conditions
    # ------------------------------------------------------------------
    def check_site(self, site: GiveUpSite) -> Optional[OwnershipViolation]:
        info, node, w = site.info, site.node, site.var
        cfg = info.cfg
        closure = self.taint.closure_facts(info, w, node)
        violation = OwnershipViolation(site)

        # Condition 1: `this` must not reach the given-up heap anywhere on
        # a path from Entry to N.
        for earlier in cfg.reaching(node):
            if "this" in closure.out_of(earlier) and not earlier.is_exit:
                violation.failures.append(
                    (
                        1,
                        f"machine retains access: 'this' may reach the heap "
                        f"of {w!r} at {earlier!r}",
                    )
                )
                break

        # Condition 2: w is not `this`, and no other variable in N aliases w.
        if w == "this":
            violation.failures.append((2, "cannot give up 'this' itself"))
        else:
            occurring = {
                v
                for v in (node.stmt.vars_occurring() if node.stmt else [])
                if info.is_ref(v)
            }
            overlapping = {v for v in occurring if v in closure.in_of(node)}
            extras = overlapping - {w}
            if extras:
                violation.failures.append(
                    (
                        2,
                        f"aliases of {w!r} occur in the give-up node: "
                        f"{sorted(extras)}",
                    )
                )

        # Record which machine fields the given-up heap flows through —
        # the read-only extension scopes its cross-state mutation check to
        # these.  Prefer *stores* (the heap demonstrably entered those
        # fields); fall back to loads for the staged-in-an-earlier-state
        # pattern where this method only reads the field.
        stored = set()
        loaded = set()
        for any_node in cfg.statement_nodes():
            stmt = any_node.stmt
            kind_name = stmt.__class__.__name__ if stmt is not None else ""
            if kind_name == "StoreField" and getattr(stmt, "src", None) in closure.in_of(any_node):
                stored.add(stmt.field)
            elif kind_name == "LoadField" and getattr(stmt, "dst", None) in closure.out_of(any_node):
                # Member-insensitive marks flag every load once `this`
                # overlaps; only count the field if its loaded value can
                # actually flow into the transferred variable.
                flow = self.taint.forward_facts(
                    info, {s.index: frozenset({stmt.dst}) for s in any_node.succs}
                )
                if w in flow.in_of(node) or any_node is node:
                    loaded.add(stmt.field)
            elif kind_name == "Call" and stmt.recv == "this":
                # Field accesses inside a self-call whose result overlaps
                # the given-up heap belong to the flow too.
                result_overlaps = (
                    stmt.dst is not None and stmt.dst in closure.out_of(any_node)
                )
                arg_overlaps = any(a in closure.in_of(any_node) for a in stmt.args)
                if result_overlaps or arg_overlaps:
                    callee = self.taint.methods.get((info.class_name, stmt.method))
                    if callee is not None:
                        for inner in callee.cfg.statement_nodes():
                            inner_stmt = inner.stmt
                            inner_kind = inner_stmt.__class__.__name__
                            if inner_kind in ("LoadField", "StoreField"):
                                loaded.add(inner_stmt.field)
        violation.loaded_fields = frozenset(stored | loaded)

        # Condition 3: nothing overlapping w may be *used* after N.
        seed = frozenset(v for v in closure.in_of(node) if info.is_ref(v))
        forward = self.taint.forward_facts(info, {node.index: seed})
        after = cfg.reachable_from(node)
        for later in sorted(after, key=lambda n: n.index):
            if later.stmt is None:
                continue
            if later is node:
                # A loop revisits the give-up node itself: judge it by the
                # facts arriving along its back edges only, not the seed.
                loop_in: Set[str] = set()
                for pred in later.preds:
                    if pred in after:
                        loop_in |= forward.out_of(pred)
                tainted_at = frozenset(loop_in)
            else:
                tainted_at = forward.in_of(later)
            used = {v for v in later.stmt.vars_used() if info.is_ref(v)}
            bad = used & tainted_at
            if bad:
                violation.failures.append(
                    (
                        3,
                        f"{sorted(bad)} may still reach the given-up heap "
                        f"and are used at {later!r}",
                    )
                )
                violation.flagged_uses.append((later, frozenset(bad)))
                if not self._is_readonly_use(info, later, bad):
                    violation.readonly_uses_only = False

        return violation if violation.failures else None

    def _is_readonly_use(self, info: MethodInfo, node: Node, tainted: Set[str]) -> bool:
        """Whether the flagged use only *reads* the overlapping heap —
        input to the read-only extension (Section 8 future work)."""
        stmt = node.stmt
        if isinstance(stmt, (Send, CreateMachine)):
            return False  # a re-send is a second ownership transfer
        if isinstance(stmt, Call):
            summary, key = self.taint.resolve_call(info, stmt)
            callee_given = self.gives_up.get(key, frozenset()) if key else frozenset()
            for role, actual in self.taint.call_role_pairs(stmt, key):
                if actual in tainted and (
                    role in summary.mutates or role in callee_given
                ):
                    return False
            return True
        return True  # assignments, loads, conditions: pure reads

    # ------------------------------------------------------------------
    # Whole-machine / whole-program entry points
    # ------------------------------------------------------------------
    def machine_methods(self, machine_name: str) -> List[MethodInfo]:
        decl = self.program.machines[machine_name]
        cls = self.program.classes[decl.class_name]
        return [
            self.taint.methods[(cls.name, m)]
            for m in cls.methods
            if (cls.name, m) in self.taint.methods
        ]

    def check_machine(self, machine_name: str) -> List[OwnershipViolation]:
        violations: List[OwnershipViolation] = []
        for info in self.machine_methods(machine_name):
            for site in self.give_up_sites(info):
                violation = self.check_site(site)
                if violation is not None:
                    violations.append(violation)
        return violations

    def check_helpers(self) -> List[OwnershipViolation]:
        """Check non-machine classes (helper objects can send too)."""
        machine_classes = {m.class_name for m in self.program.machines.values()}
        violations: List[OwnershipViolation] = []
        for cls_name, cls in self.program.classes.items():
            if cls_name in machine_classes or cls.taint_summary is not None:
                continue
            for method_name in cls.methods:
                info = self.taint.methods.get((cls_name, method_name))
                if info is None:
                    continue
                for site in self.give_up_sites(info):
                    violation = self.check_site(site)
                    if violation is not None:
                        violations.append(violation)
        return violations
