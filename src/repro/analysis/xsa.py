"""Cross-state analysis (xSA, Section 5.4).

"Most false-positives in our experiments originate from the payload of an
event being constructed in one machine state and only being sent from a
later state. ... each machine can be seen as a CFG, where at the end of
each method representing a state we non-deterministically call one of the
methods representing an immediate successor state.  Our analysis can now
be performed on this overarching CFG once we lift all machine fields to
be parameters of the methods.  As payloads are now passed as parameters,
the false-positives no longer occur."

Implementation: for each machine we build a single synthetic *driver*
method whose CFG is the overarching state graph —

* a ``dispatch_q`` join node per state ``q``;
* the inlined, variable-renamed body of each handler between
  ``dispatch_q`` and ``dispatch_q'`` for every transition ``(q, e) -> q'``;
* every field ``f`` lifted to a driver-local ``$fld_f`` (loads and stores
  become plain assignments, so the flow-sensitive taint engine can apply
  *strong updates* — which is exactly what verifies the Example 5.5
  repair ``this.list := null``);
* each handler invocation starts by assigning its payload parameter an
  opaque ``External`` value: a fresh payload per received event.

Lifting is only sound when handler code reaches machine fields *directly*
(not through ``this``-calls into methods that themselves touch fields);
when that precondition fails we keep the original verdict rather than
suppressing anything, preserving soundness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..lang.cfg import Cfg, Node
from ..lang.ir import (
    Assert,
    Assign,
    Call,
    Const,
    CreateMachine,
    External,
    If,
    LoadField,
    MachineDecl,
    MethodDecl,
    New,
    Nondet,
    Op,
    Program,
    Return,
    Send,
    Stmt,
    StoreField,
    VarDecl,
    While,
    flatten,
)
from .taint import MethodInfo, TaintEngine


@dataclass
class Driver:
    """The synthetic overarching method of one machine."""

    machine: str
    info: MethodInfo


def _rename(rename: Dict[str, str], var: Optional[str]) -> Optional[str]:
    if var is None:
        return None
    return rename.get(var, var)


def _clone_stmts(
    body: List[Stmt],
    rename: Dict[str, str],
    origin: str,
    inliner=None,
    ret_var: Optional[str] = None,
) -> List[Stmt]:
    """Deep-copy a handler body with variables renamed, field accesses
    lowered to ``$fld_*`` locals, and locations tagged with their origin
    method so xSA verdicts can be matched back to base-analysis sites.

    ``inliner(call, rename, loc)`` — when set, gives the driver builder a
    chance to splice in the body of a ``this.method(...)`` call (machine
    methods may touch fields, which lifting must see).  ``ret_var`` turns
    ``return v`` into an assignment (used for inlined callees).
    """
    out: List[Stmt] = []
    for stmt in body:
        loc = f"{origin}@{stmt.loc}" if "@" not in stmt.loc else stmt.loc
        if isinstance(stmt, Call) and inliner is not None and stmt.recv == "this":
            spliced = inliner(stmt, rename, loc)
            if spliced is not None:
                out.extend(spliced)
                continue
        if isinstance(stmt, Assign):
            out.append(Assign(_rename(rename, stmt.dst), _rename(rename, stmt.src), loc=loc))
        elif isinstance(stmt, Const):
            out.append(Const(_rename(rename, stmt.dst), stmt.value, loc=loc))
        elif isinstance(stmt, Op):
            out.append(
                Op(
                    _rename(rename, stmt.dst),
                    _rename(rename, stmt.left),
                    stmt.op,
                    _rename(rename, stmt.right),
                    loc=loc,
                )
            )
        elif isinstance(stmt, StoreField):
            out.append(Assign(f"$fld_{stmt.field}", _rename(rename, stmt.src), loc=loc))
        elif isinstance(stmt, LoadField):
            out.append(Assign(_rename(rename, stmt.dst), f"$fld_{stmt.field}", loc=loc))
        elif isinstance(stmt, New):
            out.append(New(_rename(rename, stmt.dst), stmt.cls, loc=loc))
        elif isinstance(stmt, Call):
            out.append(
                Call(
                    _rename(rename, stmt.dst),
                    _rename(rename, stmt.recv),
                    stmt.method,
                    [_rename(rename, a) for a in stmt.args],
                    loc=loc,
                )
            )
        elif isinstance(stmt, Send):
            out.append(
                Send(_rename(rename, stmt.dst), stmt.event, _rename(rename, stmt.arg), loc=loc)
            )
        elif isinstance(stmt, Return):
            # Handlers are void and inlined callees assign their returned
            # value; in both cases the *jump* is modelled by dropping the
            # statement, i.e. pretending the remainder may still execute.
            # This over-approximates the path set (sound for a
            # may-analysis); routing the return to the driver's Exit would
            # instead lose the paths into later states — unsound.
            if ret_var is not None and stmt.var is not None:
                out.append(Assign(ret_var, _rename(rename, stmt.var), loc=loc))
            continue
        elif isinstance(stmt, If):
            out.append(
                If(
                    _rename(rename, stmt.cond),
                    _clone_stmts(stmt.then_body, rename, origin, inliner, ret_var),
                    _clone_stmts(stmt.else_body, rename, origin, inliner, ret_var),
                    loc=loc,
                )
            )
        elif isinstance(stmt, While):
            out.append(
                While(
                    _rename(rename, stmt.cond),
                    _clone_stmts(stmt.body, rename, origin, inliner, ret_var),
                    loc=loc,
                )
            )
        elif isinstance(stmt, Assert):
            out.append(Assert(_rename(rename, stmt.var), stmt.message, loc=loc))
        elif isinstance(stmt, Nondet):
            out.append(Nondet(_rename(rename, stmt.dst), loc=loc))
        elif isinstance(stmt, CreateMachine):
            out.append(
                CreateMachine(
                    _rename(rename, stmt.dst), stmt.machine, _rename(rename, stmt.arg), loc=loc
                )
            )
        elif isinstance(stmt, External):
            out.append(External(_rename(rename, stmt.dst), loc=loc))
        else:  # pragma: no cover
            raise TypeError(f"cannot clone {stmt!r}")
    return out


def _method_touches_fields(method: MethodDecl) -> bool:
    return any(
        isinstance(s, (LoadField, StoreField)) for s in flatten(method.body)
    )


def build_driver(
    program: Program, taint: TaintEngine, machine_name: str
) -> Optional[Driver]:
    """Construct and register the overarching driver method, or None when
    the machine is outside the liftable fragment."""
    machine = program.machines[machine_name]
    cls = program.classes[machine.class_name]
    init = cls.methods.get(machine.initial)
    if init is None:
        return None
    bail = {"flag": False}
    inline_counter = {"n": 0}

    locals_: List[VarDecl] = [
        VarDecl(f"$fld_{f.name}", f.type) for f in cls.fields
    ]
    method = MethodDecl(name=f"$xsa_{machine_name}", params=[], locals=locals_)

    cfg = object.__new__(Cfg)
    cfg.method = method
    cfg.nodes = []
    cfg.entry = cfg._node(label="Entry")
    cfg.exit = cfg._node(label="Exit")

    def instantiate(handler_method: MethodDecl, prefix: str) -> tuple:
        """Rename map + payload assignment for one inlined handler copy."""
        rename: Dict[str, str] = {}
        for var in list(handler_method.params) + list(handler_method.locals):
            fresh = f"{prefix}{var.name}"
            rename[var.name] = fresh
            locals_.append(VarDecl(fresh, var.type))
        prologue: List[Stmt] = [
            External(rename[p.name], loc=f"{handler_method.name}@payload")
            for p in handler_method.params
        ]
        return rename, prologue

    inline_stack: List[str] = []

    def inline_call(call: Call, caller_rename: Dict[str, str], loc: str):
        """Splice the body of a machine self-call into the driver so its
        field accesses are lifted too.  Returns None to keep the call as
        an opaque node (only safe when the callee is field-free)."""
        callee = cls.methods.get(call.method)
        if callee is None:
            return None
        if not _method_touches_fields(callee) and call.method not in inline_stack:
            return None  # summaries handle field-free methods precisely
        if call.method in inline_stack or len(inline_stack) >= 4:
            bail["flag"] = True  # recursion through fields: give up lifting
            return []
        inline_counter["n"] += 1
        prefix = f"inl{inline_counter['n']}_"
        rename: Dict[str, str] = {}
        for var in list(callee.params) + list(callee.locals):
            fresh = f"{prefix}{var.name}"
            rename[var.name] = fresh
            locals_.append(VarDecl(fresh, var.type))
        spliced: List[Stmt] = []
        for index, param in enumerate(callee.params):
            if index < len(call.args):
                actual = caller_rename.get(call.args[index], call.args[index])
                spliced.append(Assign(rename[param.name], actual, loc=loc))
        ret_var = None
        if call.dst is not None:
            ret_var = caller_rename.get(call.dst, call.dst)
        inline_stack.append(call.method)
        spliced.extend(
            _clone_stmts(callee.body, rename, callee.name, inline_call, ret_var)
        )
        inline_stack.pop()
        return spliced

    # Initial state body.
    rename, prologue = instantiate(init, "i0_")
    init_body = prologue + _clone_stmts(init.body, rename, init.name, inline_call)
    tails = cfg._build(init_body, [cfg.entry])

    dispatch: Dict[str, Node] = {}
    for state in machine.states():
        dispatch[state] = cfg._node(label=f"dispatch_{state}")
        cfg._edge(dispatch[state], cfg.exit)  # the machine may go idle

    for tail in tails:
        cfg._edge(tail, dispatch[machine.initial_state])

    seen: Set[tuple] = set()
    for handler in machine.handlers:
        key = (handler.state, handler.event)
        if key in seen:
            continue
        seen.add(key)
        handler_method = cls.methods.get(handler.method)
        if handler_method is None:
            continue
        prefix = f"{handler.state}_{handler.event}_"
        rename, prologue = instantiate(handler_method, prefix)
        body = prologue + _clone_stmts(
            handler_method.body, rename, handler_method.name, inline_call
        )
        handler_tails = cfg._build(body, [dispatch[handler.state]])
        target = dispatch.get(handler.next_state)
        if target is None:  # pragma: no cover - states() covers all targets
            target = cfg.exit
        for tail in handler_tails:
            cfg._edge(tail, target)

    if bail["flag"]:
        return None  # outside the liftable fragment: keep base verdicts
    info = MethodInfo(machine.class_name, method, cfg=cfg)
    taint.register(info)
    return Driver(machine=machine_name, info=info)
