"""The read-only extension (the paper's stated future work, Section 8).

"We found that a reoccurring pattern of false positives involved sending
the same data to multiple machines where the receivers would only read
the data.  We could address such false positives by introducing a read
only analysis."  Seven residual MultiPaxos/AsyncSystem false positives in
Table 1 have exactly this shape: a machine stores a reference in a field,
sends it to M2, and later sends the same field to M3 — everyone only
reads.

A remaining ownership violation is downgraded when sharing is read-only
on every side:

* *sender side*: every condition-3 flagged use is a pure read (tracked by
  the ownership checker), and — for condition-1 violations, where the
  machine retains field access — no method of the machine mutates heap it
  loads out of its fields;
* *receiver side*: every handler of the sent event treats its payload as
  read-only (the payload role is absent from the handler's mutation
  summary and its gives-up set: a receiver that forwards or mutates the
  payload breaks the sharing discipline).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from ..lang.ir import Call, CreateMachine, LoadField, Program, Send, StoreField
from .ownership import OwnershipAnalysis, OwnershipViolation
from .taint import MethodInfo, TaintEngine


class ReadOnlyAnalysis:
    def __init__(self, program: Program, ownership: OwnershipAnalysis) -> None:
        self.program = program
        self.ownership = ownership
        self.taint = ownership.taint
        self._event_cache: Dict[str, bool] = {}
        self._machine_cache: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def event_is_readonly(self, event: Optional[str]) -> bool:
        """All handlers of ``event``, across all machines, only read their
        payload."""
        if event is None:
            return False
        if event in self._event_cache:
            return self._event_cache[event]
        verdict = True
        for machine in self.program.machines.values():
            cls = self.program.classes[machine.class_name]
            for handler in machine.handlers:
                if handler.event != event:
                    continue
                method = cls.methods.get(handler.method)
                if method is None:
                    continue
                info = self.taint.methods.get((cls.name, handler.method))
                if info is None:
                    verdict = False
                    break
                summary = self.taint.summaries.get(info.key)
                given = self.ownership.gives_up.get(info.key, frozenset())
                for param in method.params:
                    if not param.is_reference or param.type == "machine":
                        continue
                    if summary is not None and param.name in summary.mutates:
                        verdict = False
                    if param.name in given:
                        verdict = False
            if not verdict:
                break
        self._event_cache[event] = verdict
        return verdict

    def machine_reads_fields_only(self, machine_name: str, fields=None) -> bool:
        """No method of the machine mutates heap loaded from its fields
        (overwriting the fields themselves is fine — mutation of the
        *referenced objects* is what breaks read-only sharing).  When
        ``fields`` is given, only loads of those fields are considered —
        the fields the given-up heap actually flows through."""
        cache_key = (machine_name, fields)
        if cache_key in self._machine_cache:
            return self._machine_cache[cache_key]
        methods = self.ownership.machine_methods(machine_name)
        # Only transfers of heap that overlaps the machine's own fields
        # can expose field-loaded values cross-state; a send of a freshly
        # built, never-stored payload is irrelevant here.
        gives_up_somewhere = {
            info.decl.name
            for info in methods
            if any(
                self._site_touches_fields(info, site)
                for site in self.ownership.give_up_sites(info)
            )
        }
        verdict = True
        for info in methods:
            # Cross-state ordering is unknown: if any *other* handler
            # transfers ownership, every mutating use here may follow it.
            others_transfer = bool(gives_up_somewhere - {info.decl.name})
            if not self._loads_used_readonly(
                info, assume_post=others_transfer, fields=fields
            ):
                verdict = False
                break
        self._machine_cache[cache_key] = verdict
        return verdict

    def _freshly_initialized(self, info: MethodInfo, load_node) -> bool:
        """Every path from Entry to ``load_node`` stores a fresh value
        (one not overlapping prior machine state) into the loaded field."""
        field = load_node.stmt.field
        fresh_stores = set()
        for node in info.cfg.statement_nodes():
            stmt = node.stmt
            if not isinstance(stmt, StoreField) or stmt.field != field:
                continue
            if self._definitely_fresh(info, node, stmt.src):
                fresh_stores.add(node)
        if not fresh_stores:
            return False
        # Is the load reachable from Entry when the fresh stores block?
        stack = [info.cfg.entry]
        seen = set()
        while stack:
            node = stack.pop()
            if node in seen or node in fresh_stores:
                continue
            seen.add(node)
            if node is load_node:
                return False
            stack.extend(node.succs)
        return True

    def _definitely_fresh(self, info: MethodInfo, use_node, var: str) -> bool:
        """Every definition of ``var`` reaching ``use_node`` is a fresh
        allocation (``new``/``external``).  Reaching-definitions walk —
        the overlap closure cannot answer this (the store's own effect
        would pollute the query)."""
        from ..lang.ir import External, New

        stack = list(use_node.preds)
        seen = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stmt = node.stmt
            if stmt is not None and getattr(stmt, "dst", None) == var:
                if isinstance(stmt, (New, External)):
                    continue  # fresh along this path; stop walking it
                return False
            if node.is_entry:
                return False  # parameter or uninitialized: not fresh
            stack.extend(node.preds)
        return True

    def _site_touches_fields(self, info: MethodInfo, site) -> bool:
        """Whether a give-up site's heap may overlap the machine state."""
        closure = self.taint.closure_facts(info, site.var, site.node)
        return any(
            "this" in closure.out_of(node)
            for node in info.cfg.statement_nodes()
        )

    def _loads_used_readonly(
        self, info: MethodInfo, assume_post: bool = False, fields=None
    ) -> bool:
        """No mutation of field-loaded heap that could follow a transfer.

        A mutating use only breaks read-only sharing when it can execute
        *after* the data may have been given up: within one handler, that
        means reachable from one of its give-up sites; mutations that
        strictly precede every transfer (building a batch before sending
        it) are the normal construction phase.
        """
        sites = self.ownership.give_up_sites(info)
        for node in info.cfg.statement_nodes():
            if not isinstance(node.stmt, LoadField):
                continue
            if fields is not None and node.stmt.field not in fields:
                continue
            loaded = node.stmt.dst
            if not info.is_ref(loaded):
                continue
            seeds = {succ.index: frozenset({loaded}) for succ in node.succs}
            facts = self.taint.forward_facts(info, seeds)
            # Only transfers that may involve *this* loaded value put
            # later mutations of it at risk.
            post_transfer = set()
            for site in sites:
                if site.var in facts.in_of(site.node):
                    post_transfer |= info.cfg.reachable_from(site.node)
            # The pre-transfer "construction phase" exemption is only
            # valid when the field was freshly re-initialized on every
            # path to this load — otherwise the loaded value may be the
            # one a *previous invocation* of this handler already sent.
            construction = self._freshly_initialized(info, node)
            for later in info.cfg.statement_nodes():
                stmt = later.stmt
                if not isinstance(stmt, Call):
                    continue
                pre_transfer_ok = construction and later not in post_transfer
                if not assume_post and pre_transfer_ok:
                    continue
                tainted = facts.in_of(later)
                summary, key = self.taint.resolve_call(info, stmt)
                for role, actual in self.taint.call_role_pairs(stmt, key):
                    if actual in tainted and role in summary.mutates:
                        return False
        return True

    # ------------------------------------------------------------------
    def suppresses(self, machine_name: str, violation: OwnershipViolation) -> bool:
        """Whether read-only sharing justifies suppressing the violation."""
        if not violation.readonly_uses_only:
            # A flagged mutating use is final; a flagged *re-send* (or
            # re-share at creation) of the same data is the paper's
            # sharing pattern itself — acceptable when every receiver is
            # read-only.
            for use, overlapping in violation.flagged_uses:
                stmt = use.stmt
                if isinstance(stmt, Send):
                    if not self.event_is_readonly(stmt.event):
                        return False
                elif isinstance(stmt, CreateMachine):
                    if not self.creation_is_readonly(stmt.machine):
                        return False
                elif not self.ownership._is_readonly_use(
                    violation.site.info, use, set(overlapping)
                ):
                    return False
        conditions = {c for c, _ in violation.failures}
        if 2 in conditions:
            return False  # aliasing at the give-up node is not a sharing issue
        if violation.site.kind == "send":
            if not self.event_is_readonly(violation.site.event):
                return False
        elif violation.site.kind == "create":  # noqa: SIM114
            # Sharing a start payload (e.g. the same machine list handed
            # to several children, as Figure 1's Workers list) is fine
            # when every created machine's initial handler only reads it.
            stmt = violation.site.node.stmt
            created = getattr(stmt, "machine", None)
            if created is None or not self.creation_is_readonly(created):
                return False
        if 1 in conditions and not self.machine_reads_fields_only(
            machine_name, violation.loaded_fields
        ):
            return False
        return True

    def creation_is_readonly(self, machine_name: str) -> bool:
        """The machine's initial handler neither mutates nor re-sends its
        creation payload."""
        machine = self.program.machines.get(machine_name)
        if machine is None:
            return False
        cls = self.program.classes[machine.class_name]
        method = cls.methods.get(machine.initial)
        if method is None:
            return True
        info = self.taint.methods.get((cls.name, machine.initial))
        if info is None:
            return False
        summary = self.taint.summaries.get(info.key)
        given = self.ownership.gives_up.get(info.key, frozenset())
        for param in method.params:
            if not param.is_reference or param.type == "machine":
                continue
            if summary is not None and param.name in summary.mutates:
                return False
            if param.name in given:
                return False
        return True
