"""Lowering Python ``Machine`` classes to the core-language IR.

The paper's analyzer is built "on top of Microsoft's Roslyn compiler
framework", querying the C# AST to build per-method CFGs (Section 5.4).
This frontend plays the same role for the Python embedding: it parses the
source of each machine class with :mod:`ast` and lowers actions into the
Figure 2 IR, on which the taint / gives-up / respects-ownership / xSA
analyses run unchanged.

Lowering is *reference-exact, scalar-sloppy*: the analysis only tracks
reference-typed variables, so arithmetic, string formatting and boolean
logic are lowered to inert scalar constants, while every flow that can
alias heap objects (assignments, field access, container operations,
method calls, payload construction, sends) is lowered precisely.
Container operations resolve against the summary-only builtin classes of
:mod:`repro.analysis.builtins`.

Types are tracked as recursive *ftypes* so that scalars and machine ids
survive round trips through containers and event payloads::

    ftype ::= "int" | "machine" | "object" | <class name> | "none"
            | ("list"|"set"|"dict", ftype-or-None)     # element type
            | ("tuple", (ftype, ...))                  # positional

Positional tuple types are what let ``proposer = msg[0]`` come back as a
``machine`` id rather than an opaque heap reference — without this, every
protocol payload would look racy.  Element types are also propagated
through machine fields, event payloads (sender-to-handler, computed over
two lowering passes) and method return values.

Supported subset (enforced loudly — a ``FrontendError`` names the
construct and location): assignments (tuple unpacking, subscripts,
augmented assignment), ``if``/``while``/``for`` over containers and
ranges, ``return``, ``assert``, method calls, container literals and
comprehensions, and the P# runtime API (``send``, ``create_machine``,
``raise_event``, ``assert_that``, ``nondet``, ``nondet_int``, ``halt``,
``payload``, ``log``).  ``copy.deepcopy`` lowers to an opaque fresh value
— deep-copying before a send is the ownership-preserving idiom the paper
contrasts with reference payloads.  ``try``/``with``/``lambda``/
``break``/``continue`` are outside the subset.

Like the paper's implementation, "calls to libraries of which the source
code is not available are handled in a conservative manner" — unresolved
calls havoc every involved variable.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Type, Union

from ..core.events import Event
from ..core.machine import Machine
from ..errors import PSharpError
from ..lang.ir import (
    Assert,
    Assign,
    Call,
    ClassDecl,
    Const,
    CreateMachine,
    External,
    If,
    LoadField,
    MachineDecl,
    MethodDecl,
    New,
    Nondet,
    Program,
    Return,
    Send,
    StateHandler,
    Stmt,
    StoreField,
    VarDecl,
    While,
)
from .builtins import CONTAINER_TYPES, builtin_classes


class FrontendError(PSharpError):
    """A machine uses a Python construct outside the analyzable subset."""


SCALAR_FUNCS = {
    "len", "abs", "int", "float", "bool", "str", "ord", "chr", "sum",
    "isinstance", "print", "hash", "round", "repr", "id", "any", "all",
    "divmod", "pow", "format",
}

_SCALAR_BASES = frozenset({"int", "bool", "float", "str", "none"})

FType = Union[str, tuple]


def base_of(ft: Optional[FType]) -> str:
    if ft is None:
        return "object"
    return ft if isinstance(ft, str) else ft[0]


def elem_of(ft: Optional[FType]) -> Optional[FType]:
    """Element ftype of a container (joined, for positional tuples)."""
    if isinstance(ft, tuple):
        if ft[0] == "tuple":
            parts = ft[1]
            return join_many(parts) if parts else None
        return ft[1]
    return None


def is_scalar_ft(ft: Optional[FType]) -> bool:
    return base_of(ft) in _SCALAR_BASES


def join_many(parts: Sequence[Optional[FType]]) -> Optional[FType]:
    out: Optional[FType] = None
    for part in parts:
        out = ftjoin(out, part)
    return out


def ftjoin(a: Optional[FType], b: Optional[FType]) -> Optional[FType]:
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    abase, bbase = base_of(a), base_of(b)
    if abase == "none":
        return b
    if bbase == "none":
        return a
    if abase in _SCALAR_BASES and bbase in _SCALAR_BASES:
        return "int"
    if "$container" in (abase, bbase):
        # An unknown-kind container adopts the other side's kind.
        other = b if abase == "$container" else a
        obase = base_of(other)
        if obase in CONTAINER_TYPES or obase == "$container":
            return (obase, ftjoin(elem_of(a), elem_of(b)))
        if obase == "tuple":
            return ("tuple", ())
        return "object" if obase not in _SCALAR_BASES else "object"
    if abase == bbase:
        if abase == "tuple":
            aparts = a[1] if isinstance(a, tuple) else ()
            bparts = b[1] if isinstance(b, tuple) else ()
            if (
                isinstance(a, tuple)
                and isinstance(b, tuple)
                and len(aparts) == len(bparts)
            ):
                return ("tuple", tuple(ftjoin(x, y) for x, y in zip(aparts, bparts)))
            return ("tuple", ())
        if abase in CONTAINER_TYPES:
            return (abase, ftjoin(elem_of(a), elem_of(b)))
        return abase
    if abase == "machine" and bbase == "machine":
        return "machine"
    if (abase == "machine") != (bbase == "machine"):
        other = bbase if abase == "machine" else abase
        return "machine" if other in _SCALAR_BASES else "object"
    return "object"


def _vardecl_type(ft: Optional[FType]) -> str:
    base = base_of(ft)
    if base == "none":
        return "int"  # a pure-None variable can reach no heap
    if base == "$container":
        return "object"
    return base


class _Lowerer:
    """Lowers one Python method body to an IR statement list."""

    def __init__(
        self,
        frontend: "PythonFrontend",
        owner: str,
        func_def: ast.FunctionDef,
        func_globals: Dict[str, Any],
        *,
        is_handler: bool,
        payload_type: Optional[FType] = None,
        param_types: Optional[Dict[str, FType]] = None,
    ) -> None:
        self.frontend = frontend
        self.owner = owner
        self.func = func_def
        self.globals = func_globals
        self.is_handler = is_handler
        self.env: Dict[str, FType] = {}
        self.var_types: Dict[str, FType] = {}
        self.params: List[VarDecl] = []
        # provenance: temp holding a field load -> field name (for element
        # type refinement when the temp is mutated in place)
        self.field_alias: Dict[str, str] = {}
        self._temp = 0
        if is_handler:
            ptype = payload_type if payload_type is not None else "none"
            self.params.append(VarDecl("$payload", _vardecl_type(ptype)))
            self.env["$payload"] = ptype
        else:
            for index, arg in enumerate(func_def.args.args[1:]):  # skip self
                ptype = (
                    (param_types or {}).get(arg.arg)
                    or frontend.param_type(owner, func_def.name, index)
                    or self._annotation_type(arg.annotation)
                    or "none"  # optimistic bottom, widened by call sites
                )
                self.params.append(VarDecl(arg.arg, _vardecl_type(ptype)))
                self.env[arg.arg] = ptype

    # ------------------------------------------------------------------
    def lower(self) -> MethodDecl:
        body = self.block(self.func.body)
        locals_ = [
            VarDecl(name, _vardecl_type(ft))
            for name, ft in sorted(self.var_types.items())
            if all(p.name != name for p in self.params)
        ]
        return MethodDecl(
            name=self.func.name,
            params=self.params,
            locals=locals_,
            body=body,
            ret_type="object",
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def fail(self, node: ast.AST, reason: str) -> FrontendError:
        line = getattr(node, "lineno", "?")
        return FrontendError(f"{self.owner}.{self.func.name} line {line}: {reason}")

    def loc(self, node: ast.AST) -> str:
        return f"L{getattr(node, 'lineno', 0)}"

    def temp(self, ft: Optional[FType]) -> str:
        self._temp += 1
        name = f"$t{self._temp}"
        self.bind(name, ft if ft is not None else "object")
        return name

    def bind(self, name: str, ft: FType) -> None:
        self.env[name] = ft
        self.var_types[name] = ftjoin(self.var_types.get(name), ft) or ft
        self.field_alias.pop(name, None)

    def ft_of(self, operand: str) -> Optional[FType]:
        return self.env.get(operand)

    def _annotation_type(self, annotation: Optional[ast.expr]) -> Optional[FType]:
        if isinstance(annotation, ast.Name):
            name = annotation.id
            if name in ("int", "float", "bool", "str"):
                return "int"
            if name in CONTAINER_TYPES:
                return (name, None)
            if name in self.frontend.helper_names:
                return name
            if name == "MachineId":
                return "machine"
            return "object"
        return None

    def _global(self, name: str) -> Any:
        return self.globals.get(name)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def block(self, stmts: Sequence[ast.stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in stmts:
            out.extend(self.stmt(stmt))
        return out

    def stmt(self, node: ast.stmt) -> List[Stmt]:
        if isinstance(node, ast.Assign):
            return self._assign(node)
        if isinstance(node, ast.AugAssign):
            return self._aug_assign(node)
        if isinstance(node, ast.AnnAssign):
            if node.value is None:
                return []
            fake = ast.Assign(targets=[node.target], value=node.value)
            ast.copy_location(fake, node)
            return self._assign(fake)
        if isinstance(node, ast.Expr):
            return self._expr_stmt(node)
        if isinstance(node, ast.If):
            return self._if(node)
        if isinstance(node, ast.While):
            return self._while(node)
        if isinstance(node, ast.For):
            return self._for(node)
        if isinstance(node, ast.Return):
            return self._return(node)
        if isinstance(node, ast.Assert):
            out, (operand, _t) = self._expr_into([], node.test)
            out.append(Assert(operand, loc=self.loc(node)))
            return out
        if isinstance(node, ast.Pass):
            return []
        if isinstance(node, (ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal)):
            return []
        if isinstance(node, (ast.Break, ast.Continue)):
            raise self.fail(
                node,
                "break/continue are outside the analyzable subset — "
                "use a loop flag instead",
            )
        if isinstance(node, ast.Delete):
            out: List[Stmt] = []
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    out, (container, _ct) = self._expr_into(out, target.value)
                    out, (key, _kt) = self._expr_into(out, target.slice)
                    out.append(Call(None, container, "$del", [key], loc=self.loc(node)))
                else:
                    raise self.fail(node, "only `del container[key]` is supported")
            return out
        raise self.fail(node, f"unsupported statement {type(node).__name__}")

    def _expr_into(
        self, out: List[Stmt], node: ast.expr
    ) -> Tuple[List[Stmt], Tuple[str, Optional[FType]]]:
        operand, ft, stmts = self.expr(node)
        out.extend(stmts)
        return out, (operand, ft)

    def _assign(self, node: ast.Assign) -> List[Stmt]:
        out: List[Stmt] = []
        out, (value, vtype) = self._expr_into(out, node.value)
        for target in node.targets:
            out.extend(self._store(target, value, vtype, node))
        return out

    def _store(
        self, target: ast.expr, value: str, vtype: Optional[FType], node: ast.stmt
    ) -> List[Stmt]:
        loc = self.loc(node)
        vtype = vtype if vtype is not None else "object"
        if isinstance(target, ast.Name):
            self.bind(target.id, vtype)
            return [Assign(target.id, value, loc=loc)]
        if isinstance(target, ast.Attribute) and self._is_self(target.value):
            self.frontend.note_field(self.owner, target.attr, vtype)
            return [StoreField(target.attr, value, loc=loc)]
        if isinstance(target, ast.Attribute):
            out, (obj, _ot) = self._expr_into([], target.value)
            out.append(Call(None, obj, f"$set_{target.attr}", [value], loc=loc))
            return out
        if isinstance(target, ast.Subscript):
            out, (container, ctype) = self._expr_into([], target.value)
            out, (key, _kt) = self._expr_into(out, target.slice)
            out.append(Call(None, container, "$set", [key, value], loc=loc))
            self._refine_container(container, vtype)
            return out
        if isinstance(target, (ast.Tuple, ast.List)):
            out = []
            parts = None
            if isinstance(vtype, tuple) and vtype[0] == "tuple":
                parts = vtype[1]
            for index, element in enumerate(target.elts):
                if parts is not None and index < len(parts):
                    ft = parts[index]
                else:
                    ft = elem_of(vtype) or "object"
                item = self.temp(ft)
                out.append(Call(item, value, "$item", [], loc=loc))
                out.extend(self._store(element, item, ft, node))
            return out
        raise self.fail(node, f"unsupported assignment target {type(target).__name__}")

    def _refine_container(self, container: str, added: Optional[FType]) -> None:
        """Record that ``added`` flows into ``container``'s elements, both
        in the local environment and — through load provenance — in the
        owning machine's field type."""
        current = self.env.get(container)
        base = base_of(current) if current is not None else "$container"
        if base not in CONTAINER_TYPES:
            # Unknown kind: record the element type without guessing the
            # container kind; a later pass supplies it via ftjoin.
            base = "$container"
        refined = (base, ftjoin(elem_of(current), added))
        self.env[container] = refined
        self.var_types[container] = ftjoin(self.var_types.get(container), refined) or refined
        field = self.field_alias.get(container)
        if field is not None:
            self.frontend.note_field(self.owner, field, refined)

    def _aug_assign(self, node: ast.AugAssign) -> List[Stmt]:
        binop = ast.BinOp(left=_target_as_expr(node.target), op=node.op, right=node.value)
        ast.copy_location(binop, node)
        assign = ast.Assign(targets=[node.target], value=binop)
        ast.copy_location(assign, node)
        return self._assign(assign)

    def _if(self, node: ast.If) -> List[Stmt]:
        out, (cond, _t) = self._expr_into([], node.test)
        cond_var = self.temp("bool")
        out.append(Assign(cond_var, cond, loc=self.loc(node)))
        before = dict(self.env)
        then_body = self.block(node.body)
        after_then = dict(self.env)
        self.env = before
        else_body = self.block(node.orelse)
        for name, ft in after_then.items():
            self.env[name] = ftjoin(self.env.get(name), ft) or ft
        out.append(If(cond_var, then_body, else_body, loc=self.loc(node)))
        return out

    def _while(self, node: ast.While) -> List[Stmt]:
        if node.orelse:
            raise self.fail(node, "while/else is not supported")
        out, (cond, _t) = self._expr_into([], node.test)
        cond_var = self.temp("bool")
        out.append(Assign(cond_var, cond, loc=self.loc(node)))
        body = self.block(node.body)
        retest, (cond2, _t2) = self._expr_into([], node.test)
        body.extend(retest)
        body.append(Assign(cond_var, cond2, loc=self.loc(node)))
        out.append(While(cond_var, body, loc=self.loc(node)))
        return out

    def _for(self, node: ast.For) -> List[Stmt]:
        if node.orelse:
            raise self.fail(node, "for/else is not supported")
        out: List[Stmt] = []
        loc = self.loc(node)
        iter_node = node.iter
        scalar_iter = False
        item_source: Optional[str] = None
        item_ft: Optional[FType] = None
        enumerate_mode = False

        if isinstance(iter_node, ast.Call) and isinstance(iter_node.func, ast.Name):
            fname = iter_node.func.id
            if fname == "range":
                for arg in iter_node.args:
                    out, _ = self._expr_into(out, arg)
                scalar_iter = True
            elif fname == "enumerate":
                out, (container, ctype) = self._expr_into(out, iter_node.args[0])
                item_source, item_ft = container, elem_of(ctype)
                enumerate_mode = True
            elif fname in ("sorted", "reversed", "list", "set", "tuple"):
                out, (container, ctype) = self._expr_into(out, iter_node.args[0])
                item_source, item_ft = container, elem_of(ctype)
            else:
                out, (container, ctype) = self._expr_into(out, iter_node)
                item_source, item_ft = container, elem_of(ctype)
        else:
            out, (container, ctype) = self._expr_into(out, iter_node)
            if is_scalar_ft(ctype):
                scalar_iter = True
            else:
                item_source, item_ft = container, elem_of(ctype)

        body: List[Stmt] = []
        target = node.target
        if item_ft is None:
            source_ft = self.env.get(item_source) if item_source in self.env else None
            bottom = isinstance(source_ft, tuple) or base_of(source_ft) == "none"
            item_ft = "none" if bottom else "object"
        if scalar_iter:
            if not isinstance(target, ast.Name):
                raise self.fail(node, "range loops must bind a single name")
            self.bind(target.id, "int")
            body.append(Const(target.id, 0, loc=loc))
        elif enumerate_mode:
            if not (isinstance(target, ast.Tuple) and len(target.elts) == 2):
                raise self.fail(node, "enumerate loops must bind (index, item)")
            index_t, item_t = target.elts
            if isinstance(index_t, ast.Name):
                self.bind(index_t.id, "int")
                body.append(Const(index_t.id, 0, loc=loc))
            assert item_source is not None
            item = self.temp(item_ft)
            body.append(Call(item, item_source, "$item", [], loc=loc))
            body.extend(self._store(item_t, item, item_ft, node))
        else:
            assert item_source is not None
            item = self.temp(item_ft)
            body.append(Call(item, item_source, "$item", [], loc=loc))
            body.extend(self._store(target, item, item_ft, node))

        body.extend(self.block(node.body))
        cond_var = self.temp("bool")
        body.append(Nondet(cond_var, loc=loc))
        out.append(Nondet(cond_var, loc=loc))
        out.append(While(cond_var, body, loc=loc))
        return out

    def _return(self, node: ast.Return) -> List[Stmt]:
        if node.value is None:
            return [Return(None, loc=self.loc(node))]
        out, (value, vtype) = self._expr_into([], node.value)
        if value not in self.env:  # literal: materialize for the Return var
            tmp = self.temp("int")
            out.append(Const(tmp, 0, loc=self.loc(node)))
            value = tmp
            vtype = "int"
        self.frontend.note_return(self.owner, self.func.name, vtype)
        out.append(Return(value, loc=self.loc(node)))
        return out

    # ------------------------------------------------------------------
    # Expression statements: the P# API surface
    # ------------------------------------------------------------------
    def _expr_stmt(self, node: ast.Expr) -> List[Stmt]:
        value = node.value
        if isinstance(value, ast.Constant):
            return []  # docstring
        if isinstance(value, ast.Call):
            call = value
            func = call.func
            if isinstance(func, ast.Attribute) and self._is_self(func.value):
                name = func.attr
                if name == "send":
                    return self._lower_send(call)
                if name == "raise_event":
                    return self._lower_raise(call)
                if name == "assert_that":
                    out, (cond, _t) = self._expr_into([], call.args[0])
                    out.append(Assert(cond, loc=self.loc(call)))
                    return out
                if name in ("halt", "log", "goto"):
                    out: List[Stmt] = []
                    for arg in call.args:
                        out, _ = self._expr_into(out, arg)
                    return out
            out, (_operand, _t) = self._expr_into([], call)
            return out
        out, _ = self._expr_into([], value)
        return out

    def _event_of(self, node: ast.expr) -> Tuple[Optional[str], Optional[ast.expr]]:
        """Recognize ``EventCls(payload?)``; returns (event name, payload)."""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            target = self._global(node.func.id)
            if isinstance(target, type) and issubclass(target, Event):
                payload = node.args[0] if node.args else None
                return node.func.id, payload
        return None, None

    def _lower_send(self, call: ast.Call) -> List[Stmt]:
        out, (target, _ttype) = self._expr_into([], call.args[0])
        if target not in self.env:
            tmp = self.temp("machine")
            out.append(Const(tmp, 0, loc=self.loc(call)))
            target = tmp
        event, payload = self._event_of(call.args[1])
        if event is not None:
            arg = None
            if payload is not None:
                out, (arg, atype) = self._expr_into(out, payload)
                if arg not in self.env:
                    arg = None  # literal payload: nothing to give up
                else:
                    self.frontend.note_event_payload(event, atype)
            out.append(Send(target, event, arg, loc=self.loc(call)))
            return out
        # Event held in a variable: give up whatever it reaches.
        out, (ev, _et) = self._expr_into(out, call.args[1])
        out.append(
            Send(target, "$dynamic", ev if ev in self.env else None, loc=self.loc(call))
        )
        return out

    def _lower_raise(self, call: ast.Call) -> List[Stmt]:
        # A raised event is handled by this same machine: ownership never
        # leaves it, so only the payload expression's lowering effects
        # remain.  Record the payload type for the handler's benefit.
        event, payload = self._event_of(call.args[0])
        out: List[Stmt] = []
        if payload is not None:
            out, (arg, atype) = self._expr_into(out, payload)
            if event is not None and arg in self.env:
                self.frontend.note_event_payload(event, atype)
        elif event is None:
            out, _ = self._expr_into(out, call.args[0])
        return out

    # ------------------------------------------------------------------
    # Expressions: returns (operand, ftype, stmts)
    # ------------------------------------------------------------------
    def expr(self, node: ast.expr) -> Tuple[str, Optional[FType], List[Stmt]]:
        loc = self.loc(node)

        if isinstance(node, ast.Constant):
            if node.value is None:
                return "null", "none", []
            if isinstance(node.value, bool):
                return ("true" if node.value else "false"), "bool", []
            if isinstance(node.value, (int, float)):
                return "0", "int", []
            return "0", "str", []

        if isinstance(node, ast.Name):
            if node.id in self.env:
                return node.id, self.env[node.id], []
            value = self._global(node.id)
            if isinstance(value, (int, float, str, bool)) or value is None:
                return "0", "int", []
            raise self.fail(node, f"unknown name {node.id!r}")

        if isinstance(node, ast.Attribute):
            if self._is_self(node.value):
                if node.attr == "payload":
                    if not self.is_handler:
                        raise self.fail(node, "self.payload outside a handler")
                    return "$payload", self.env["$payload"], []
                if node.attr == "id":
                    return "0", "machine", []
                field_ft = self.frontend.field_type(self.owner, node.attr)
                tmp = self.temp(field_ft)
                self.field_alias[tmp] = node.attr
                return tmp, field_ft, [LoadField(tmp, node.attr, loc=loc)]
            obj, _otype, stmts = self.expr(node.value)
            tmp = self.temp("object")
            stmts.append(Call(tmp, obj, f"$get_{node.attr}", [], loc=loc))
            return tmp, "object", stmts

        if isinstance(node, ast.Call):
            return self._call_expr(node)

        if isinstance(node, (ast.BinOp, ast.Compare, ast.BoolOp, ast.UnaryOp)):
            return self._scalar_or_concat(node)

        if isinstance(node, ast.Subscript):
            container, ctype, stmts = self.expr(node.value)
            if isinstance(node.slice, ast.Slice):
                for part in (node.slice.lower, node.slice.upper, node.slice.step):
                    if part is not None:
                        _o, _t, extra = self.expr(part)
                        stmts.extend(extra)
                tmp = self.temp(ctype if base_of(ctype) in CONTAINER_TYPES else "object")
                stmts.append(Call(tmp, container, "$copy", [], loc=loc))
                return tmp, self.env[tmp], stmts
            # Positional tuple access with a literal index.
            result_ft: Optional[FType] = None
            if (
                isinstance(ctype, tuple)
                and ctype[0] == "tuple"
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, int)
                and 0 <= node.slice.value < len(ctype[1])
            ):
                result_ft = ctype[1][node.slice.value]
            else:
                result_ft = elem_of(ctype)
            if result_ft is None:
                # A tracked-but-never-filled container (or a still-bottom
                # value) has no elements to return; an opaque object does.
                bottom = isinstance(ctype, tuple) or base_of(ctype) == "none"
                result_ft = "none" if bottom else "object"
            key, _ktype, key_stmts = self.expr(node.slice)
            stmts.extend(key_stmts)
            if key not in self.env:
                lit = self.temp("int")
                stmts.append(Const(lit, 0, loc=loc))
                key = lit
            tmp = self.temp(result_ft)
            stmts.append(Call(tmp, container, "$get", [key], loc=loc))
            return tmp, result_ft, stmts

        if isinstance(node, (ast.List, ast.Set, ast.Tuple)):
            kind = {"List": "list", "Set": "set", "Tuple": "tuple"}[type(node).__name__]
            stmts: List[Stmt] = []
            operands: List[Tuple[str, Optional[FType]]] = []
            for element in node.elts:
                operand, etype, extra = self.expr(element)
                stmts.extend(extra)
                operands.append((operand, etype))
            if kind == "tuple":
                ft: FType = ("tuple", tuple(t if t is not None else "object" for _o, t in operands))
            else:
                ft = (kind, join_many([t for _o, t in operands]))
            tmp = self.temp(ft)
            stmts.insert(0, New(tmp, kind, loc=loc))
            for operand, etype in operands:
                if operand in self.env and not is_scalar_ft(etype):
                    stmts.append(Call(None, tmp, "$add", [operand], loc=loc))
            return tmp, ft, stmts

        if isinstance(node, ast.Dict):
            value_fts: List[Optional[FType]] = []
            stmts = []
            pairs: List[Tuple[str, str]] = []
            for key, value in zip(node.keys, node.values):
                key_parts = self.expr(key) if key is not None else ("0", "int", [])
                val_operand, vt, val_stmts = self.expr(value)
                stmts.extend(key_parts[2])
                stmts.extend(val_stmts)
                value_fts.append(vt)
                key_operand = key_parts[0]
                if key_operand not in self.env:
                    lit = self.temp("int")
                    stmts.append(Const(lit, 0, loc=loc))
                    key_operand = lit
                if val_operand not in self.env:
                    lit = self.temp("int")
                    stmts.append(Const(lit, 0, loc=loc))
                    val_operand = lit
                pairs.append((key_operand, val_operand))
            ft = ("dict", join_many(value_fts))
            tmp = self.temp(ft)
            stmts.insert(0, New(tmp, "dict", loc=loc))
            for key_operand, val_operand in pairs:
                stmts.append(Call(None, tmp, "$set", [key_operand, val_operand], loc=loc))
            return tmp, ft, stmts

        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comprehension(node)

        if isinstance(node, ast.IfExp):
            cond, _ct, stmts = self.expr(node.test)
            a, at, a_stmts = self.expr(node.body)
            b, bt, b_stmts = self.expr(node.orelse)
            joined = ftjoin(at, bt) or "object"
            tmp = self.temp(joined)
            then_body = a_stmts + [Assign(tmp, a, loc=loc)]
            else_body = b_stmts + [Assign(tmp, b, loc=loc)]
            cond_var = self.temp("bool")
            stmts.append(Assign(cond_var, cond, loc=loc))
            stmts.append(If(cond_var, then_body, else_body, loc=loc))
            return tmp, joined, stmts

        if isinstance(node, ast.JoinedStr):
            stmts = []
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    _o, _t, extra = self.expr(value.value)
                    stmts.extend(extra)
            return "0", "str", stmts

        if isinstance(node, ast.Starred):
            return self.expr(node.value)

        raise self.fail(node, f"unsupported expression {type(node).__name__}")

    def _scalar_or_concat(self, node: ast.expr) -> Tuple[str, Optional[FType], List[Stmt]]:
        """Arithmetic is scalar — except container concatenation, where
        the result shares both operands' elements."""
        loc = self.loc(node)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left, ltype, stmts = self.expr(node.left)
            right, rtype, r_stmts = self.expr(node.right)
            stmts.extend(r_stmts)
            if base_of(ltype) in CONTAINER_TYPES or base_of(rtype) in CONTAINER_TYPES:
                kind = base_of(ltype) if base_of(ltype) in CONTAINER_TYPES else base_of(rtype)
                ft = (kind, ftjoin(elem_of(ltype), elem_of(rtype)))
                tmp = self.temp(ft)
                stmts.append(New(tmp, kind, loc=loc))
                for operand in (left, right):
                    if operand in self.env:
                        stmts.append(Call(None, tmp, "extend", [operand], loc=loc))
                return tmp, ft, stmts
            return "0", "int", stmts
        stmts = []
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                _o, _t, extra = self.expr(child)
                stmts.extend(extra)
        return "0", "int", stmts

    def _comprehension(self, node: ast.expr) -> Tuple[str, Optional[FType], List[Stmt]]:
        loc = self.loc(node)
        kind = "set" if isinstance(node, ast.SetComp) else "list"
        if len(node.generators) != 1:
            raise self.fail(node, "only single-generator comprehensions supported")
        gen = node.generators[0]
        stmts: List[Stmt] = []
        container, ctype, c_stmts = self.expr(gen.iter)
        stmts.extend(c_stmts)
        body: List[Stmt] = []
        if is_scalar_ft(ctype):
            if isinstance(gen.target, ast.Name):
                self.bind(gen.target.id, "int")
                body.append(Const(gen.target.id, 0, loc=loc))
        else:
            item_ft = elem_of(ctype) or "object"
            item = self.temp(item_ft)
            body.append(Call(item, container, "$item", [], loc=loc))
            body.extend(self._store(gen.target, item, item_ft, node))
        for condition in gen.ifs:
            _o, _t, extra = self.expr(condition)
            body.extend(extra)
        element, etype, e_stmts = self.expr(node.elt)
        body.extend(e_stmts)
        ft = (kind, etype)
        out_var = self.temp(ft)
        stmts.insert(0, New(out_var, kind, loc=loc))
        if element in self.env and not is_scalar_ft(etype):
            body.append(Call(None, out_var, "$add", [element], loc=loc))
        cond_var = self.temp("bool")
        body.append(Nondet(cond_var, loc=loc))
        stmts.append(Nondet(cond_var, loc=loc))
        stmts.append(While(cond_var, body, loc=loc))
        return out_var, ft, stmts

    # ------------------------------------------------------------------
    def _call_expr(self, node: ast.Call) -> Tuple[str, Optional[FType], List[Stmt]]:
        loc = self.loc(node)
        func = node.func

        if isinstance(func, ast.Attribute) and self._is_self(func.value):
            name = func.attr
            if name == "create_machine":
                machine_cls = node.args[0]
                if not isinstance(machine_cls, ast.Name):
                    raise self.fail(node, "create_machine needs a class name")
                stmts: List[Stmt] = []
                arg = None
                if len(node.args) > 1:
                    stmts, (arg, atype) = self._expr_into(stmts, node.args[1])
                    if arg not in self.env:
                        arg = None
                    else:
                        self.frontend.note_creation_payload(machine_cls.id, atype)
                tmp = self.temp("machine")
                stmts.append(CreateMachine(tmp, machine_cls.id, arg, loc=loc))
                return tmp, "machine", stmts
            if name == "nondet":
                tmp = self.temp("bool")
                return tmp, "bool", [Nondet(tmp, loc=loc)]
            if name == "nondet_int":
                stmts = []
                for arg_node in node.args:
                    stmts, _ = self._expr_into(stmts, arg_node)
                tmp = self.temp("int")
                stmts.append(Const(tmp, 0, loc=loc))
                return tmp, "int", stmts
            return self._method_call(node, "this", name, self.owner)

        if isinstance(func, ast.Attribute):
            obj, otype, stmts = self.expr(func.value)
            recv_class = base_of(otype)
            operand, ft, call_stmts = self._method_call(node, obj, func.attr, recv_class)
            return operand, ft, stmts + call_stmts

        if isinstance(func, ast.Name):
            fname = func.id
            if fname in SCALAR_FUNCS or fname == "range":
                stmts = []
                for arg_node in node.args:
                    stmts, _ = self._expr_into(stmts, arg_node)
                return "0", "int", stmts
            if fname in ("min", "max"):
                stmts = []
                refs: List[Tuple[str, Optional[FType]]] = []
                for arg_node in node.args:
                    stmts, (operand, otype) = self._expr_into(stmts, arg_node)
                    if not is_scalar_ft(otype) and operand in self.env:
                        refs.append((operand, otype))
                if len(node.args) == 1 and refs:
                    operand, otype = refs[0]
                    item_ft = elem_of(otype) or "object"
                    tmp = self.temp(item_ft)
                    stmts.append(Call(tmp, operand, "$item", [], loc=loc))
                    return tmp, item_ft, stmts
                return "0", "int", stmts
            if fname in ("list", "set", "tuple", "dict", "sorted", "reversed", "frozenset"):
                kind = {"sorted": "list", "reversed": "list", "frozenset": "set"}.get(
                    fname, fname
                )
                stmts = []
                source_ft: Optional[FType] = None
                source = None
                if node.args:
                    stmts, (source, source_ft) = self._expr_into(stmts, node.args[0])
                ft = (kind, elem_of(source_ft))
                tmp = self.temp(ft)
                stmts.insert(0, New(tmp, kind, loc=loc))
                if source is not None and source in self.env and not is_scalar_ft(source_ft):
                    stmts.append(
                        Call(None, tmp, "extend" if kind == "list" else "$add", [source], loc=loc)
                    )
                return tmp, ft, stmts
            if fname == "deepcopy":
                stmts = []
                src_ft: Optional[FType] = "object"
                for arg_node in node.args:
                    stmts, (_operand, src_ft) = self._expr_into(stmts, arg_node)
                tmp = self.temp("object")
                stmts.append(External(tmp, loc=loc))
                # A deep copy is disjoint heap with the same shape.
                self.env[tmp] = src_ft if src_ft is not None else "object"
                return tmp, self.env[tmp], stmts
            if fname in self.frontend.helper_names:
                stmts = []
                args = []
                for arg_node in node.args:
                    stmts, (operand, _at) = self._expr_into(stmts, arg_node)
                    if operand not in self.env:
                        lit = self.temp("int")
                        stmts.append(Const(lit, 0, loc=loc))
                        operand = lit
                    args.append(operand)
                tmp = self.temp(fname)
                stmts.append(New(tmp, fname, loc=loc))
                if self.frontend.helper_has_init(fname):
                    stmts.append(Call(None, tmp, "__init__", args, loc=loc))
                return tmp, fname, stmts
            event, payload = self._event_of(node)
            if event is not None:
                stmts = []
                tmp = self.temp("$event")
                stmts.append(New(tmp, "$event", loc=loc))
                if payload is not None:
                    stmts, (operand, atype) = self._expr_into(stmts, payload)
                    if operand in self.env:
                        stmts.append(Call(None, tmp, "$add", [operand], loc=loc))
                        self.frontend.note_event_payload(event, atype)
                return tmp, "$event", stmts
            raise self.fail(node, f"unsupported function {fname!r}")

        raise self.fail(node, f"unsupported call form {ast.dump(func)[:60]}")

    _CONTAINER_GETTERS = {"pop", "$get", "$item", "get"}
    _CONTAINER_SAME = {"copy", "$copy"}
    _CONTAINER_ADDERS = {"append": 0, "add": 0, "insert": 1, "$add": 0}

    def _method_call(
        self, node: ast.Call, recv: str, method: str, recv_class: str
    ) -> Tuple[str, Optional[FType], List[Stmt]]:
        loc = self.loc(node)
        stmts: List[Stmt] = []
        args: List[str] = []
        arg_fts: List[Optional[FType]] = []
        for arg_node in node.args:
            stmts, (operand, atype) = self._expr_into(stmts, arg_node)
            if operand not in self.env:
                lit = self.temp("int")
                stmts.append(Const(lit, 0, loc=loc))
                operand = lit
            args.append(operand)
            arg_fts.append(atype)
        for keyword in node.keywords:
            stmts, (operand, atype) = self._expr_into(stmts, keyword.value)
            if operand in self.env:
                args.append(operand)
                arg_fts.append(atype)

        recv_ft = self.env.get(recv) if recv != "this" else self.owner
        ret_ft: Optional[FType] = None
        if base_of(recv_ft) in CONTAINER_TYPES or base_of(recv_ft) in ("$event", "$container"):
            if method in self._CONTAINER_ADDERS:
                index = self._CONTAINER_ADDERS[method]
                if index < len(arg_fts):
                    self._refine_container(recv, arg_fts[index])
            elif method in ("extend", "update"):
                if arg_fts and arg_fts[0] is not None:
                    self._refine_container(recv, elem_of(arg_fts[0]))
            if method in self._CONTAINER_GETTERS:
                ret_ft = elem_of(self.env.get(recv)) or "none"
            elif method in self._CONTAINER_SAME:
                ret_ft = self.env.get(recv)
            elif method in ("keys", "values", "items"):
                ret_ft = ("list", elem_of(self.env.get(recv)))
        else:
            ret_ft = self.frontend.return_type(recv_class, method)
            self.frontend.note_arg_types(recv_class, method, arg_fts)

        tmp = self.temp(ret_ft or "object")
        stmts.append(Call(tmp, recv, method, args, loc=loc))
        return tmp, ret_ft or "object", stmts

    @staticmethod
    def _is_self(node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id == "self"


def _target_as_expr(target: ast.expr) -> ast.expr:
    """Re-interpret an assignment target as a load expression."""
    clone = ast.parse(ast.unparse(target), mode="eval").body
    return ast.copy_location(clone, target)


# ---------------------------------------------------------------------------
# The frontend proper
# ---------------------------------------------------------------------------
class PythonFrontend:
    """Lowers a set of ``Machine`` subclasses (plus helper classes) to a
    :class:`Program` ready for :func:`repro.analysis.analyze_program`."""

    def __init__(
        self,
        machine_classes: Sequence[Type[Machine]],
        helpers: Sequence[type] = (),
        name: str = "program",
    ) -> None:
        self.machine_classes = list(machine_classes)
        self.helpers = list(helpers)
        self.helper_names: Set[str] = {h.__name__ for h in helpers}
        self.name = name
        self._field_types: Dict[str, Dict[str, FType]] = {}
        self._event_payload_types: Dict[str, FType] = {}
        self._creation_payload_types: Dict[str, FType] = {}
        self._return_types: Dict[Tuple[str, str], FType] = {}
        self._param_types: Dict[Tuple[str, str, int], FType] = {}
        # The previous lowering pass's view.  Notes accumulate into the
        # current tables; lookups prefer the current pass and fall back to
        # the previous one.  Recomputing (rather than joining across
        # passes) lets types *narrow* as payload information propagates —
        # a pass-1 'object' must not pollute the fixpoint.
        self._prev_field_types: Dict[str, Dict[str, FType]] = {}
        self._prev_event_payload_types: Dict[str, FType] = {}
        self._prev_creation_payload_types: Dict[str, FType] = {}
        self._prev_return_types: Dict[Tuple[str, str], FType] = {}
        self._prev_param_types: Dict[Tuple[str, str, int], FType] = {}

    # -- shared state consulted by lowerers ------------------------------
    def note_field(self, owner: str, field: str, ft: Optional[FType]) -> None:
        if ft is None:
            ft = "object"
        fields = self._field_types.setdefault(owner, {})
        fields[field] = ftjoin(fields.get(field), ft) or ft

    def field_type(self, owner: str, field: str) -> FType:
        current = self._field_types.get(owner, {}).get(field)
        if current is not None:
            return current
        return self._prev_field_types.get(owner, {}).get(field, "none")

    def note_event_payload(self, event: str, ft: Optional[FType]) -> None:
        if ft is None:
            ft = "object"
        self._event_payload_types[event] = (
            ftjoin(self._event_payload_types.get(event), ft) or ft
        )

    def note_creation_payload(self, machine: str, ft: Optional[FType]) -> None:
        if ft is None:
            ft = "object"
        self._creation_payload_types[machine] = (
            ftjoin(self._creation_payload_types.get(machine), ft) or ft
        )

    def note_return(self, owner: str, method: str, ft: Optional[FType]) -> None:
        if ft is None:
            ft = "object"
        key = (owner, method)
        self._return_types[key] = ftjoin(self._return_types.get(key), ft) or ft

    def return_type(self, owner: str, method: str) -> Optional[FType]:
        current = self._return_types.get((owner, method))
        if current is not None:
            return current
        return self._prev_return_types.get((owner, method))

    def note_arg_types(self, owner: str, method: str, fts) -> None:
        for index, ft in enumerate(fts):
            if ft is None:
                ft = "object"
            key = (owner, method, index)
            self._param_types[key] = ftjoin(self._param_types.get(key), ft) or ft

    def param_type(self, owner: str, method: str, index: int) -> Optional[FType]:
        current = self._param_types.get((owner, method, index))
        if current is not None:
            return current
        return self._prev_param_types.get((owner, method, index))

    def helper_has_init(self, name: str) -> bool:
        for helper in self.helpers:
            if helper.__name__ == name:
                return "__init__" in helper.__dict__
        return False

    # --------------------------------------------------------------------
    def build(self) -> Program:
        """Iterated lowering: each pass refines field, payload, parameter
        and return types discovered by the previous one; types flow across
        machine boundaries (sender -> handler -> field -> next sender), so
        the chain can take several passes to stabilize."""
        state = None
        program = self._lower_all()
        for _round in range(6):
            new_state = repr(
                (
                    sorted(self._field_types.items()),
                    sorted(self._event_payload_types.items()),
                    sorted(self._creation_payload_types.items()),
                    sorted(self._return_types.items()),
                    sorted(self._param_types.items()),
                )
            )
            if new_state == state:
                break
            state = new_state
            program = self._lower_all()
        return program

    def _lower_all(self) -> Program:
        self._prev_field_types = self._field_types
        self._prev_event_payload_types = self._event_payload_types
        self._prev_creation_payload_types = self._creation_payload_types
        self._prev_return_types = self._return_types
        self._prev_param_types = self._param_types
        self._field_types = {}
        self._event_payload_types = {}
        self._creation_payload_types = {}
        self._return_types = {}
        self._param_types = {}
        program = Program(name=self.name)
        program.classes.update(builtin_classes())
        tuple_summary = program.classes["tuple"].taint_summary
        program.classes["$event"] = ClassDecl(
            name="$event", taint_summary=dict(tuple_summary or {})
        )

        for helper in self.helpers:
            program.classes[helper.__name__] = self._lower_helper(helper)

        for machine_cls in self.machine_classes:
            decl, klass = self._lower_machine(machine_cls)
            program.machines[decl.name] = decl
            program.classes[klass.name] = klass
        return program

    # --------------------------------------------------------------------
    def _function_def(self, func: Any) -> ast.FunctionDef:
        source = textwrap.dedent(inspect.getsource(func))
        module = ast.parse(source)
        node = module.body[0]
        assert isinstance(node, ast.FunctionDef)
        return node

    def _lower_helper(self, helper: type) -> ClassDecl:
        name = helper.__name__
        methods: Dict[str, MethodDecl] = {}
        for method_name, func in inspect.getmembers(helper, inspect.isfunction):
            if method_name.startswith("__") and method_name != "__init__":
                continue
            lowerer = _Lowerer(
                self, name, self._function_def(func), func.__globals__,
                is_handler=False,
            )
            methods[method_name] = lowerer.lower()
        fields = [
            VarDecl(field, _vardecl_type(ft))
            for field, ft in sorted(self._field_types.get(name, {}).items())
        ]
        klass = ClassDecl(name=name, fields=fields, methods=methods)
        self._add_accessors(klass)
        return klass

    def _add_accessors(self, klass: ClassDecl) -> None:
        """Synthesize ``$get_f``/``$set_f`` so machine code can read/write
        helper fields precisely (the paper's language only reaches other
        objects' members through method calls)."""
        for field in klass.fields:
            getter = f"$get_{field.name}"
            setter = f"$set_{field.name}"
            if getter not in klass.methods:
                klass.methods[getter] = MethodDecl(
                    name=getter,
                    params=[],
                    locals=[VarDecl("$r", field.type)],
                    body=[LoadField("$r", field.name), Return("$r")],
                    ret_type=field.type,
                )
            if setter not in klass.methods:
                klass.methods[setter] = MethodDecl(
                    name=setter,
                    params=[VarDecl("$v", field.type)],
                    locals=[],
                    body=[StoreField(field.name, "$v")],
                    ret_type="void",
                )

    def _lower_machine(self, machine_cls: Type[Machine]) -> Tuple[MachineDecl, ClassDecl]:
        name = machine_cls.__name__
        handler_methods: Set[str] = set()
        for info in machine_cls._state_infos.values():
            if info.entry:
                handler_methods.add(info.entry)
            if info.exit:
                handler_methods.add(info.exit)
            handler_methods.update(info.actions.values())

        methods: Dict[str, MethodDecl] = {}
        for method_name, func in inspect.getmembers(machine_cls, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if self._is_runtime_method(func):
                continue
            payload_type = self._payload_type_for(machine_cls, method_name)
            lowerer = _Lowerer(
                self,
                name,
                self._function_def(func),
                func.__globals__,
                is_handler=method_name in handler_methods,
                payload_type=payload_type,
            )
            methods[method_name] = lowerer.lower()

        methods["$noop"] = MethodDecl(
            name="$noop", params=[VarDecl("$payload", "object")], locals=[], body=[]
        )

        fields = [
            VarDecl(field, _vardecl_type(ft))
            for field, ft in sorted(self._field_types.get(name, {}).items())
        ]
        klass = ClassDecl(name=name, fields=fields, methods=methods)

        handlers: List[StateHandler] = []
        for state_name, info in machine_cls._state_infos.items():
            for event_cls, target in info.transitions.items():
                target_info = machine_cls._state_infos[target]
                handlers.append(
                    StateHandler(
                        state=state_name,
                        event=event_cls.__name__,
                        method=target_info.entry or "$noop",
                        next_state=target,
                    )
                )
            for event_cls, action in info.actions.items():
                handlers.append(
                    StateHandler(
                        state=state_name,
                        event=event_cls.__name__,
                        method=action,
                        next_state=state_name,
                    )
                )

        initial_state = machine_cls._initial_state
        initial_info = machine_cls._state_infos[initial_state]
        decl = MachineDecl(
            name=name,
            class_name=name,
            initial=initial_info.entry or "$noop",
            handlers=handlers,
            initial_state=initial_state,
        )
        return decl, klass

    def _is_runtime_method(self, func: Any) -> bool:
        qualname = getattr(func, "__qualname__", "")
        return qualname.startswith("Machine.")

    def _payload_type_for(
        self, machine_cls: Type[Machine], method_name: str
    ) -> Optional[FType]:
        """Payload ftype for a handler: join of the payload types of every
        event the handler is bound to (discovered in pass one)."""
        joined: Optional[FType] = None
        for info in machine_cls._state_infos.values():
            bound_events: List[str] = []
            if info.entry == method_name:
                for other in machine_cls._state_infos.values():
                    for event_cls, target in other.transitions.items():
                        if target == info.name:
                            bound_events.append(event_cls.__name__)
            for event_cls, action in info.actions.items():
                if action == method_name:
                    bound_events.append(event_cls.__name__)
            for event in bound_events:
                ptype = self._event_payload_types.get(
                    event, self._prev_event_payload_types.get(event)
                )
                if ptype is not None:
                    joined = ftjoin(joined, ptype)
        if machine_cls._state_infos[machine_cls._initial_state].entry == method_name:
            ctype = self._creation_payload_types.get(
                machine_cls.__name__,
                self._prev_creation_payload_types.get(machine_cls.__name__),
            )
            if ctype is not None:
                joined = ftjoin(joined, ctype)
        return joined


def lower_machines(
    machine_classes: Sequence[Type[Machine]],
    helpers: Sequence[type] = (),
    name: str = "program",
) -> Program:
    """Lower Python machines to the analyzable core-language IR."""
    return PythonFrontend(machine_classes, helpers, name).build()


def analyze_machines(
    machine_classes: Sequence[Type[Machine]],
    helpers: Sequence[type] = (),
    name: str = "program",
    xsa: bool = True,
    readonly: bool = False,
):
    """One-call static race analysis of Python machines (lower + analyze)."""
    from .engine import analyze_program

    program = lower_machines(machine_classes, helpers, name)
    return analyze_program(program, xsa=xsa, readonly=readonly)
