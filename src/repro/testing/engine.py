"""The testing engine: repeated controlled executions + statistics.

Drives a :class:`BugFindingRuntime` for many iterations and aggregates the
metrics Table 2 reports: number of threads (#T), scheduling points (#SP),
schedules per second (#Sch/sec), whether a bug was found, and — for the
random scheduler, which keeps exploring after a bug — the percentage of
buggy schedules (%Buggy).

The iteration loop itself lives in :func:`drive`, so that a single-strategy
:class:`TestingEngine` run and every worker of a
:class:`~repro.testing.portfolio.PortfolioEngine` campaign execute the exact
same code — a 1-worker portfolio is, by construction, the engine.

This is also where ``workers="auto"`` (the default back-end everywhere
above the raw runtime) is made *total*: the runtime resolves "auto" per
main class (inline when it compiles, pool otherwise), and :func:`drive`
catches the one case resolution cannot see — a machine class created
mid-campaign that the coroutine compiler rejects — by restarting the
campaign on the pooled backend from a :meth:`~repro.testing.strategies
.SchedulingStrategy.reset` strategy, so the traces are bit-identical to
an explicit ``workers="pool"`` run with the same seed.  The back-end a
campaign actually ran on is recorded as
:attr:`TestReport.effective_backend`.

The declarative front door over this module is
:class:`repro.testing.config.TestConfig` / :class:`~repro.testing.config
.Campaign`; :class:`TestingEngine` is kept as a thin shim over it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Type, Union

from ..core.continuations import InlineCompileError
from ..core.machine import Machine
from ..errors import BugReport
from .coverage import CoverageMap
from .faults import FaultConfig, outcome_name
from .reduction import DEFAULT_STATE_CACHE_SIZE, ReductionEngine, normalize_reduction
from .runtime import BugFindingRuntime, ExecutionResult
from .strategies import ReplayStrategy, SchedulingStrategy
from .telemetry import EventLog, TelemetryStats
from .trace import ScheduleTrace


@dataclass
class TestReport:
    """Aggregate statistics over all explored schedules.

    Reports are *mergeable* (:meth:`merge` / :meth:`merged`): a portfolio
    campaign folds its workers' sub-reports into one campaign report whose
    counters are sums, whose ``max_machines`` is the max, and whose
    ``elapsed`` is wall-clock time (parallel work does not sum).  They are
    also *picklable* once :meth:`detached` has replaced live machine /
    exception references inside bug reports with plain strings, so workers
    can hand them back across process boundaries.

    (``__test__`` keeps pytest from collecting this as a test class.)
    """

    __test__ = False

    strategy: str
    iterations: int = 0
    buggy_iterations: int = 0
    depth_bound_hits: int = 0
    # Iterations canceled by the per-iteration wall-clock watchdog
    # (status "watchdog"): the campaign moved on instead of wedging.
    watchdog_hits: int = 0
    total_steps: int = 0
    total_scheduling_points: int = 0
    max_machines: int = 0
    elapsed: float = 0.0
    first_bug: Optional[BugReport] = None
    first_bug_iteration: int = -1
    bugs: List[BugReport] = field(default_factory=list)
    exhausted: bool = False
    timed_out: bool = False
    # True when the campaign was cut short by SIGINT and this report
    # covers only the work completed before the interrupt (the portfolio
    # flushes a final checkpoint and returns the partial merge).
    interrupted: bool = False
    sub_reports: List["TestReport"] = field(default_factory=list)
    # The worker back-end the campaign actually ran on ("inline", "pool",
    # "spawn"), resolved from workers="auto" — how the inline-first
    # fallback stays honest in A/B comparisons.  Merged campaign reports
    # show "mixed" when sub-reports disagree.
    effective_backend: Optional[str] = None
    # Observability (PR 8): injected-fault totals by outcome name,
    # strategy-consulted scheduling decisions, activity coverage and
    # execution-shape telemetry.  Coverage is attached only when the
    # campaign asked for it; telemetry is always collected (its cost is
    # one perf_counter pair + histogram bump per iteration).
    faults_injected: int = 0
    fault_kinds: dict = field(default_factory=dict)
    consulted_decisions: int = 0
    coverage: Optional[CoverageMap] = None
    telemetry: Optional[TelemetryStats] = None
    # Schedule-space reduction (repro.testing.reduction): distinct program
    # states fingerprinted by the campaign's state cache, and schedules
    # (or whole DFS subtrees) the reduction machinery cut off as
    # redundant.  Both zero when the campaign ran with reduction="none".
    distinct_states: int = 0
    schedules_pruned: int = 0

    @property
    def bug_found(self) -> bool:
        return self.buggy_iterations > 0

    @property
    def schedules_per_second(self) -> float:
        return self.iterations / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def mean_scheduling_points(self) -> float:
        return (
            self.total_scheduling_points / self.iterations if self.iterations else 0.0
        )

    @property
    def percent_buggy(self) -> float:
        return 100.0 * self.buggy_iterations / self.iterations if self.iterations else 0.0

    @property
    def redundancy_ratio(self) -> float:
        """Fraction of the explored-or-cut schedule space the reduction
        machinery proved redundant: pruned schedules over pruned plus
        executed.  0.0 when reduction was off (nothing was pruned)."""
        total = self.iterations + self.schedules_pruned
        return self.schedules_pruned / total if total else 0.0

    @property
    def distinct_bugs(self) -> int:
        """Number of distinct bugs among ``bugs``, keyed by schedule-trace
        fingerprint (two different interleavings reaching the same
        assertion count separately — they *are* different schedules).
        Traceless bugs cannot be deduplicated and each count as
        distinct."""
        fingerprints = set()
        traceless = 0
        for bug in self.bugs:
            if bug.trace is None:
                traceless += 1
            else:
                fingerprints.add(bug.trace.fingerprint())
        return len(fingerprints) + traceless

    def summary(self) -> str:
        parts = [
            f"{self.strategy}: {self.iterations} schedules in {self.elapsed:.2f}s "
            f"({self.schedules_per_second:.1f}/s), #SP={self.mean_scheduling_points:.0f}, "
            f"buggy={self.buggy_iterations} ({self.percent_buggy:.0f}%)"
        ]
        if self.bugs:
            parts.append(f", distinct={self.distinct_bugs}")
        if self.watchdog_hits:
            parts.append(f", watchdog={self.watchdog_hits}")
        if self.distinct_states or self.schedules_pruned:
            parts.append(
                f", states={self.distinct_states}, "
                f"pruned={self.schedules_pruned} "
                f"({100.0 * self.redundancy_ratio:.0f}% redundant)"
            )
        if self.faults_injected:
            parts.append(f", faults={self.faults_injected}")
        if self.effective_backend is not None:
            parts.append(f" [{self.effective_backend}]")
        if self.first_bug:
            parts.append(f", first bug: {self.first_bug}")
        return "".join(parts)

    # -- portfolio plumbing --------------------------------------------
    def merge(self, other: "TestReport") -> "TestReport":
        """Fold ``other`` into this report (in place) and return self.

        Counters sum; ``max_machines`` takes the max; ``elapsed`` takes the
        max because merged reports describe *concurrent* work — aggregate
        schedules/sec is total iterations over wall-clock time.  The first
        bug of the merge is the existing one if any (fold order defines
        precedence), otherwise ``other``'s.

        Bugs are *deduplicated* across the merge by schedule-trace
        fingerprint: two portfolio workers finding the same interleaving
        (identical decision sequences, e.g. two seeded DFS shards
        overlapping) contribute it once.  Bugs without traces cannot be
        identified and are always kept.
        """
        self.iterations += other.iterations
        self.buggy_iterations += other.buggy_iterations
        self.depth_bound_hits += other.depth_bound_hits
        self.watchdog_hits += other.watchdog_hits
        self.total_steps += other.total_steps
        self.total_scheduling_points += other.total_scheduling_points
        self.max_machines = max(self.max_machines, other.max_machines)
        self.elapsed = max(self.elapsed, other.elapsed)
        self.faults_injected += other.faults_injected
        for kind, count in other.fault_kinds.items():
            self.fault_kinds[kind] = self.fault_kinds.get(kind, 0) + count
        self.consulted_decisions += other.consulted_decisions
        # Distinct-state counts sum across shards: each shard's cache is
        # private, so the merged figure over-counts states two shards both
        # visited — an upper bound, like summing coverage before dedup.
        self.distinct_states += other.distinct_states
        self.schedules_pruned += other.schedules_pruned
        if other.coverage is not None:
            if self.coverage is None:
                self.coverage = other.coverage.copy()
            else:
                self.coverage.merge(other.coverage)
        if other.telemetry is not None:
            if self.telemetry is None:
                self.telemetry = other.telemetry.copy()
            else:
                self.telemetry.merge(other.telemetry)
        seen = {
            bug.trace.fingerprint()
            for bug in self.bugs
            if bug.trace is not None
        }
        for bug in other.bugs:
            if bug.trace is not None:
                key = bug.trace.fingerprint()
                if key in seen:
                    continue
                seen.add(key)
            self.bugs.append(bug)
        if self.first_bug is None and other.first_bug is not None:
            self.first_bug = other.first_bug
            self.first_bug_iteration = other.first_bug_iteration
        self.timed_out = self.timed_out or other.timed_out
        self.interrupted = self.interrupted or other.interrupted
        if other.effective_backend is not None:
            if self.effective_backend is None:
                self.effective_backend = other.effective_backend
            elif self.effective_backend != other.effective_backend:
                self.effective_backend = "mixed"
        return self

    @classmethod
    def merged(
        cls, reports: Sequence["TestReport"], strategy: str = "portfolio"
    ) -> "TestReport":
        """Merge ``reports`` into a fresh campaign report (sub-reports kept)."""
        campaign = cls(strategy=strategy)
        for report in reports:
            campaign.merge(report)
        campaign.exhausted = bool(reports) and all(r.exhausted for r in reports)
        campaign.sub_reports = list(reports)
        return campaign

    def detached(self) -> "TestReport":
        """A picklable copy: bug reports lose their live machine/exception
        references (kept as strings), traces are preserved for replay."""
        clone = TestReport(
            strategy=self.strategy,
            iterations=self.iterations,
            buggy_iterations=self.buggy_iterations,
            depth_bound_hits=self.depth_bound_hits,
            watchdog_hits=self.watchdog_hits,
            total_steps=self.total_steps,
            total_scheduling_points=self.total_scheduling_points,
            max_machines=self.max_machines,
            elapsed=self.elapsed,
            first_bug_iteration=self.first_bug_iteration,
            exhausted=self.exhausted,
            timed_out=self.timed_out,
            interrupted=self.interrupted,
            effective_backend=self.effective_backend,
            faults_injected=self.faults_injected,
            consulted_decisions=self.consulted_decisions,
            distinct_states=self.distinct_states,
            schedules_pruned=self.schedules_pruned,
        )
        clone.fault_kinds = dict(self.fault_kinds)
        if self.coverage is not None:
            clone.coverage = self.coverage.copy()
        if self.telemetry is not None:
            clone.telemetry = self.telemetry.copy()
        clone.bugs = [bug.detached() for bug in self.bugs]
        if self.first_bug is not None:
            clone.first_bug = self.first_bug.detached()
        clone.sub_reports = [sub.detached() for sub in self.sub_reports]
        return clone


def drive(
    main_cls: Type[Machine],
    payload: Any,
    strategy: SchedulingStrategy,
    *,
    max_iterations: int = 10_000,
    time_limit: Optional[float] = 300.0,
    max_steps: int = 20_000,
    stop_on_first_bug: bool = True,
    livelock_as_bug: bool = False,
    record_traces: bool = True,
    runtime_factory: Optional[Callable[..., BugFindingRuntime]] = None,
    deadline: Optional[float] = None,
    stop_check: Optional[Callable[[], bool]] = None,
    workers: str = "auto",
    monitors: Sequence[type] = (),
    max_hot_steps: int = 1000,
    faults: Optional[FaultConfig] = None,
    iteration_timeout: Optional[float] = None,
    coverage: bool = False,
    events: Optional[EventLog] = None,
    reduction: str = "none",
    state_cache_size: int = DEFAULT_STATE_CACHE_SIZE,
) -> TestReport:
    """The iteration loop shared by :class:`TestingEngine` and portfolio
    workers: run up to ``max_iterations`` schedules under ``strategy``.

    One runtime object is constructed for the whole campaign and reused
    across iterations (``BugFindingRuntime.reset`` runs at the top of
    every ``execute``), so per-iteration cost is the schedule itself, not
    runtime construction.  ``workers`` selects the worker back-end:
    ``"auto"`` (the default) runs on the single-thread inline
    continuation runtime when the program compiles for it and on pooled
    threads otherwise; the concrete modes (``"inline"``, ``"pool"``,
    ``"spawn"``) pin a back-end.  Under ``"auto"``, a machine class
    created mid-campaign that the coroutine compiler rejects triggers a
    transparent restart of the whole campaign on the pooled backend (the
    strategy is :meth:`~repro.testing.strategies.SchedulingStrategy
    .reset`, so the restarted campaign's traces are bit-identical to an
    explicit ``workers="pool"`` run; ``report.elapsed`` then covers only
    the pooled rerun).  The back-end the campaign actually ran on is
    reported as ``report.effective_backend``.

    ``deadline`` is an absolute ``time.monotonic()`` timestamp; when absent
    it is derived from ``time_limit``.  The deadline is enforced both
    between iterations and *inside* them (propagated to the runtime), so a
    single long schedule cannot overshoot the budget.  ``stop_check`` is
    polled between iterations and inside them — the portfolio's
    first-bug-wins cancellation.

    ``monitors`` attaches specification monitor classes
    (:mod:`repro.testing.monitors`) to every execution; ``max_hot_steps``
    is the liveness temperature threshold (see
    :class:`~repro.testing.runtime.BugFindingRuntime`).

    ``faults`` arms deterministic fault injection
    (:class:`~repro.testing.faults.FaultConfig`); ``iteration_timeout``
    arms the per-iteration wall-clock watchdog — a stuck execution is
    canceled with status ``"watchdog"``, counted in
    ``report.watchdog_hits``, and the campaign continues.

    ``coverage`` attaches a fresh
    :class:`~repro.testing.coverage.CoverageMap` to the campaign's
    runtime and reports it as ``report.coverage`` (under the auto→pool
    restart the map is rebuilt with the campaign, so it stays
    bit-identical to an explicit pooled run).  ``events`` streams
    shard-level progress to a :class:`~repro.testing.telemetry.EventLog`;
    execution-shape telemetry (``report.telemetry``) is always on.

    ``reduction`` selects the schedule-space reduction mode
    (:data:`repro.testing.reduction.REDUCTION_MODES`): ``"dpor"`` arms
    dynamic partial-order reduction on the DFS-family strategies,
    ``"dpor+state-cache"`` adds fingerprint-based state caching (bounded
    at ``state_cache_size`` entries) for every strategy, and
    ``"dpor+state-cache+clauses"`` additionally learns prefix clauses
    from cache hits.  A fresh :class:`~repro.testing.reduction
    .ReductionEngine` is built per campaign loop entry, so the auto→pool
    restart starts from an empty cache and stays bit-identical to an
    explicit pooled run; reduction stats land in
    ``report.distinct_states`` / ``report.schedules_pruned``.
    """
    if deadline is None and time_limit is not None:
        deadline = time.monotonic() + time_limit
    reduction = normalize_reduction(reduction)
    try:
        return _campaign_loop(
            main_cls, payload, strategy,
            max_iterations=max_iterations, max_steps=max_steps,
            stop_on_first_bug=stop_on_first_bug,
            livelock_as_bug=livelock_as_bug, record_traces=record_traces,
            runtime_factory=runtime_factory, deadline=deadline,
            stop_check=stop_check, workers=workers, monitors=monitors,
            max_hot_steps=max_hot_steps, faults=faults,
            iteration_timeout=iteration_timeout,
            coverage=coverage, events=events,
            reduction=reduction, state_cache_size=state_cache_size,
        )
    except InlineCompileError:
        if workers != "auto":
            raise
        # The main class compiled (else "auto" would have resolved to
        # pool before the strategy was ever consulted) but a machine
        # class created mid-campaign did not.  Restart bit-identically on
        # the pooled backend: reset() returns the strategy to its
        # post-construction decision sequence.
        strategy.reset()
        return _campaign_loop(
            main_cls, payload, strategy,
            max_iterations=max_iterations, max_steps=max_steps,
            stop_on_first_bug=stop_on_first_bug,
            livelock_as_bug=livelock_as_bug, record_traces=record_traces,
            runtime_factory=runtime_factory, deadline=deadline,
            stop_check=stop_check, workers="pool", monitors=monitors,
            max_hot_steps=max_hot_steps, faults=faults,
            iteration_timeout=iteration_timeout,
            coverage=coverage, events=events,
            reduction=reduction, state_cache_size=state_cache_size,
        )


def _campaign_loop(
    main_cls: Type[Machine],
    payload: Any,
    strategy: SchedulingStrategy,
    *,
    max_iterations: int,
    max_steps: int,
    stop_on_first_bug: bool,
    livelock_as_bug: bool,
    record_traces: bool,
    runtime_factory: Optional[Callable[..., BugFindingRuntime]],
    deadline: Optional[float],
    stop_check: Optional[Callable[[], bool]],
    workers: str,
    monitors: Sequence[type],
    max_hot_steps: int,
    faults: Optional[FaultConfig],
    iteration_timeout: Optional[float],
    coverage: bool,
    events: Optional[EventLog],
    reduction: str,
    state_cache_size: int,
) -> TestReport:
    factory = runtime_factory or BugFindingRuntime
    report = TestReport(strategy=strategy.name)
    # A fresh map per loop entry: the auto→pool restart re-enters here
    # and must not double-count the aborted inline attempt's coverage.
    cov = CoverageMap() if coverage else None
    # Likewise a fresh reduction engine: the restarted pooled campaign
    # must make every caching decision from scratch (same schedule, empty
    # cache) to stay bit-identical to an explicit workers="pool" run.
    red = (
        ReductionEngine(reduction, state_cache_size)
        if reduction != "none"
        else None
    )
    # Always (re)attached, so a strategy reused across drive() calls never
    # keeps a stale engine from a previous campaign.
    strategy.attach_reduction(red)
    stats = TelemetryStats()
    start = time.perf_counter()

    def build_runtime() -> BugFindingRuntime:
        kwargs = dict(
            strategy=strategy,
            max_steps=max_steps,
            record_trace=record_traces,
            livelock_as_bug=livelock_as_bug,
            deadline=deadline,
            stop_check=stop_check,
            workers=workers,
            monitors=monitors,
            max_hot_steps=max_hot_steps,
            faults=faults,
            iteration_timeout=iteration_timeout,
        )
        if cov is not None:
            # Only added when collection is on, so custom runtime
            # factories without the parameter keep working unchanged.
            kwargs["coverage"] = cov
        if red is not None:
            kwargs["reduction"] = red
        return factory(**kwargs)

    runtime = build_runtime()
    # Custom runtime factories may resolve "auto" themselves (ChessRuntime
    # collapses it to pool); ask the runtime what will actually run.
    resolve = getattr(runtime, "resolve_workers", None)
    report.effective_backend = (
        resolve(main_cls) if resolve is not None else workers
    )
    if events is not None:
        events.emit(
            "shard_start",
            strategy=strategy.name,
            backend=report.effective_backend,
            max_iterations=max_iterations,
        )
    last_progress = start
    try:
        for iteration in range(max_iterations):
            if deadline is not None and time.monotonic() >= deadline:
                report.timed_out = True
                break
            if stop_check is not None and stop_check():
                break
            if not strategy.prepare_iteration():
                report.exhausted = True
                break
            if runtime.tainted:
                # A straggler worker thread from the previous iteration
                # never unwound; that runtime (and its thread) is written
                # off so the straggler cannot corrupt later iterations.
                runtime = build_runtime()
            iter_start = time.perf_counter()
            result = runtime.execute(main_cls, payload)
            iter_end = time.perf_counter()
            report.max_machines = max(report.max_machines, runtime.machine_count)
            report.total_steps += result.steps
            report.total_scheduling_points += result.scheduling_points
            report.consulted_decisions += result.consulted
            if result.faults_injected:
                report.faults_injected += result.faults_injected
                kinds = report.fault_kinds
                for code, count in enumerate(result.fault_kinds):
                    if count:
                        name = outcome_name(code)
                        kinds[name] = kinds.get(name, 0) + count
            if result.status in ("time-bound", "stopped"):
                # Cut off mid-schedule: count the work, not the schedule.
                report.timed_out = report.timed_out or result.status == "time-bound"
                break
            report.iterations += 1
            stats.record_iteration(
                steps=result.steps,
                scheduling_points=result.scheduling_points,
                wall_seconds=iter_end - iter_start,
                since_start=iter_end - start,
                consulted=result.consulted,
                fault_kinds=(
                    {
                        outcome_name(code): count
                        for code, count in enumerate(result.fault_kinds)
                        if count
                    }
                    if result.faults_injected
                    else None
                ),
            )
            if result.status == "depth-bound":
                report.depth_bound_hits += 1
            elif result.status == "watchdog":
                # The per-iteration watchdog canceled a stuck execution;
                # count it and keep campaigning — unlike "time-bound",
                # the campaign budget is not exhausted.
                report.watchdog_hits += 1
                if events is not None:
                    events.emit("watchdog_hit", iteration=iteration)
            if events is not None and iter_end - last_progress >= 1.0:
                last_progress = iter_end
                events.emit(
                    "progress",
                    iterations=report.iterations,
                    buggy=report.buggy_iterations,
                    steps=report.total_steps,
                )
            if result.buggy:
                assert result.bug is not None
                result.bug.iteration = iteration
                report.buggy_iterations += 1
                report.bugs.append(result.bug)
                if report.first_bug is None:
                    report.first_bug = result.bug
                    report.first_bug_iteration = iteration
                if events is not None:
                    events.emit(
                        "bug_found",
                        iteration=iteration,
                        kind=result.bug.kind,
                        message=str(result.bug.message),
                    )
                if stop_on_first_bug:
                    break
    finally:
        runtime.close()
    report.elapsed = time.perf_counter() - start
    report.coverage = cov
    report.telemetry = stats
    if red is not None:
        report.distinct_states = red.distinct_states
        report.schedules_pruned = red.schedules_pruned
    if events is not None:
        extra = {}
        if red is not None:
            extra = dict(
                distinct_states=red.distinct_states,
                schedules_pruned=red.schedules_pruned,
            )
        events.emit(
            "shard_end",
            iterations=report.iterations,
            buggy=report.buggy_iterations,
            elapsed=round(report.elapsed, 3),
            exhausted=report.exhausted,
            timed_out=report.timed_out,
            **extra,
        )
    return report


class TestingEngine:
    """Repeatedly executes a program under a scheduling strategy.

    (``__test__`` keeps pytest from collecting this as a test class.)

    Mirrors the paper's experimental setup: "at most 10,000 executions
    within a 5 minute time limit" (Table 2), stopping at the first bug for
    systematic strategies, or continuing to estimate bug density for the
    random scheduler.

    .. deprecated::
        ``TestingEngine`` is kept as a thin shim over the declarative
        facade — construct a :class:`repro.testing.config.TestConfig` and
        run it through :class:`repro.testing.config.Campaign` instead.
        The shim's one capability the facade does not mirror is passing a
        *live* strategy instance (the facade builds strategies from
        picklable :class:`~repro.testing.portfolio.StrategySpec`\\ s);
        ``Campaign`` accepts one via its ``strategy=`` override, which is
        exactly what this shim does.
    """

    __test__ = False

    def __init__(
        self,
        main_cls: Type[Machine],
        payload: Any = None,
        *,
        strategy: SchedulingStrategy,
        max_iterations: int = 10_000,
        time_limit: float = 300.0,
        max_steps: int = 20_000,
        stop_on_first_bug: bool = True,
        livelock_as_bug: bool = False,
        record_traces: bool = True,
        runtime_factory: Optional[Callable[..., BugFindingRuntime]] = None,
        workers: str = "auto",
        monitors: Sequence[type] = (),
        max_hot_steps: int = 1000,
    ) -> None:
        self.main_cls = main_cls
        self.payload = payload
        self.strategy = strategy
        self.max_iterations = max_iterations
        self.time_limit = time_limit
        self.max_steps = max_steps
        self.stop_on_first_bug = stop_on_first_bug
        self.livelock_as_bug = livelock_as_bug
        self.record_traces = record_traces
        self.runtime_factory = runtime_factory or BugFindingRuntime
        self.workers = workers
        self.monitors = tuple(monitors)
        self.max_hot_steps = max_hot_steps

    def run(
        self,
        deadline: Optional[float] = None,
        stop_check: Optional[Callable[[], bool]] = None,
    ) -> TestReport:
        # Deferred import: config is the layer above this module.
        from .config import Campaign, TestConfig

        config = TestConfig(
            program=self.main_cls,
            payload=self.payload,
            max_iterations=self.max_iterations,
            time_limit=self.time_limit,
            max_steps=self.max_steps,
            stop_on_first_bug=self.stop_on_first_bug,
            livelock_as_bug=self.livelock_as_bug,
            record_traces=self.record_traces,
            runtime_factory=self.runtime_factory,
            workers=self.workers,
            monitors=self.monitors,
            max_hot_steps=self.max_hot_steps,
        )
        return Campaign(config, strategy=self.strategy).run(
            deadline=deadline, stop_check=stop_check
        )


def replay(
    main_cls: Type[Machine],
    trace: Union[ScheduleTrace, str, "os.PathLike"],
    payload: Any = None,
    max_steps: int = 20_000,
    livelock_as_bug: bool = False,
    workers: str = "auto",
    monitors: Sequence[type] = (),
    max_hot_steps: int = 1000,
    faults: Optional[FaultConfig] = None,
) -> ExecutionResult:
    """Deterministically re-execute a recorded schedule.

    This is the paper's bug-reproduction workflow: a found bug's trace is
    replayed to observe the same failure again.  ``trace`` is either a
    live :class:`ScheduleTrace` or the path of a file written by
    :meth:`ScheduleTrace.save` (how the ``python -m repro replay`` CLI
    hands traces around).  Replay is back-end agnostic: a trace recorded
    under any worker mode replays under any mode (the default ``"auto"``
    picks the inline runtime when the program compiles for it, falling
    back to pooled threads otherwise).  Pass the same ``monitors`` (and
    ``max_hot_steps``) the bug was found with: monitor-detected safety
    and liveness violations reproduce, and the re-recorded trace is
    bit-identical to the original.

    A trace recorded under fault injection must be replayed with the
    *same* ``faults`` config: the config determines where fault
    decisions are consulted, and the replay strategy re-fires the
    recorded outcomes at exactly those points (it never invents faults).
    Registry variants carry their fault config, so ``Campaign.replay``
    and the CLI pass it automatically.
    """
    if not isinstance(trace, ScheduleTrace):
        trace = ScheduleTrace.load(trace)

    def attempt(mode: str) -> ExecutionResult:
        strategy = ReplayStrategy(trace)
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(
            strategy, max_steps=max_steps, record_trace=True,
            livelock_as_bug=livelock_as_bug, workers=mode,
            monitors=monitors, max_hot_steps=max_hot_steps,
            faults=faults,
        )
        return runtime.execute(main_cls, payload)

    try:
        return attempt(workers)
    except InlineCompileError:
        if workers != "auto":
            raise
        # A machine created mid-replay does not compile inline: replay the
        # whole schedule on the pooled backend (fresh ReplayStrategy, so
        # no recorded decision is lost to the aborted inline attempt).
        return attempt("pool")
