"""The testing engine: repeated controlled executions + statistics.

Drives a :class:`BugFindingRuntime` for many iterations and aggregates the
metrics Table 2 reports: number of threads (#T), scheduling points (#SP),
schedules per second (#Sch/sec), whether a bug was found, and — for the
random scheduler, which keeps exploring after a bug — the percentage of
buggy schedules (%Buggy).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Type

from ..core.machine import Machine
from ..errors import BugReport
from .runtime import BugFindingRuntime, ExecutionResult
from .strategies import ReplayStrategy, SchedulingStrategy
from .trace import ScheduleTrace


@dataclass
class TestReport:
    """Aggregate statistics over all explored schedules."""

    strategy: str
    iterations: int = 0
    buggy_iterations: int = 0
    depth_bound_hits: int = 0
    total_steps: int = 0
    total_scheduling_points: int = 0
    max_machines: int = 0
    elapsed: float = 0.0
    first_bug: Optional[BugReport] = None
    first_bug_iteration: int = -1
    bugs: List[BugReport] = field(default_factory=list)
    exhausted: bool = False

    @property
    def bug_found(self) -> bool:
        return self.buggy_iterations > 0

    @property
    def schedules_per_second(self) -> float:
        return self.iterations / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def mean_scheduling_points(self) -> float:
        return (
            self.total_scheduling_points / self.iterations if self.iterations else 0.0
        )

    @property
    def percent_buggy(self) -> float:
        return 100.0 * self.buggy_iterations / self.iterations if self.iterations else 0.0

    def summary(self) -> str:
        return (
            f"{self.strategy}: {self.iterations} schedules in {self.elapsed:.2f}s "
            f"({self.schedules_per_second:.1f}/s), #SP={self.mean_scheduling_points:.0f}, "
            f"buggy={self.buggy_iterations} ({self.percent_buggy:.0f}%)"
            + (f", first bug: {self.first_bug}" if self.first_bug else "")
        )


class TestingEngine:
    """Repeatedly executes a program under a scheduling strategy.

    (``__test__`` keeps pytest from collecting this as a test class.)

    Mirrors the paper's experimental setup: "at most 10,000 executions
    within a 5 minute time limit" (Table 2), stopping at the first bug for
    systematic strategies, or continuing to estimate bug density for the
    random scheduler.
    """

    __test__ = False

    def __init__(
        self,
        main_cls: Type[Machine],
        payload: Any = None,
        *,
        strategy: SchedulingStrategy,
        max_iterations: int = 10_000,
        time_limit: float = 300.0,
        max_steps: int = 20_000,
        stop_on_first_bug: bool = True,
        livelock_as_bug: bool = False,
        record_traces: bool = True,
        runtime_factory: Optional[Callable[..., BugFindingRuntime]] = None,
    ) -> None:
        self.main_cls = main_cls
        self.payload = payload
        self.strategy = strategy
        self.max_iterations = max_iterations
        self.time_limit = time_limit
        self.max_steps = max_steps
        self.stop_on_first_bug = stop_on_first_bug
        self.livelock_as_bug = livelock_as_bug
        self.record_traces = record_traces
        self.runtime_factory = runtime_factory or BugFindingRuntime

    def run(self) -> TestReport:
        report = TestReport(strategy=self.strategy.name)
        start = time.perf_counter()
        for iteration in range(self.max_iterations):
            if time.perf_counter() - start > self.time_limit:
                break
            if not self.strategy.prepare_iteration():
                report.exhausted = True
                break
            result = self._run_one()
            report.iterations += 1
            report.total_steps += result.steps
            report.total_scheduling_points += result.scheduling_points
            if result.status == "depth-bound":
                report.depth_bound_hits += 1
            if result.buggy:
                assert result.bug is not None
                result.bug.iteration = iteration
                report.buggy_iterations += 1
                report.bugs.append(result.bug)
                if report.first_bug is None:
                    report.first_bug = result.bug
                    report.first_bug_iteration = iteration
                if self.stop_on_first_bug:
                    break
        report.elapsed = time.perf_counter() - start
        return report

    def _run_one(self) -> ExecutionResult:
        runtime = self.runtime_factory(
            strategy=self.strategy,
            max_steps=self.max_steps,
            record_trace=self.record_traces,
            livelock_as_bug=self.livelock_as_bug,
        )
        result = runtime.execute(self.main_cls, self.payload)
        report_machines = len(runtime.machines)
        if result.buggy:
            assert result.bug is not None
        self._last_machine_count = report_machines
        return result


def replay(
    main_cls: Type[Machine],
    trace: ScheduleTrace,
    payload: Any = None,
    max_steps: int = 20_000,
    livelock_as_bug: bool = False,
) -> ExecutionResult:
    """Deterministically re-execute a recorded schedule.

    This is the paper's bug-reproduction workflow: a found bug's trace is
    replayed to observe the same failure again.
    """
    strategy = ReplayStrategy(trace)
    strategy.prepare_iteration()
    runtime = BugFindingRuntime(
        strategy, max_steps=max_steps, record_trace=True,
        livelock_as_bug=livelock_as_bug,
    )
    return runtime.execute(main_cls, payload)
