"""Distributed campaign fleet: one campaign sharded across processes and hosts.

The paper's tester wins by throwing many diverse schedulers at one
program; :mod:`repro.testing.portfolio` already shards a campaign across
local processes.  This module is the same campaign shape stretched over
a wire: a **coordinator** (``python -m repro serve --config
campaign.json``) streams work units — shard index ×
:class:`~repro.testing.portfolio.StrategySpec` — to **workers**
(``python -m repro worker`` / ``submit --host``) over a length-prefixed
JSON protocol that runs identically over TCP sockets and stdio pipes.

The wire format is specified normatively in ``docs/protocol.md``; the
tests cite its section numbers.  The load-bearing choices:

* **One framing, two transports.**  :class:`Connection` speaks 4-byte
  big-endian length-prefixed UTF-8 JSON frames over a pair of raw file
  descriptors, polled with ``select``.  A TCP socket and a
  stdin/stdout pipe pair look identical above that line, so every
  coordinator feature (requeue, cancel, heartbeats, telemetry
  forwarding) is tested once and works for both.
* **Warm workers, batched specs.**  A worker process handshakes once,
  then runs *many* shards back to back — each shard constructs a fresh
  strategy from its picklable spec, so there is no fork per spec and no
  state bleed between shards (protocol §5).
* **Results are detached reports.**  A finished shard comes back as a
  base64-pickled *detached* :class:`~repro.testing.engine.TestReport`
  inside a JSON frame; the coordinator folds shards with the same
  :func:`~repro.testing.portfolio.merge_shard_reports` path as the
  local portfolio, so distinct-bug dedup by
  :meth:`~repro.testing.trace.ScheduleTrace.fingerprint` has a single
  definition.  Pickle implies trust: run fleets only among mutually
  trusted hosts (protocol §8).
* **Failure is requeue, not loss.**  A worker that disconnects or goes
  silent mid-shard has its shard re-queued (bounded times, then
  abandoned as an empty shard so the merge stays honest); the
  coordinator checkpoints completed shards with the same
  :mod:`repro.testing.checkpoint` files as the local portfolio, so a
  killed ``serve`` resumes with ``--resume`` skipping finished shards.
"""

from __future__ import annotations

import base64
import collections
import json
import os
import pickle
import select
import socket
import struct
import subprocess
import sys
import time
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # circular at runtime: config is the layer above
    from .config import TestConfig

from ..errors import PSharpError
from .checkpoint import (
    config_fingerprint,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from .engine import TestReport, drive
from .portfolio import (
    DEFAULT_GRACE,
    StrategySpec,
    make_strategy,
    merge_shard_reports,
)
from .telemetry import EventLog

# ---------------------------------------------------------------------------
# Protocol constants (docs/protocol.md §2–§3)
# ---------------------------------------------------------------------------
#: Bumped on any incompatible wire change; the handshake rejects peers
#: speaking any other version (§3).
PROTOCOL_VERSION = 1

#: Hard cap on one frame's payload; a larger announced length is a
#: protocol violation, not an allocation request (§2).
MAX_FRAME = 16 * 1024 * 1024

#: Seconds a peer gets to complete the hello/welcome handshake (§3).
HANDSHAKE_TIMEOUT = 10.0

#: Seconds between a busy worker's heartbeat frames (§6).
HEARTBEAT_INTERVAL = 1.0

#: Seconds a *busy* worker may go silent before the coordinator declares
#: it lost and re-queues its shard (§6).  Idle workers are exempt — they
#: sit quietly in recv() until work arrives.
DEFAULT_WORKER_TIMEOUT = 30.0

#: Times one shard is re-queued after worker loss before being abandoned.
DEFAULT_MAX_REQUEUES = 2

#: Times one local stdio worker slot is respawned after its process dies.
DEFAULT_MAX_RESPAWNS = 2


class ProtocolError(PSharpError):
    """A peer violated the wire protocol (bad frame, bad message, bad
    handshake).  The offending connection is dropped; the campaign
    continues."""


class ConnectionClosed(ProtocolError):
    """The peer went away (EOF or a dead pipe/socket)."""


# ---------------------------------------------------------------------------
# Framing (§2): 4-byte big-endian length prefix + UTF-8 JSON object
# ---------------------------------------------------------------------------
def _encode_frame(message: Dict[str, Any]) -> bytes:
    payload = json.dumps(message, separators=(",", ":"), default=str).encode(
        "utf-8"
    )
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"outgoing {message.get('type', '?')!r} frame of {len(payload)} "
            f"bytes exceeds the {MAX_FRAME}-byte limit"
        )
    return struct.pack(">I", len(payload)) + payload


class Connection:
    """One framed-message peer over a pair of raw file descriptors.

    Works identically for a TCP socket (both fds are the socket's) and a
    pipe pair (a local worker's stdout/stdin) — reads go through
    ``select`` + ``os.read`` with an internal reassembly buffer, so
    partial frames, coalesced frames and timeouts behave the same on
    both transports.  Single-threaded use only; the fleet never shares a
    connection across threads.
    """

    def __init__(
        self,
        read_fd: int,
        write_fd: int,
        *,
        sock: Optional[socket.socket] = None,
        files: Optional[Tuple[Any, ...]] = None,
        label: str = "",
    ) -> None:
        self._read_fd = read_fd
        self._write_fd = write_fd
        self._sock = sock  # kept alive (and closed) with the connection
        # File objects that OWN the fds (e.g. a Popen's stdin/stdout).
        # close() must go through them, never os.close() the raw
        # numbers: a raw double-close races fd reuse and can tear down
        # an unrelated socket that inherited the number.
        self._files = files
        self._buffer = bytearray()
        self.label = label or f"fd{read_fd}"
        self.closed = False

    @classmethod
    def from_socket(cls, sock: socket.socket, label: str = "") -> "Connection":
        sock.setblocking(True)  # reads are select-gated, writes may block
        fd = sock.fileno()
        return cls(fd, fd, sock=sock, label=label)

    def fileno(self) -> int:
        return self._read_fd

    # -- sending -------------------------------------------------------
    def send(self, message: Dict[str, Any]) -> None:
        """Write one frame; raises :class:`ConnectionClosed` when the
        peer is gone (EPIPE/ECONNRESET)."""
        if self.closed:
            raise ConnectionClosed(f"connection to {self.label} is closed")
        view = memoryview(_encode_frame(message))
        while view:
            try:
                written = os.write(self._write_fd, view)
            except OSError as exc:
                raise ConnectionClosed(
                    f"peer {self.label} went away mid-send: {exc}"
                ) from exc
            view = view[written:]

    # -- receiving -----------------------------------------------------
    def _parse_frame(self) -> Optional[Dict[str, Any]]:
        """Pop one complete frame off the buffer, or ``None``."""
        if len(self._buffer) < 4:
            return None
        (length,) = struct.unpack_from(">I", self._buffer)
        if length > MAX_FRAME:
            raise ProtocolError(
                f"frame of {length} bytes announced by {self.label} exceeds "
                f"the {MAX_FRAME}-byte limit"
            )
        if len(self._buffer) < 4 + length:
            return None
        payload = bytes(self._buffer[4 : 4 + length])
        del self._buffer[: 4 + length]
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                f"undecodable frame from {self.label}: {exc}"
            ) from exc
        if not isinstance(message, dict) or not isinstance(
            message.get("type"), str
        ):
            raise ProtocolError(
                f"frame from {self.label} is not a typed message object"
            )
        return message

    def _fill(self, timeout: Optional[float]) -> bool:
        """Wait up to ``timeout`` for bytes (``None`` = forever); returns
        whether any arrived.  Raises :class:`ConnectionClosed` on EOF."""
        try:
            ready, _, _ = select.select([self._read_fd], [], [], timeout)
        except OSError as exc:
            raise ConnectionClosed(
                f"cannot poll {self.label}: {exc}"
            ) from exc
        if not ready:
            return False
        try:
            chunk = os.read(self._read_fd, 65536)
        except OSError as exc:
            raise ConnectionClosed(
                f"peer {self.label} went away mid-read: {exc}"
            ) from exc
        if not chunk:
            raise ConnectionClosed(f"peer {self.label} closed the connection")
        self._buffer.extend(chunk)
        return True

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Next message, or ``None`` when ``timeout`` elapses first.
        ``timeout=None`` blocks; ``timeout=0`` is a non-blocking poll."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            message = self._parse_frame()
            if message is not None:
                return message
            if deadline is None:
                self._fill(None)
                continue
            remaining = max(0.0, deadline - time.monotonic())
            if not self._fill(remaining):
                return None

    def poll(self) -> Optional[Dict[str, Any]]:
        """Non-blocking :meth:`recv`."""
        return self.recv(timeout=0.0)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        elif self._files is not None:
            for fh in self._files:
                try:
                    fh.close()
                except OSError:
                    pass
        else:
            for fd in {self._read_fd, self._write_fd}:
                try:
                    os.close(fd)
                except OSError:
                    pass


# ---------------------------------------------------------------------------
# Report encoding (§4 "result"): base64-pickled detached TestReports
# ---------------------------------------------------------------------------
def encode_report(report: TestReport) -> str:
    return base64.b64encode(
        pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_report(text: Any) -> TestReport:
    try:
        report = pickle.loads(base64.b64decode(str(text).encode("ascii")))
    except Exception as exc:  # noqa: BLE001 - any corruption is protocol-fatal
        raise ProtocolError(f"undecodable shard report: {exc}") from exc
    if not isinstance(report, TestReport):
        raise ProtocolError(
            f"shard report decoded to {type(report).__name__}, not TestReport"
        )
    return report


def worker_environment() -> Dict[str, str]:
    """Environment for a spawned worker subprocess: the coordinator's
    environment with the running ``repro`` package's root prepended to
    ``PYTHONPATH``, so ``python -m repro worker`` resolves to the same
    code regardless of how the coordinator was launched."""
    package_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    package_root = os.path.dirname(package_root)  # .../src
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return env


# ---------------------------------------------------------------------------
# Worker side (§5)
# ---------------------------------------------------------------------------
class _WireEvents:
    """EventLog-shaped adapter forwarding a shard's telemetry over the
    wire as ``event`` frames (the coordinator appends them to its JSONL
    log).  Like :class:`~repro.testing.telemetry.EventLog`, emitting
    never raises — a dead connection surfaces through the main protocol
    path, not through telemetry."""

    def __init__(self, conn: Connection, shard: int) -> None:
        self._conn = conn
        self._shard = shard

    def emit(self, type_: str, **fields: Any) -> None:
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "pid": os.getpid(),
            "shard": self._shard,
            "type": type_,
        }
        record.update(fields)
        try:
            self._conn.send({"type": "event", "record": record})
        except (ProtocolError, OSError):
            pass

    def close(self) -> None:
        pass


def connect_worker(
    host: str,
    port: int,
    *,
    connect_timeout: float = 10.0,
) -> Connection:
    """Dial the coordinator, retrying until ``connect_timeout`` — a
    worker submitted moments before ``serve`` binds still attaches."""
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise PSharpError(
                    f"cannot connect to coordinator at {host}:{port}: {exc}"
                ) from exc
            time.sleep(0.2)
            continue
        return Connection.from_socket(sock, label=f"{host}:{port}")


def worker_loop(
    conn: Connection,
    *,
    handshake_timeout: float = HANDSHAKE_TIMEOUT,
) -> int:
    """Speak the worker half of the protocol over ``conn`` until the
    coordinator says shutdown (or hangs up); returns shards completed.

    One warm process runs many shards: the campaign config arrives once
    in the welcome frame, each ``work`` frame names a shard index and a
    strategy spec, and the shard's strategy is built fresh from the spec
    so nothing bleeds between shards (§5)."""
    from .config import TestConfig  # deferred: config is the layer above

    conn.send(
        {
            "type": "hello",
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "host": socket.gethostname(),
        }
    )
    welcome = conn.recv(timeout=handshake_timeout)
    if welcome is None:
        raise ProtocolError("coordinator did not answer the hello in time")
    if welcome["type"] == "error":
        raise ProtocolError(
            f"coordinator rejected this worker: {welcome.get('message')}"
        )
    if welcome["type"] != "welcome":
        raise ProtocolError(
            f"expected a welcome frame, got {welcome['type']!r}"
        )
    if welcome.get("protocol") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"coordinator speaks protocol {welcome.get('protocol')!r}, "
            f"this worker speaks {PROTOCOL_VERSION}"
        )
    config = TestConfig.from_json_obj(welcome["config"])
    forward_events = bool(welcome.get("events"))
    main_cls, payload, monitors = config.resolve_program()
    faults = config.resolved_faults()

    completed = 0
    shutdown = False
    while not shutdown:
        message = conn.recv(timeout=None)
        mtype = message["type"]
        if mtype == "shutdown":
            break
        if mtype == "cancel":
            continue  # no shard in flight; nothing to cancel
        if mtype != "work":
            raise ProtocolError(
                f"unexpected {mtype!r} frame while idle (expected work, "
                "cancel or shutdown)"
            )
        shard = int(message["shard"])
        spec = _spec_from_wire(message.get("spec"))
        budget = message.get("time_limit")

        # The shard's stop-check doubles as the wire pump: it stamps a
        # heartbeat roughly every HEARTBEAT_INTERVAL and polls for
        # cancel/shutdown, throttled so a hot schedule loop is not
        # paying a select() per scheduling point.
        state = {"stop": False, "next_wire": 0.0, "next_beat": 0.0}

        def stop_check() -> bool:
            now = time.monotonic()
            if now < state["next_wire"]:
                return state["stop"]
            state["next_wire"] = now + 0.05
            try:
                if now >= state["next_beat"]:
                    state["next_beat"] = now + HEARTBEAT_INTERVAL
                    conn.send({"type": "heartbeat", "shard": shard})
                note = conn.poll()
            except ProtocolError:
                state["stop"] = True
                return True
            if note is not None:
                if note["type"] == "cancel":
                    state["stop"] = True
                elif note["type"] == "shutdown":
                    state["stop"] = True
                    nonlocal shutdown
                    shutdown = True
            return state["stop"]

        events = _WireEvents(conn, shard) if forward_events else None
        strategy = make_strategy(spec)
        report = drive(
            main_cls,
            payload,
            strategy,
            max_iterations=config.max_iterations,
            time_limit=budget,
            max_steps=config.max_steps,
            stop_on_first_bug=config.stop_on_first_bug,
            livelock_as_bug=config.livelock_as_bug,
            record_traces=config.record_traces,
            stop_check=stop_check,
            workers=config.workers,
            monitors=monitors,
            max_hot_steps=config.max_hot_steps,
            faults=faults,
            iteration_timeout=config.iteration_timeout,
            coverage=config.coverage,
            events=events,
            reduction=config.reduction,
            state_cache_size=config.state_cache_size,
        )
        conn.send(
            {
                "type": "result",
                "shard": shard,
                "canceled": state["stop"],
                "report": encode_report(report.detached()),
            }
        )
        completed += 1
    try:
        conn.send({"type": "goodbye"})
    except ProtocolError:
        pass
    return completed


def _spec_from_wire(value: Any) -> StrategySpec:
    if (
        not isinstance(value, dict)
        or not isinstance(value.get("name"), str)
        or not isinstance(value.get("params", {}), dict)
    ):
        raise ProtocolError(f"work frame carries a malformed spec: {value!r}")
    return StrategySpec(value["name"], dict(value.get("params", {})))


# ---------------------------------------------------------------------------
# Coordinator side (§3–§7)
# ---------------------------------------------------------------------------
class _Peer:
    """Coordinator-side state for one worker connection."""

    __slots__ = (
        "conn", "stage", "shard", "last_seen", "proc", "slot", "pid",
    )

    def __init__(
        self,
        conn: Connection,
        *,
        proc: Optional[subprocess.Popen] = None,
        slot: Optional[int] = None,
    ) -> None:
        self.conn = conn
        self.stage = "handshake"  # handshake -> idle -> (busy <-> idle)
        self.shard: Optional[int] = None
        self.last_seen = time.monotonic()
        self.proc = proc
        self.slot = slot
        self.pid: Optional[int] = None


def run_fleet(
    config: "TestConfig",
    *,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    local_workers: int = 0,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
    grace: float = DEFAULT_GRACE,
    worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
    max_requeues: int = DEFAULT_MAX_REQUEUES,
    max_respawns: int = DEFAULT_MAX_RESPAWNS,
    on_listen: Optional[Callable[[str, int], None]] = None,
) -> TestReport:
    """Coordinate one sharded campaign over a fleet of workers.

    Work sources: a TCP listener on ``host:port`` (``port=0`` binds an
    ephemeral port, reported through ``on_listen``) accepting remote
    ``python -m repro worker`` processes, and/or ``local_workers`` stdio
    worker subprocesses spawned (and respawned, bounded) directly.  At
    least one source is required.

    The campaign is ``config.portfolio_specs()`` — identical shards, in
    identical order, to ``Campaign.portfolio()``, so a fleet run and a
    local portfolio run of the same config + seed merge to the same
    distinct-bug fingerprint set.  ``checkpoint``/``resume`` reuse
    :mod:`repro.testing.checkpoint` verbatim: completed (non-canceled)
    shards are persisted as they land, and a resumed campaign never
    re-runs them.  SIGINT checkpoints and returns the partial merged
    report with ``interrupted=True``."""
    from .config import TestConfig  # deferred: config is the layer above

    if not isinstance(config, TestConfig):
        raise PSharpError(f"run_fleet needs a TestConfig, got {config!r}")
    if port is None and local_workers <= 0:
        raise PSharpError(
            "a fleet needs at least one worker source: a --port to accept "
            "TCP workers on, or --workers N local processes"
        )

    specs = list(config.portfolio_specs())
    for spec in specs:
        make_strategy(spec)  # fail fast on unbuildable specs
    # Workers never open the coordinator's event log path themselves —
    # telemetry travels back over the wire (event frames) instead.
    config_obj = config.with_overrides(events_path=None).to_json_obj()
    fingerprint = config_fingerprint(config)

    collected: Dict[int, TestReport] = {}
    checkpointed: Dict[int, TestReport] = {}
    if resume is not None:
        state = load_checkpoint(resume)
        verify_checkpoint(state, config, str(resume))
        specs = list(state["specs"])
        checkpointed = dict(state["completed"])
        collected = dict(checkpointed)

    events = (
        EventLog(config.events_path) if config.events_path is not None else None
    )

    def emit(type_: str, **fields: Any) -> None:
        if events is not None:
            events.emit(type_, **fields)

    pending: Deque[int] = collections.deque(
        index for index in range(len(specs)) if index not in collected
    )
    requeues: Dict[int, int] = {}
    abandoned: Set[int] = set()
    peers: List[_Peer] = []
    respawns_by_slot: Dict[int, int] = {}
    winner_index: Optional[int] = None
    cancelled = False
    interrupted = False
    wall_start = time.perf_counter()
    start = time.monotonic()
    deadline = (
        start + config.time_limit if config.time_limit is not None else None
    )
    hard_stop: Optional[float] = None

    listener: Optional[socket.socket] = None
    if port is not None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((host, port))
        except OSError as exc:
            listener.close()
            raise PSharpError(
                f"cannot listen on {host}:{port}: {exc}"
            ) from exc
        listener.listen()
        listener.setblocking(False)
        bound_host, bound_port = listener.getsockname()[:2]
        if on_listen is not None:
            on_listen(bound_host, bound_port)

    def total_done() -> int:
        return len(collected) + len(abandoned)

    def busy_peers() -> List[_Peer]:
        return [peer for peer in peers if peer.shard is not None]

    def save_progress() -> None:
        if checkpoint is not None:
            save_checkpoint(
                checkpoint,
                fingerprint=fingerprint,
                specs=specs,
                completed=checkpointed,
            )
            emit(
                "checkpoint",
                path=str(checkpoint),
                completed=sorted(checkpointed),
            )

    def spawn_local(slot: int) -> None:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--stdio"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            bufsize=0,
            env=worker_environment(),
        )
        conn = Connection(
            proc.stdout.fileno(),
            proc.stdin.fileno(),
            files=(proc.stdout, proc.stdin),
            label=f"local-{slot}(pid {proc.pid})",
        )
        peers.append(_Peer(conn, proc=proc, slot=slot))
        emit("fleet_worker_spawn", slot=slot, pid=proc.pid)

    def cancel_all(reason: str) -> None:
        nonlocal cancelled, hard_stop
        if cancelled:
            return
        cancelled = True
        hard_stop = time.monotonic() + grace
        emit("fleet_cancel", reason=reason)
        for peer in peers:
            try:
                if peer.shard is not None:
                    peer.conn.send({"type": "cancel"})
                elif peer.stage == "idle":
                    peer.conn.send({"type": "shutdown"})
            except ProtocolError:
                pass

    def accept_result(shard: int, report: TestReport, partial: bool) -> None:
        nonlocal winner_index
        if shard in collected:
            return  # duplicate from a presumed-lost worker; first in wins
        collected[shard] = report
        abandoned.discard(shard)
        emit(
            "fleet_shard_result",
            shard=shard,
            partial=partial,
            iterations=report.iterations,
            bugs=len(report.bugs),
        )
        if not partial:
            checkpointed[shard] = report
            save_progress()
        if (
            winner_index is None
            and config.stop_on_first_bug
            and report.first_bug is not None
        ):
            winner_index = shard
            cancel_all(f"first bug found by shard {shard}")

    def assign(peer: _Peer) -> None:
        """Hand the next pending shard to an idle worker; with nothing
        pending the worker stays idle (it may inherit a requeued shard
        later) until the campaign completes."""
        if cancelled or not pending:
            return
        shard = pending.popleft()
        budget: Optional[float] = None
        if deadline is not None:
            budget = max(0.1, deadline - time.monotonic())
        spec = specs[shard]
        try:
            peer.conn.send(
                {
                    "type": "work",
                    "shard": shard,
                    "spec": {"name": spec.name, "params": dict(spec.params)},
                    "time_limit": budget,
                }
            )
        except ProtocolError:
            pending.appendleft(shard)
            raise
        peer.shard = shard
        peer.stage = "busy"
        emit(
            "fleet_work_assigned",
            shard=shard,
            spec=spec.label(),
            worker=peer.conn.label,
        )

    def drop(peer: _Peer, reason: str, *, clean: bool = False) -> None:
        if peer not in peers:
            return
        peers.remove(peer)
        peer.conn.close()
        if not clean:
            emit("fleet_worker_lost", worker=peer.conn.label, reason=reason)
        shard = peer.shard
        if shard is not None and shard not in collected:
            count = requeues.get(shard, 0)
            if cancelled or count >= max_requeues:
                abandoned.add(shard)
                emit("fleet_shard_abandoned", shard=shard, requeues=count)
            else:
                requeues[shard] = count + 1
                pending.append(shard)
                emit("fleet_shard_requeued", shard=shard, attempt=count + 1)
        if peer.proc is not None:
            if peer.proc.poll() is None:
                peer.proc.terminate()
            slot = peer.slot if peer.slot is not None else -1
            if (
                not clean
                and not cancelled
                and total_done() < len(specs)
                and respawns_by_slot.get(slot, 0) < max_respawns
            ):
                respawns_by_slot[slot] = respawns_by_slot.get(slot, 0) + 1
                emit(
                    "fleet_worker_respawn",
                    slot=slot,
                    attempt=respawns_by_slot[slot],
                )
                spawn_local(slot)

    def handle(peer: _Peer, message: Dict[str, Any]) -> None:
        peer.last_seen = time.monotonic()
        mtype = message["type"]
        if peer.stage == "handshake":
            if mtype != "hello":
                raise ProtocolError(
                    f"expected hello from {peer.conn.label}, got {mtype!r}"
                )
            if message.get("protocol") != PROTOCOL_VERSION:
                try:
                    peer.conn.send(
                        {
                            "type": "error",
                            "message": (
                                f"protocol version "
                                f"{message.get('protocol')!r} not supported;"
                                f" coordinator speaks {PROTOCOL_VERSION}"
                            ),
                        }
                    )
                except ProtocolError:
                    pass
                raise ProtocolError(
                    f"{peer.conn.label} speaks protocol "
                    f"{message.get('protocol')!r}, not {PROTOCOL_VERSION}"
                )
            peer.pid = message.get("pid")
            peer.conn.send(
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "config": config_obj,
                    "events": events is not None,
                }
            )
            peer.stage = "idle"
            emit("fleet_worker_ready", worker=peer.conn.label, pid=peer.pid)
            if cancelled:
                peer.conn.send({"type": "shutdown"})
            else:
                assign(peer)
        elif mtype == "heartbeat":
            pass  # last_seen already stamped
        elif mtype == "event":
            if events is not None:
                record = message.get("record")
                if isinstance(record, dict):
                    events.forward(record)
        elif mtype == "result":
            shard = int(message["shard"])
            report = decode_report(message.get("report"))
            peer.shard = None
            peer.stage = "idle"
            partial = bool(message.get("canceled")) or cancelled
            accept_result(shard, report, partial)
            if not cancelled:
                assign(peer)
        elif mtype == "goodbye":
            drop(peer, "goodbye", clean=True)
        else:
            raise ProtocolError(
                f"unexpected {mtype!r} frame from {peer.conn.label}"
            )

    timed_out = False
    try:
        emit(
            "fleet_start",
            program=str(config.program),
            shards=len(specs),
            resumed=sorted(checkpointed),
            local_workers=local_workers,
            listening=bool(listener),
        )
        for slot in range(max(0, local_workers)):
            spawn_local(slot)

        while True:
            now = time.monotonic()
            if total_done() >= len(specs):
                break
            if hard_stop is not None and now >= hard_stop:
                break
            if cancelled and not busy_peers():
                break
            if deadline is not None and now >= deadline and not cancelled:
                timed_out = True
                cancel_all("time limit reached")
            # A fleet with pending work but no way to ever run it must
            # abandon rather than spin: no listener, no live peers, no
            # respawn credit left.
            if (
                pending
                and listener is None
                and not peers
                and all(
                    respawns_by_slot.get(slot, 0) >= max_respawns
                    for slot in range(max(1, local_workers))
                )
            ):
                while pending:
                    shard = pending.popleft()
                    abandoned.add(shard)
                    emit("fleet_shard_abandoned", shard=shard, requeues=requeues.get(shard, 0))
                continue

            read_fds: List[Any] = [p.conn for p in peers]
            if listener is not None:
                read_fds.append(listener)
            try:
                ready, _, _ = select.select(read_fds, [], [], 0.25)
            except (OSError, ValueError):
                # A bad fd in the set: probe each source individually so
                # one torn-down peer cannot wedge the whole loop.
                for peer in list(peers):
                    try:
                        select.select([peer.conn], [], [], 0)
                    except (OSError, ValueError):
                        drop(peer, "connection descriptor went bad")
                if listener is not None:
                    try:
                        select.select([listener], [], [], 0)
                    except (OSError, ValueError):
                        listener = None
                continue

            for source in ready:
                if source is listener:
                    while True:
                        try:
                            sock, addr = listener.accept()
                        except (BlockingIOError, OSError):
                            break
                        conn = Connection.from_socket(
                            sock, label=f"{addr[0]}:{addr[1]}"
                        )
                        peers.append(_Peer(conn))
                        emit("fleet_worker_connect", worker=conn.label)
                    continue
                peer = next((p for p in peers if p.conn is source), None)
                if peer is None:
                    continue
                try:
                    while True:
                        message = peer.conn.poll()
                        if message is None:
                            break
                        handle(peer, message)
                except (ConnectionClosed, ProtocolError) as exc:
                    drop(peer, str(exc))

            now = time.monotonic()
            for peer in list(peers):
                if peer.stage == "handshake" and (
                    now - peer.last_seen > HANDSHAKE_TIMEOUT
                ):
                    drop(peer, "handshake timed out")
                elif peer.shard is not None and (
                    now - peer.last_seen > worker_timeout
                ):
                    drop(peer, "heartbeat went stale")
                elif peer.proc is not None and peer.proc.poll() is not None:
                    # A dead local process also surfaces as EOF on its
                    # pipe, but reap it promptly even if the pipe
                    # lingers open in a grandchild.
                    drop(
                        peer,
                        f"local worker exited with {peer.proc.returncode}",
                    )
    except KeyboardInterrupt:
        interrupted = True
        cancel_all("keyboard interrupt")
        # Short drain so busy workers can flush partial shard reports.
        drain_until = time.monotonic() + min(grace, 2.0)
        while busy_peers() and time.monotonic() < drain_until:
            try:
                ready, _, _ = select.select(
                    [p.conn for p in peers], [], [], 0.1
                )
            except (OSError, ValueError):
                break
            for source in ready:
                peer = next((p for p in peers if p.conn is source), None)
                if peer is None:
                    continue
                try:
                    while True:
                        message = peer.conn.poll()
                        if message is None:
                            break
                        handle(peer, message)
                except (ConnectionClosed, ProtocolError) as exc:
                    drop(peer, str(exc))
    finally:
        for peer in list(peers):
            try:
                peer.conn.send({"type": "shutdown"})
            except ProtocolError:
                pass
        for peer in list(peers):
            if peer.proc is not None:
                try:
                    peer.proc.wait(timeout=1.0)
                except subprocess.TimeoutExpired:
                    pass
            peer.conn.close()
            if peer.proc is not None and peer.proc.poll() is None:
                peer.proc.terminate()
                try:
                    peer.proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    peer.proc.kill()
                    peer.proc.wait(timeout=2.0)
        peers.clear()
        if listener is not None:
            listener.close()
        save_progress()

    campaign = merge_shard_reports(
        specs,
        collected,
        strategy="fleet",
        winner_index=winner_index,
        elapsed=time.perf_counter() - wall_start,
        interrupted=interrupted,
    )
    emit(
        "fleet_end",
        iterations=campaign.iterations,
        bugs=len(campaign.bugs),
        elapsed=round(campaign.elapsed, 6),
        interrupted=interrupted,
        timed_out=timed_out,
        abandoned_shards=sorted(abandoned),
    )
    if events is not None:
        events.close()
    return campaign
