"""Scheduling strategies for systematic concurrency testing.

The paper implements "a depth-first-search (DFS) and a random scheduler
(both embedded in the P# runtime)" (Section 6.2).  We additionally provide
replay (for reproducing bugs from traces), PCT [4] and randomized
delay-bounding [9, 25] as extensions — both are cited by the paper as the
inspiration for its testing methodology.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from ..core.events import MachineId
from .faults import FAULT_SCALE
from .trace import BOOL, FAULT, INT, LIVENESS, MONITOR, REDUCTION, SCHED, ScheduleTrace


class SchedulingStrategy(ABC):
    """Interface between the bug-finding runtime and a search strategy.

    One *iteration* is one terminating execution of the program under test.
    The runtime calls :meth:`prepare_iteration` before each execution, then
    :meth:`pick_machine` at every scheduling point and :meth:`pick_bool` /
    :meth:`pick_int` at every controlled nondeterministic choice.
    """

    name = "abstract"

    @abstractmethod
    def prepare_iteration(self) -> bool:
        """Return False when the search space is exhausted."""

    @abstractmethod
    def pick_machine(
        self, enabled: Sequence[MachineId], current: Optional[MachineId]
    ) -> MachineId:
        """Choose the next machine to run among the enabled ones."""

    @abstractmethod
    def pick_bool(self) -> bool:
        ...

    @abstractmethod
    def pick_int(self, bound: int) -> int:
        ...

    def observe_forced(self, choice: MachineId) -> None:
        """Notification of a *forced* scheduling decision (exactly one
        machine enabled).  The runtime does not consult the strategy at
        such points — there is nothing to decide and no branch to explore
        — but still records the decision in the trace.  Strategies that
        track position in a recorded decision sequence (replay) override
        this to stay aligned, and step-indexed strategies (PCT,
        delay-bounding) override it to keep counting forced points as
        steps so their perturbation-point semantics are unchanged.
        Branching-only strategies (DFS, random) need not care, since a
        one-option node never branches.
        """

    def attach_reduction(self, engine) -> None:
        """Offer the strategy a :class:`repro.testing.reduction
        .ReductionEngine` for the current campaign loop.  DFS-family
        strategies accept it and switch their machine-choice frames to
        DPOR backtrack sets; everything else ignores it (state caching,
        the strategy-agnostic layer, lives in the runtime).  Called by
        :func:`repro.testing.engine.drive` before the first iteration —
        and called again with a fresh engine after an ``auto`` backend
        restart, so implementations must simply replace any previous
        attachment."""

    def pick_fault(self, weight: int) -> bool:
        """Decide whether a candidate fault fires at this consultation
        point.  ``weight`` is an integer permille probability in
        ``[0, FAULT_SCALE]`` (see :mod:`repro.testing.faults`).

        The default draws through :meth:`pick_int`, which is correct for
        every randomized strategy (one seeded RNG consumption per
        consult, reproducible per seed).  Systematic strategies override
        this — a fault is a two-way branch, not a ``FAULT_SCALE``-way
        one.  The runtime, not the strategy, records the resulting fault
        outcome in the trace.
        """
        return weight > 0 and self.pick_int(FAULT_SCALE) < weight

    def is_fair(self) -> bool:
        """Whether long executions remain meaningful under this strategy."""
        return False

    def reset(self) -> None:
        """Return the strategy to its pristine post-construction state.

        Campaign restarts rely on this being *exact*: after ``reset()``
        the strategy must make the same decision sequence a freshly
        constructed twin would.  ``workers="auto"``'s mid-campaign
        inline-to-pool fallback (:func:`repro.testing.engine.drive`)
        resets the strategy and re-runs the campaign on the pooled
        backend so its traces are bit-identical to an explicit
        ``workers="pool"`` run with the same seed.  Custom strategies
        that cannot restart should keep this default, which refuses
        loudly rather than silently resuming mid-state.
        """
        raise NotImplementedError(
            f"strategy {self.name!r} does not implement reset(); pass an "
            "explicit workers= backend instead of 'auto' (the automatic "
            "inline-to-pool fallback restarts the campaign via reset())"
        )


class _DfsFrame:
    __slots__ = ("options", "index")

    def __init__(self, options: int) -> None:
        self.options = options
        self.index = 0


class _DporFrame:
    """A machine-choice stack frame under dynamic partial-order reduction.

    Where a plain :class:`_DfsFrame` enumerates every branch ``0..options``,
    a DPOR frame enumerates only ``values`` — the branches the race
    analysis proved (or conservatively assumed) necessary, starting from a
    single arbitrary one.  ``values[:pos+1]`` is the frame's sleep set:
    backtrack insertion checks membership against the whole list, so a
    branch explored or already queued here is never re-added.  ``enabled``
    remembers the machine values enabled at this point, both for the
    "racer not enabled here" conservative fallback and for counting the
    branches never materialized when the frame pops.
    """

    __slots__ = ("enabled", "values", "pos")

    def __init__(self, enabled: tuple, first: int) -> None:
        self.enabled = enabled
        self.values = [first]
        self.pos = 0


class DfsStrategy(SchedulingStrategy):
    """Systematic depth-first exploration of the schedule tree.

    "Each node is a schedule prefix and the branches are the enabled
    machines in the program state reached by the schedule prefix"
    (Section 6.2).  Nondeterministic boolean/integer choices made by
    machines are explored systematically as well — the limitation the
    paper notes for machines that model nondeterministic environments.
    """

    name = "dfs"

    def __init__(self, max_depth: int = 100_000) -> None:
        self._stack: List[_DfsFrame] = []
        self._cursor = 0
        self._started = False
        self._max_depth = max_depth
        # True once any execution ran past the depth cap: the exploration
        # below the cap is then incomplete (iterative deepening keys off
        # this to decide whether deepening can uncover anything new).
        self.depth_cap_hit = False
        # Dynamic partial-order reduction, armed by attach_reduction():
        # machine-choice frames become _DporFrames with explicit backtrack
        # sets; bool/int/fault frames stay exhaustive _DfsFrames.
        self._dpor = None
        # Scheduling points where the DPOR frame offered exactly one branch
        # while more than one machine was enabled: the runtime consulted us
        # but reduction predetermined the answer.  The runtime subtracts
        # this from consulted_decisions so the consulted-vs-forced
        # telemetry ratio keeps meaning "real branching" under reduction.
        self.reduction_forced = 0

    def reset(self) -> None:
        self._stack = []
        self._cursor = 0
        self._started = False
        self.depth_cap_hit = False
        self.reduction_forced = 0

    def attach_reduction(self, engine) -> None:
        self._dpor = engine if engine is not None and engine.dpor else None

    def prepare_iteration(self) -> bool:
        if not self._started:
            self._started = True
            self._cursor = 0
            return True
        dpor = self._dpor
        if dpor is not None:
            # Mine the execution that just finished for races and insert
            # backtrack branches into the still-standing frames *before*
            # unwinding them.
            dpor.analyze(self._add_backtrack)
        # Backtrack: drop exhausted suffix, advance the deepest frame that
        # still has unexplored branches.
        stack = self._stack
        advanced = False
        while stack:
            top = stack[-1]
            if type(top) is _DporFrame:
                if top.pos < len(top.values) - 1:
                    top.pos += 1
                    advanced = True
                    break
                if dpor is not None:
                    dpor.count_skipped(len(top.enabled) - len(top.values))
                stack.pop()
            else:
                if top.index < top.options - 1:
                    top.index += 1
                    advanced = True
                    break
                stack.pop()
        if not advanced:
            return False
        self._cursor = 0
        return True

    def _add_backtrack(self, depth: int, value: Optional[int]) -> None:
        """DPOR callback: ensure the frame at ``depth`` will explore
        ``value`` (or, when None, every machine enabled there)."""
        stack = self._stack
        if depth >= len(stack):
            return
        frame = stack[depth]
        if type(frame) is not _DporFrame:
            return
        values = frame.values
        if value is not None:
            if value not in values and value in frame.enabled:
                values.append(value)
        else:
            for v in frame.enabled:
                if v not in values:
                    values.append(v)

    def _choose(self, options: int) -> int:
        if options <= 0:
            raise ValueError("no options to choose from")
        if self._cursor >= self._max_depth:
            # Beyond the depth cap the search degenerates to "first branch";
            # the runtime's step bound terminates such runs.
            self.depth_cap_hit = True
            self._cursor += 1
            return 0
        if self._cursor == len(self._stack):
            self._stack.append(_DfsFrame(options))
        frame = self._stack[self._cursor]
        if type(frame) is _DporFrame:
            # Divergence guard: a value choice landed where a machine
            # choice used to be; take the first branch like min() below.
            self._cursor += 1
            return 0
        # The schedule prefix replays deterministically, so the branching
        # factor matches what was recorded; min() guards divergence.
        index = min(frame.index, options - 1)
        self._cursor += 1
        return index

    def pick_machine(
        self, enabled: Sequence[MachineId], current: Optional[MachineId]
    ) -> MachineId:
        dpor = self._dpor
        if dpor is None:
            return enabled[self._choose(len(enabled))]
        if self._cursor >= self._max_depth:
            self.depth_cap_hit = True
            self._cursor += 1
            return enabled[0]
        cursor = self._cursor
        if cursor == len(self._stack):
            self._stack.append(
                _DporFrame(tuple(m.value for m in enabled), enabled[0].value)
            )
        frame = self._stack[cursor]
        self._cursor = cursor + 1
        if type(frame) is not _DporFrame:
            # Divergence guard (machine choice where a value choice was).
            return enabled[min(frame.index, len(enabled) - 1)]
        dpor.bind_frame(cursor)
        if len(frame.values) == 1:
            self.reduction_forced += 1
        value = frame.values[frame.pos]
        for mid in enabled:
            if mid.value == value:
                return mid
        return enabled[0]  # divergence guard

    def pick_bool(self) -> bool:
        return bool(self._choose(2))

    def pick_int(self, bound: int) -> int:
        return self._choose(bound)

    def pick_fault(self, weight: int) -> bool:
        # Systematic exploration ignores the probability: a fault point is
        # a two-way branch, and the fault-free branch (index 0) is
        # explored first so the failure-free schedule space is covered
        # before failures are layered in.
        return weight > 0 and bool(self._choose(2))


class IterativeDeepeningDfsStrategy(SchedulingStrategy):
    """Iterative-deepening DFS: restart the systematic search with a
    geometrically growing depth cap.

    Shallow bugs are found with DFS's exhaustiveness but without first
    drowning in the deep subtrees a plain DFS would enumerate — the
    classic IDDFS trade, here applied to the schedule tree.  Deepening
    stops once a full pass never hits the cap (the tree is finite and
    fully explored) or the cap reaches ``max_depth``.
    """

    name = "iddfs"

    def __init__(
        self, initial_depth: int = 8, factor: int = 2, max_depth: int = 100_000
    ) -> None:
        if initial_depth < 1 or factor < 2:
            raise ValueError("initial_depth must be >= 1 and factor >= 2")
        self._initial_depth = initial_depth
        self._factor = factor
        self._max_depth = max_depth
        self.depth = initial_depth
        self._dfs = DfsStrategy(max_depth=initial_depth)
        self._engine = None
        # reduction_forced accumulated by inner DFS instances already
        # retired by deepening (each deepening swaps in a fresh inner DFS
        # whose counter restarts at zero).
        self._forced_base = 0

    def reset(self) -> None:
        self.depth = self._initial_depth
        self._dfs = DfsStrategy(max_depth=self._initial_depth)
        self._forced_base = 0
        if self._engine is not None:
            self._dfs.attach_reduction(self._engine)

    def attach_reduction(self, engine) -> None:
        self._engine = engine
        self._dfs.attach_reduction(engine)

    @property
    def reduction_forced(self) -> int:
        return self._forced_base + self._dfs.reduction_forced

    def prepare_iteration(self) -> bool:
        if self._dfs.prepare_iteration():
            return True
        if not self._dfs.depth_cap_hit or self.depth >= self._max_depth:
            return False
        self.depth = min(self.depth * self._factor, self._max_depth)
        self._forced_base += self._dfs.reduction_forced
        self._dfs = DfsStrategy(max_depth=self.depth)
        if self._engine is not None:
            # The deepened pass re-explores the whole tree from scratch;
            # states (and clauses) cached by the shallower pass would
            # prune it to nothing.
            self._engine.reset_search()
            self._dfs.attach_reduction(self._engine)
        return self._dfs.prepare_iteration()

    def pick_machine(
        self, enabled: Sequence[MachineId], current: Optional[MachineId]
    ) -> MachineId:
        return self._dfs.pick_machine(enabled, current)

    def pick_bool(self) -> bool:
        return self._dfs.pick_bool()

    def pick_int(self, bound: int) -> int:
        return self._dfs.pick_int(bound)

    def pick_fault(self, weight: int) -> bool:
        return self._dfs.pick_fault(weight)


class RandomStrategy(SchedulingStrategy):
    """"The random scheduler chooses a random machine to execute after each
    send and does not keep track of already explored schedules.  Thus,
    random machine choices do not need to be controlled" (Section 6.2)."""

    name = "random"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed if seed is not None else random.randrange(2**31)
        self._iteration = -1
        self._rng = random.Random(self._seed)

    def reset(self) -> None:
        self._iteration = -1

    def prepare_iteration(self) -> bool:
        self._iteration += 1
        # Reseed deterministically per iteration (equivalent to a fresh
        # ``random.Random(seed)`` but without the allocation): iteration k
        # of a seeded run is reproducible in isolation.
        self._rng.seed(self._seed * 1_000_003 + self._iteration)
        return True

    def pick_machine(
        self, enabled: Sequence[MachineId], current: Optional[MachineId]
    ) -> MachineId:
        # int(random() * n) instead of randrange(n): one C call on the
        # hottest strategy path (randrange pays two Python frames); the
        # 2^-53 float bias is irrelevant at enabled-set sizes.
        return enabled[int(self._rng.random() * len(enabled))]

    def pick_bool(self) -> bool:
        return bool(self._rng.getrandbits(1))

    def pick_int(self, bound: int) -> int:
        return self._rng.randrange(bound)

    def is_fair(self) -> bool:
        return True


class FairRandomStrategy(SchedulingStrategy):
    """A round-robin-biased random walk that satisfies :meth:`is_fair`.

    At every decision the strategy flips a (seeded) coin: with probability
    ``bias`` it runs the *least recently scheduled* enabled machine (the
    round-robin component that bounds how long any enabled machine can
    starve), otherwise it picks uniformly at random (the exploration
    component).  Plain random scheduling is fair with probability 1 but
    its starvation horizon grows with the machine count; the round-robin
    bias keeps the horizon short enough for tight liveness-monitor
    temperature thresholds to be meaningful (Section 7.2's fair schedules
    for hot/cold liveness detection).
    """

    name = "fair-random"

    def __init__(self, seed: Optional[int] = None, bias: float = 0.5) -> None:
        if not 0.0 <= bias <= 1.0:
            raise ValueError(f"bias must be in [0, 1], got {bias}")
        self._seed = seed if seed is not None else random.randrange(2**31)
        self._bias = bias
        self._iteration = -1
        self._rng = random.Random(self._seed)
        self._last_run: dict = {}  # MachineId -> step it last ran
        self._step = 0

    def reset(self) -> None:
        self._iteration = -1
        self._last_run = {}
        self._step = 0

    def prepare_iteration(self) -> bool:
        self._iteration += 1
        self._rng.seed(self._seed * 1_000_003 + self._iteration)
        self._last_run = {}
        self._step = 0
        return True

    def observe_forced(self, choice: MachineId) -> None:
        # Forced points count as steps and as "the machine ran", so the
        # round-robin ordering reflects actual execution recency whether
        # or not the runtime's forced-decision fast path fired.
        self._step += 1
        self._last_run[choice] = self._step

    def pick_machine(
        self, enabled: Sequence[MachineId], current: Optional[MachineId]
    ) -> MachineId:
        self._step += 1
        if self._rng.random() < self._bias:
            last = self._last_run
            # Never-scheduled machines (default -1) win; ties break on id,
            # keeping the choice deterministic for a fixed seed.
            choice = min(enabled, key=lambda m: (last.get(m, -1), m.value))
        else:
            choice = enabled[int(self._rng.random() * len(enabled))]
        self._last_run[choice] = self._step
        return choice

    def pick_bool(self) -> bool:
        return bool(self._rng.getrandbits(1))

    def pick_int(self, bound: int) -> int:
        return self._rng.randrange(bound)

    def is_fair(self) -> bool:
        return True


class ReplayStrategy(SchedulingStrategy):
    """Deterministically replays a recorded :class:`ScheduleTrace`.

    Once the trace is exhausted (e.g. when replaying a prefix), falls back
    to the first enabled machine so that the execution still terminates.

    Monitor-invocation entries (kind ``"monitor"``), temperature firings
    (kind ``"liveness"``) and reduction cutoffs (kind ``"reduction"``)
    are runtime-recorded observations, not strategy decisions; they are
    filtered out here and re-recorded deterministically by the replaying
    runtime — the liveness marker's presence additionally tells the
    runtime whether (and that only at the recorded end) a temperature bug
    should fire during this replay.
    """

    name = "replay"

    def __init__(self, trace: ScheduleTrace) -> None:
        self._trace = [
            d
            for d in trace.decisions
            if d[0] != MONITOR and d[0] != LIVENESS and d[0] != REDUCTION
        ]
        self._liveness_recorded = any(
            kind == LIVENESS for kind, _ in trace.decisions
        )
        self._pos = 0
        self._ran = False
        self.diverged = False

    def reset(self) -> None:
        self._pos = 0
        self._ran = False
        self.diverged = False

    def prepare_iteration(self) -> bool:
        if self._ran:
            return False
        self._ran = True
        self._pos = 0
        self.diverged = False
        return True

    def _next(self, kind: str) -> Optional[int]:
        if self._pos >= len(self._trace):
            self.diverged = True
            return None
        recorded_kind, value = self._trace[self._pos]
        if recorded_kind != kind:
            self.diverged = True
            return None
        self._pos += 1
        return value

    def observe_forced(self, choice: MachineId) -> None:
        # Forced decisions are recorded in traces; consume the matching
        # entry so subsequent real choices stay aligned with the record.
        value = self._next(SCHED)
        if value is not None and value != choice.value:
            self.diverged = True

    def pick_machine(
        self, enabled: Sequence[MachineId], current: Optional[MachineId]
    ) -> MachineId:
        value = self._next(SCHED)
        if value is not None:
            for mid in enabled:
                if mid.value == value:
                    return mid
            self.diverged = True
        return enabled[0]

    def pick_bool(self) -> bool:
        value = self._next(BOOL)
        return bool(value) if value is not None else False

    def pick_int(self, bound: int) -> int:
        value = self._next(INT)
        if value is None or value >= bound:
            return 0
        return value

    def pick_fault(self, weight: int) -> bool:
        """Replay never *invents* faults; recorded fault outcomes are
        re-fired via :meth:`next_fault_outcome` instead, so a direct
        probability consult always declines."""
        return False

    def next_fault_outcome(self) -> int:
        """Consume the next recorded fault decision and return its
        outcome code (0 when the trace is exhausted or diverged — replay
        falls back to the fault-free behavior rather than guessing)."""
        value = self._next(FAULT)
        return value if value is not None else 0

    def is_fair(self) -> bool:
        """Replay preserves the recorded schedule exactly, so liveness
        temperature checks stay armed: a monitor-reported liveness bug
        found under a fair strategy reproduces under replay."""
        return True

    def temperature_may_fire(self) -> bool:
        """Whether the runtime may fire a temperature liveness bug *now*.

        Only once the recorded decisions are exhausted, and only when the
        recorded run itself ended in a temperature firing (the trace's
        ``"liveness"`` marker).  Decisions past the would-fire point — or
        a trace with no marker at all — prove the recorded run survived
        its hot stretches (unfair exploration, or the monitor cooled, or
        the bug was something else entirely), so replay defers to the
        recorded schedule instead of racing it to a different bug."""
        return self._liveness_recorded and self._pos >= len(self._trace)


class PctStrategy(SchedulingStrategy):
    """Probabilistic concurrency testing (Burckhardt et al. [4]).

    Machines get random priorities; the highest-priority enabled machine
    runs.  At ``depth - 1`` randomly chosen steps the currently running
    machine's priority is dropped below all others.  Provides probabilistic
    bug-finding guarantees for bugs of bounded depth.
    """

    name = "pct"

    def __init__(
        self, seed: Optional[int] = None, depth: int = 3, max_steps: int = 5_000
    ) -> None:
        self._seed = seed if seed is not None else random.randrange(2**31)
        self._depth = depth
        self._max_steps = max_steps
        self._iteration = -1
        self._rng = random.Random(self._seed)
        self._priorities: dict = {}
        self._change_points: set = set()
        self._step = 0
        # Change points are sampled from the observed execution length of
        # the previous iteration, so short programs still see them.
        self._horizon = 32

    def reset(self) -> None:
        self._iteration = -1
        self._priorities = {}
        self._change_points = set()
        self._step = 0
        self._horizon = 32

    def prepare_iteration(self) -> bool:
        self._iteration += 1
        self._horizon = max(self._horizon, self._step, 2)
        self._rng.seed(self._seed * 1_000_003 + self._iteration)
        self._priorities = {}
        self._step = 0
        horizon = min(self._horizon, self._max_steps)
        if self._depth > 1:
            self._change_points = set(
                self._rng.sample(
                    range(1, horizon + 1), min(self._depth - 1, horizon)
                )
            )
        else:
            self._change_points = set()
        return True

    def _priority(self, mid: MachineId) -> float:
        if mid not in self._priorities:
            self._priorities[mid] = self._rng.random() + 1.0
        return self._priorities[mid]

    def observe_forced(self, choice: MachineId) -> None:
        # A forced point is still a step: change points may land on it
        # (deprioritizing the sole runnable machine for *later*
        # decisions), exactly as picking from a one-element enabled set
        # did before the runtime grew the forced-decision fast path.
        self._step += 1
        self._priority(choice)
        if self._step in self._change_points:
            self._priorities[choice] = self._rng.random() * 1e-6

    def pick_machine(
        self, enabled: Sequence[MachineId], current: Optional[MachineId]
    ) -> MachineId:
        self._step += 1
        best = max(enabled, key=self._priority)
        if self._step in self._change_points:
            # Deprioritize the would-be winner below every other machine.
            self._priorities[best] = self._rng.random() * 1e-6
            best = max(enabled, key=self._priority)
        return best

    def pick_bool(self) -> bool:
        return bool(self._rng.getrandbits(1))

    def pick_int(self, bound: int) -> int:
        return self._rng.randrange(bound)


class DelayBoundingStrategy(SchedulingStrategy):
    """Randomized delay-bounded scheduling (Emmi et al. [9], randomized as
    in Thomson et al. [25]).

    A deterministic round-robin scheduler is perturbed by up to ``delays``
    delay operations, inserted at randomly chosen scheduling points; each
    delay skips the machine the deterministic scheduler would have run.
    """

    name = "delay-bounding"

    def __init__(
        self, seed: Optional[int] = None, delays: int = 2, max_steps: int = 5_000
    ) -> None:
        self._seed = seed if seed is not None else random.randrange(2**31)
        self._delays = delays
        self._max_steps = max_steps
        self._iteration = -1
        self._rng = random.Random(self._seed)
        self._delay_points: set = set()
        self._step = 0
        # Like PCT, delay points are sampled within the observed execution
        # length so they actually land inside short runs.
        self._horizon = 32

    def reset(self) -> None:
        self._iteration = -1
        self._delay_points = set()
        self._step = 0
        self._horizon = 32

    def prepare_iteration(self) -> bool:
        self._iteration += 1
        self._horizon = max(self._horizon, self._step, 2)
        self._rng.seed(self._seed * 1_000_003 + self._iteration)
        self._step = 0
        horizon = min(self._horizon, self._max_steps)
        count = self._rng.randint(0, min(self._delays, horizon))
        self._delay_points = set(
            self._rng.sample(range(1, horizon + 1), count)
        ) if count else set()
        return True

    def observe_forced(self, choice: MachineId) -> None:
        # Forced points count as steps so delay-point indices mean the
        # same thing they did before the fast path; a delay landing on a
        # one-machine step is a no-op, as it always was.
        self._step += 1

    def pick_machine(
        self, enabled: Sequence[MachineId], current: Optional[MachineId]
    ) -> MachineId:
        self._step += 1
        # Deterministic base order: keep running `current` if enabled,
        # else lowest id.
        ordered = sorted(enabled, key=lambda m: m.value)
        if current in enabled:
            choice = current
        else:
            choice = ordered[0]
        if self._step in self._delay_points and len(ordered) > 1:
            index = ordered.index(choice)
            choice = ordered[(index + 1) % len(ordered)]
        return choice

    def pick_bool(self) -> bool:
        return bool(self._rng.getrandbits(1))

    def pick_int(self, bound: int) -> int:
        return self._rng.randrange(bound)
