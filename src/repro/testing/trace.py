"""Schedule traces: the replayable record of one execution.

"We designed the bug-finding mode to enable easy reproduction of bugs:
after a bug is found, the runtime can generate a trace that represents the
buggy schedule" (Section 6.2).  A trace is the sequence of all decisions
the scheduling strategy made: which machine to run at each scheduling
point, plus every controlled nondeterministic boolean/integer choice.

Traces sit on the hot path — one append per scheduling decision, tens of
thousands of decisions per second — so they are stored as two flat
``array`` buffers (a byte of kind tag plus a 64-bit value per decision)
instead of a list of tuples.  The JSON wire format is unchanged: a list of
``[kind, value]`` pairs with the string kinds ``"sched"``/``"bool"``/
``"int"``, so traces recorded by older versions replay unmodified and
stored traces stay diffable.
"""

from __future__ import annotations

import hashlib
import json
import os
from array import array
from typing import Iterable, Iterator, List, Optional, Tuple

from ..errors import PSharpError

SCHED = "sched"
BOOL = "bool"
INT = "int"
# Monitor invocations are not strategy decisions — they are runtime-level
# observations recorded so traces with specifications attached stay
# comparable bit-for-bit across worker back-ends.  Replay ignores them
# (ReplayStrategy filters them out) and re-records them deterministically.
MONITOR = "monitor"
# A temperature liveness firing (value: the hot monitor's registration
# index), appended when the runtime reports a hot-state liveness bug.
# Replay uses it to fire at exactly the recorded point — and, crucially,
# its absence proves the recorded run survived its hot stretches, so
# replay defers to the recorded schedule instead of racing it.
LIVENESS = "liveness"
# An injected-fault decision (value: the fault outcome code from
# :mod:`repro.testing.faults` — 0 none, 1 drop, 2 duplicate, 3 delay,
# 4 crash).  One entry per fault consultation point, so faulty executions
# replay bit-identically: ReplayStrategy re-fires exactly the recorded
# outcomes and never invents new faults.
FAULT = "fault"
# A schedule-space-reduction cutoff (value: the reason code from
# :mod:`repro.testing.reduction` — 1 state-cache hit, 2 learned prefix
# clause).  Appended when the runtime abandons an execution whose state
# was already explored, so reduced campaigns leave an auditable record
# and checkpoint/merge tooling can tell a pruned schedule from a
# completed one.  Like monitor/liveness entries it is a runtime
# observation, not a strategy decision: ReplayStrategy filters it out,
# which is what makes a *bug* trace found under reduction (which by
# construction carries no cutoff — pruned executions never reach a bug)
# replay bit-identically with reduction off.
REDUCTION = "reduction"

# Compact kind tags used in the flat encoding; the string kinds above
# remain the public vocabulary (and the wire format).
SCHED_TAG = 0
BOOL_TAG = 1
INT_TAG = 2
MONITOR_TAG = 3
LIVENESS_TAG = 4
FAULT_TAG = 5
REDUCTION_TAG = 6

_TAG_OF = {
    SCHED: SCHED_TAG,
    BOOL: BOOL_TAG,
    INT: INT_TAG,
    MONITOR: MONITOR_TAG,
    LIVENESS: LIVENESS_TAG,
    FAULT: FAULT_TAG,
    REDUCTION: REDUCTION_TAG,
}
_KIND_OF = (SCHED, BOOL, INT, MONITOR, LIVENESS, FAULT, REDUCTION)

Decision = Tuple[str, int]


class ScheduleTrace:
    """An append-only record of scheduling decisions.

    Internally two parallel flat arrays (kind tags, values); externally a
    sequence of ``(kind, value)`` tuples, exactly like the historical
    list-of-tuples representation.
    """

    __slots__ = ("_tags", "_values")

    def __init__(self, decisions: Optional[Iterable[Decision]] = None) -> None:
        self._tags = array("b")
        self._values = array("q")
        if decisions:
            for kind, value in decisions:
                self._tags.append(_TAG_OF[kind])
                self._values.append(value)

    # -- recording ------------------------------------------------------
    def record(self, kind: str, value: int) -> None:
        """Record one decision by string kind (compatibility surface)."""
        self._tags.append(_TAG_OF[kind])
        self._values.append(value)

    def append(self, tag: int, value: int) -> None:
        """Hot-path append by integer kind tag (no dict lookup)."""
        self._tags.append(tag)
        self._values.append(value)

    # -- sequence protocol ---------------------------------------------
    @property
    def decisions(self) -> List[Decision]:
        """The decisions as ``(kind, value)`` tuples (materialized)."""
        kinds = _KIND_OF
        return [(kinds[t], v) for t, v in zip(self._tags, self._values)]

    def __len__(self) -> int:
        return len(self._tags)

    def __iter__(self) -> Iterator[Decision]:
        kinds = _KIND_OF
        return iter([(kinds[t], v) for t, v in zip(self._tags, self._values)])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduleTrace):
            return NotImplemented
        return self._tags == other._tags and self._values == other._values

    def __hash__(self) -> int:
        return hash((bytes(self._tags), self._values.tobytes()))

    def range_equal(self, other: "ScheduleTrace", start: int, end: int) -> bool:
        """Whether ``self[start:end]`` matches ``other`` at the same
        positions (False when ``other`` is shorter than ``end``).

        The state cache's divergence test: a DFS iteration re-executes
        the schedule prefix of the previous one decision-for-decision,
        and fingerprint pruning must stay dark until the traces actually
        part ways — otherwise the replayed prefix would prune itself.
        Array slices compare element-wise in C, so the per-point cost is
        two small slice copies."""
        if end > len(other._tags):
            return False
        return (
            self._tags[start:end] == other._tags[start:end]
            and self._values[start:end] == other._values[start:end]
        )

    def fingerprint(self) -> str:
        """A stable hex digest of the decision sequence.

        Two traces have equal fingerprints iff they are bit-identical —
        the compact form of the cross-backend parity contract (inline,
        pool and spawn must produce the same digest per strategy seed),
        cheap enough to assert over whole benchmark registries and to
        record alongside benchmark results.
        """
        digest = hashlib.sha256(bytes(self._tags))
        digest.update(self._values.tobytes())
        return digest.hexdigest()

    # -- serialization (traces can be stored alongside bug reports) -----
    def to_json(self) -> str:
        return json.dumps(self.decisions)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleTrace":
        """Parse the wire format, raising :class:`PSharpError` on garbage.

        Truncated downloads, half-written files and hand-edited traces
        all surface as one clear error instead of a raw
        ``JSONDecodeError``/``KeyError`` traceback."""
        try:
            decisions = json.loads(text)
            return cls([(kind, value) for kind, value in decisions])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OverflowError) as exc:
            raise PSharpError(
                f"corrupt schedule trace: {exc} (expected a JSON list of "
                f"[kind, value] pairs as written by ScheduleTrace.save)"
            ) from exc

    def save(self, path: "str | os.PathLike") -> None:
        """Write the trace to ``path`` in the ``to_json`` wire format.

        The file a found bug leaves behind is the reproduction artifact:
        ``ScheduleTrace.load(path)`` (or ``repro.replay(cls, path)`` / the
        ``python -m repro replay --trace`` CLI) replays it bit-for-bit."""
        with open(os.fspath(path), "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "ScheduleTrace":
        """Read a trace previously written by :meth:`save` (or any file in
        the ``to_json`` wire format).  Raises :class:`PSharpError` if the
        file is unreadable or corrupt."""
        try:
            with open(os.fspath(path), "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise PSharpError(f"cannot read trace file {path!r}: {exc}") from exc
        return cls.from_json(text)

    def __str__(self) -> str:
        parts = []
        for tag, value in zip(self._tags, self._values):
            if tag == SCHED_TAG:
                parts.append(f"m{value}")
            elif tag == BOOL_TAG:
                parts.append("T" if value else "F")
            elif tag == MONITOR_TAG:
                parts.append(f"obs{value}")
            elif tag == LIVENESS_TAG:
                parts.append(f"hot!{value}")
            elif tag == FAULT_TAG:
                parts.append(f"x{value}")
            elif tag == REDUCTION_TAG:
                parts.append(f"cut{value}")
            else:
                parts.append(f"i{value}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"ScheduleTrace({self.decisions!r})"
