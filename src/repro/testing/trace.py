"""Schedule traces: the replayable record of one execution.

"We designed the bug-finding mode to enable easy reproduction of bugs:
after a bug is found, the runtime can generate a trace that represents the
buggy schedule" (Section 6.2).  A trace is the sequence of all decisions
the scheduling strategy made: which machine to run at each scheduling
point, plus every controlled nondeterministic boolean/integer choice.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

SCHED = "sched"
BOOL = "bool"
INT = "int"

Decision = Tuple[str, int]


@dataclass
class ScheduleTrace:
    """An append-only record of scheduling decisions."""

    decisions: List[Decision] = field(default_factory=list)

    def record(self, kind: str, value: int) -> None:
        self.decisions.append((kind, value))

    def __len__(self) -> int:
        return len(self.decisions)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self.decisions)

    # -- serialization (traces can be stored alongside bug reports) -----
    def to_json(self) -> str:
        return json.dumps(self.decisions)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleTrace":
        return cls([(kind, value) for kind, value in json.loads(text)])

    def __str__(self) -> str:
        parts = []
        for kind, value in self.decisions:
            if kind == SCHED:
                parts.append(f"m{value}")
            elif kind == BOOL:
                parts.append("T" if value else "F")
            else:
                parts.append(f"i{value}")
        return " ".join(parts)
