"""Activity coverage: what a campaign *explored*, not just what it found.

The P# tester reports activity coverage alongside bugs — which machine
states, transitions and event flows the explored schedules actually
exercised — because "0 bugs in 100k schedules" only means something when
the schedules visited the program.  This module is that signal for the
reproduction: a picklable, mergeable :class:`CoverageMap` collected at
the runtime's existing hook points (state entry, send, dequeue, halt)
on every worker back-end.

Two universes per machine class make the *deltas* reportable by name:

* the **declared** universe comes from the precompiled dispatch tables
  (:class:`~repro.core.machine.StateInfo`): every state the class
  declares, and every ``(state, event) → state`` transition in its
  ``transitions`` maps — the same tables
  :func:`~repro.core.machine.machine_statistics` counts for Table 1;
* the **visited** universe is what the campaign's schedules entered and
  took, with occurrence counts.

Uncovered states/transitions are simply declared minus visited, so the
report (``python -m repro report``) can *name* what a campaign never
reached.  Maps merge associatively (portfolio shards, checkpoint
resume, future distributed fleets) and fingerprint deterministically,
which is how the cross-backend bit-identity guarantee is tested: for a
fixed strategy seed, inline/pool/spawn campaigns produce *equal* maps.

Collection costs one pointer-is-None check per hook when disabled (the
runtime's ``_hook_state``/``_cov`` flags); nothing here is imported on
the runtime's hot paths.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Tuple, Type

__all__ = ["CoverageMap", "MachineCoverage"]


class MachineCoverage:
    """Declared-vs-visited coverage of one machine (or monitor) class.

    ``declared_transitions`` entries are ``(state, event, target)`` name
    triples.  Visited tables map names to occurrence counts; a declared
    transition fires only for its exactly-declared event class (the
    dispatch tables never route a subclass event to a base-class
    transition), so every visited transition key is also a declared key.
    """

    __slots__ = (
        "declared_states",
        "declared_transitions",
        "is_monitor",
        "instances",
        "halts",
        "states_visited",
        "transitions_taken",
    )

    def __init__(
        self,
        declared_states: Tuple[str, ...] = (),
        declared_transitions: Tuple[Tuple[str, str, str], ...] = (),
        is_monitor: bool = False,
    ) -> None:
        self.declared_states = tuple(declared_states)
        self.declared_transitions = tuple(declared_transitions)
        self.is_monitor = is_monitor
        self.instances = 0
        self.halts = 0
        self.states_visited: Dict[str, int] = {}
        self.transitions_taken: Dict[Tuple[str, str, str], int] = {}

    # -- derived ------------------------------------------------------
    def uncovered_states(self) -> List[str]:
        visited = self.states_visited
        return [s for s in self.declared_states if s not in visited]

    def uncovered_transitions(self) -> List[Tuple[str, str, str]]:
        taken = self.transitions_taken
        return [t for t in self.declared_transitions if t not in taken]

    @property
    def state_coverage(self) -> float:
        """Fraction of declared states entered at least once (1.0 when
        the class declares none — vacuously covered)."""
        declared = len(self.declared_states)
        if not declared:
            return 1.0
        return (declared - len(self.uncovered_states())) / declared

    @property
    def transition_coverage(self) -> float:
        declared = len(self.declared_transitions)
        if not declared:
            return 1.0
        return (declared - len(self.uncovered_transitions())) / declared

    # -- merge/copy/equality ------------------------------------------
    def merge(self, other: "MachineCoverage") -> None:
        if other.declared_states != self.declared_states:
            # Same-named classes with different declared universes (e.g.
            # two modules reusing a class name): union the declarations
            # so neither campaign's uncovered list silently shrinks.
            self.declared_states = tuple(
                sorted(set(self.declared_states) | set(other.declared_states))
            )
        if other.declared_transitions != self.declared_transitions:
            self.declared_transitions = tuple(
                sorted(set(self.declared_transitions) | set(other.declared_transitions))
            )
        self.is_monitor = self.is_monitor or other.is_monitor
        self.instances += other.instances
        self.halts += other.halts
        visited = self.states_visited
        for name, count in other.states_visited.items():
            visited[name] = visited.get(name, 0) + count
        taken = self.transitions_taken
        for key, count in other.transitions_taken.items():
            taken[key] = taken.get(key, 0) + count

    def copy(self) -> "MachineCoverage":
        clone = MachineCoverage(
            self.declared_states, self.declared_transitions, self.is_monitor
        )
        clone.instances = self.instances
        clone.halts = self.halts
        clone.states_visited = dict(self.states_visited)
        clone.transitions_taken = dict(self.transitions_taken)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MachineCoverage):
            return NotImplemented
        return (
            self.declared_states == other.declared_states
            and self.declared_transitions == other.declared_transitions
            and self.is_monitor == other.is_monitor
            and self.instances == other.instances
            and self.halts == other.halts
            and self.states_visited == other.states_visited
            and self.transitions_taken == other.transitions_taken
        )

    __hash__ = None  # mutable

    def to_json(self) -> Dict[str, object]:
        return {
            "monitor": self.is_monitor,
            "instances": self.instances,
            "halts": self.halts,
            "declared_states": len(self.declared_states),
            "declared_transitions": len(self.declared_transitions),
            "state_coverage": round(self.state_coverage, 4),
            "transition_coverage": round(self.transition_coverage, 4),
            "states_visited": dict(sorted(self.states_visited.items())),
            "transitions_taken": {
                f"{s} --{e}--> {t}": n
                for (s, e, t), n in sorted(self.transitions_taken.items())
            },
            "uncovered_states": self.uncovered_states(),
            "uncovered_transitions": [
                f"{s} --{e}--> {t}" for s, e, t in self.uncovered_transitions()
            ],
        }


class CoverageMap:
    """Mergeable activity coverage of a whole campaign.

    Keyed by machine-class name (``cls.__name__``): the portfolio merges
    maps produced in different processes, where class *objects* differ
    but the program they describe does not.  Event-flow counters
    (``events_sent`` / ``events_dequeued`` / ``events_dropped``) are
    campaign-global, keyed by event-class name; a drop is a message lost
    to a send-to-halted/missing target or to an injected drop fault.

    The ``_classes`` identity cache keeps the hot recording path to one
    dict probe per call; it is transient (rebuilt empty on unpickle) so
    maps travel across process boundaries without dragging class
    references along.
    """

    __slots__ = (
        "machines",
        "events_sent",
        "events_dequeued",
        "events_dropped",
        "_classes",
    )

    def __init__(self) -> None:
        self.machines: Dict[str, MachineCoverage] = {}
        self.events_sent: Dict[str, int] = {}
        self.events_dequeued: Dict[str, int] = {}
        self.events_dropped: Dict[str, int] = {}
        self._classes: Dict[type, MachineCoverage] = {}

    # -- pickling (drop the transient class cache) --------------------
    def __getstate__(self):
        return (
            self.machines,
            self.events_sent,
            self.events_dequeued,
            self.events_dropped,
        )

    def __setstate__(self, state) -> None:
        (
            self.machines,
            self.events_sent,
            self.events_dequeued,
            self.events_dropped,
        ) = state
        self._classes = {}

    # -- registration -------------------------------------------------
    def ensure_class(self, cls: type, *, monitor: bool = False) -> MachineCoverage:
        """Register ``cls``'s declared universe (idempotent) and return
        its per-class record.  Never-visited classes still contribute
        their declared states/transitions to the uncovered report."""
        record = self._classes.get(cls)
        if record is not None:
            return record
        name = cls.__name__
        record = self.machines.get(name)
        if record is None:
            states: List[str] = []
            transitions: List[Tuple[str, str, str]] = []
            for state_name, info in sorted(cls._state_infos.items()):
                states.append(state_name)
                for event_cls, target in info.transitions.items():
                    transitions.append((state_name, event_cls.__name__, target))
            record = MachineCoverage(
                tuple(states), tuple(sorted(transitions)), monitor
            )
            self.machines[name] = record
        self._classes[cls] = record
        return record

    # -- recording (called from the runtime's hook points) ------------
    def record_machine(self, cls: type) -> None:
        record = self._classes.get(cls)
        if record is None:
            record = self.ensure_class(cls)
        record.instances += 1

    def record_halt(self, cls: type) -> None:
        record = self._classes.get(cls)
        if record is None:
            record = self.ensure_class(cls)
        record.halts += 1

    def record_entry(
        self, cls: type, old: Optional[str], event, new: str
    ) -> None:
        """One state entry of an instance of ``cls``: ``old`` is the
        previous state's name (None for the initial entry, which counts
        as a state visit but not a transition)."""
        record = self._classes.get(cls)
        if record is None:
            record = self.ensure_class(cls)
        visited = record.states_visited
        visited[new] = visited.get(new, 0) + 1
        if old is not None and event is not None:
            key = (old, type(event).__name__, new)
            taken = record.transitions_taken
            taken[key] = taken.get(key, 0) + 1

    def record_send(self, event, dropped: bool) -> None:
        name = type(event).__name__
        sent = self.events_sent
        sent[name] = sent.get(name, 0) + 1
        if dropped:
            drops = self.events_dropped
            drops[name] = drops.get(name, 0) + 1

    def record_drop(self, event) -> None:
        name = type(event).__name__
        drops = self.events_dropped
        drops[name] = drops.get(name, 0) + 1

    def record_dequeue(self, event) -> None:
        name = type(event).__name__
        dequeued = self.events_dequeued
        dequeued[name] = dequeued.get(name, 0) + 1

    # -- merge/copy/equality/fingerprint ------------------------------
    def merge(self, other: "CoverageMap") -> "CoverageMap":
        """Fold ``other`` into this map (in place) and return self.
        Merging is associative and commutative up to declared-universe
        ordering, so shard/checkpoint fold order does not matter."""
        machines = self.machines
        for name, record in other.machines.items():
            mine = machines.get(name)
            if mine is None:
                machines[name] = record.copy()
            else:
                mine.merge(record)
        for mine_counts, other_counts in (
            (self.events_sent, other.events_sent),
            (self.events_dequeued, other.events_dequeued),
            (self.events_dropped, other.events_dropped),
        ):
            for name, count in other_counts.items():
                mine_counts[name] = mine_counts.get(name, 0) + count
        return self

    def copy(self) -> "CoverageMap":
        clone = CoverageMap()
        clone.machines = {name: rec.copy() for name, rec in self.machines.items()}
        clone.events_sent = dict(self.events_sent)
        clone.events_dequeued = dict(self.events_dequeued)
        clone.events_dropped = dict(self.events_dropped)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageMap):
            return NotImplemented
        return (
            self.machines == other.machines
            and self.events_sent == other.events_sent
            and self.events_dequeued == other.events_dequeued
            and self.events_dropped == other.events_dropped
        )

    __hash__ = None  # mutable

    def __bool__(self) -> bool:
        return bool(self.machines or self.events_sent)

    def fingerprint(self) -> str:
        """Deterministic digest of the map's *content* (insertion order
        excluded): equal maps — e.g. the same seeded campaign run on
        different worker back-ends — produce equal fingerprints."""
        canonical = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- reporting ----------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "machines": {
                name: record.to_json()
                for name, record in sorted(self.machines.items())
            },
            "events": {
                "sent": dict(sorted(self.events_sent.items())),
                "dequeued": dict(sorted(self.events_dequeued.items())),
                "dropped": dict(sorted(self.events_dropped.items())),
            },
        }

    def totals(self) -> Dict[str, int]:
        """Campaign-wide declared/visited tallies (the report header)."""
        declared_states = visited_states = 0
        declared_transitions = visited_transitions = 0
        for record in self.machines.values():
            declared_states += len(record.declared_states)
            visited_states += len(record.declared_states) - len(
                record.uncovered_states()
            )
            declared_transitions += len(record.declared_transitions)
            visited_transitions += len(record.declared_transitions) - len(
                record.uncovered_transitions()
            )
        return {
            "declared_states": declared_states,
            "visited_states": visited_states,
            "declared_transitions": declared_transitions,
            "visited_transitions": visited_transitions,
            "events_sent": sum(self.events_sent.values()),
            "events_dequeued": sum(self.events_dequeued.values()),
            "events_dropped": sum(self.events_dropped.values()),
        }
