"""Campaign telemetry: counters, histograms, and a JSONL event stream.

Coverage (:mod:`repro.testing.coverage`) answers *what the schedules
explored*; this module answers *how the campaign ran* — the shape of the
iterations (steps per schedule, wall time per schedule, schedules/sec
over the campaign's lifetime), how often faults fired and of what kind,
and how much of the scheduling was an actual strategy decision versus a
forced single-choice step.  Stats are picklable and merge associatively,
so they ride on :class:`~repro.testing.engine.TestReport` across
portfolio shards and checkpoint resume exactly like coverage does.

:class:`EventLog` is the second half: an append-only JSONL stream
(``--events FILE`` / ``TestConfig.events_path``) of structured campaign
events — campaign/shard/iteration spans, worker heartbeats and
respawns, watchdog hits, checkpoint writes.  Each event is one JSON
object per line with at least ``ts`` (epoch seconds), ``pid`` and
``type``; portfolio workers append to the same file from multiple
processes, which is safe because each event is a single short
``write()`` of a complete line on a file opened in append mode.  The
``repro serve`` fleet (:mod:`repro.testing.fleet`) streams the same
records over its wire protocol as ``event`` frames and the coordinator
appends them here via :meth:`EventLog.forward`, so a distributed
campaign's event log reads exactly like a local one.  Emission failures
are swallowed: observability must never kill a campaign.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

__all__ = ["Histogram", "TelemetryStats", "EventLog"]


class Histogram:
    """Power-of-two-bucketed counting histogram of non-negative values.

    Bucket ``i`` holds values in ``[2**(i-1), 2**i)`` (bucket 0 holds
    zero), which keeps the merge trivially associative and the pickle
    tiny regardless of how many samples a campaign records.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: float) -> None:
        value = int(value)
        if value < 0:
            value = 0
        bucket = value.bit_length()
        buckets = self.buckets
        buckets[bucket] = buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        buckets = self.buckets
        for bucket, count in other.buckets.items():
            buckets[bucket] = buckets.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def copy(self) -> "Histogram":
        clone = Histogram()
        clone.buckets = dict(self.buckets)
        clone.count = self.count
        clone.total = self.total
        clone.min = self.min
        clone.max = self.max
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.buckets == other.buckets
            and self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
        )

    __hash__ = None  # mutable

    def rows(self) -> List[str]:
        """Human-readable bucket rows (largest first capped implicitly by
        the power-of-two bucketing)."""
        if not self.count:
            return ["  (no samples)"]
        out = []
        for bucket in sorted(self.buckets):
            low = 0 if bucket == 0 else 1 << (bucket - 1)
            high = (1 << bucket) - 1 if bucket else 0
            label = f"{low}" if low == high else f"{low}-{high}"
            out.append(f"  {label:>15}: {self.buckets[bucket]}")
        return out

    def to_json(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 2),
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class TelemetryStats:
    """Mergeable per-campaign execution-shape statistics.

    * ``steps`` — histogram of scheduling steps per iteration;
    * ``iteration_us`` — histogram of per-iteration wall time (µs);
    * ``rate`` — iterations completed per whole second since the shard
      started (``{second_offset: iterations}``), i.e. schedules/sec over
      time, mergeable across shards because offsets are relative;
    * ``fault_kinds`` — injected faults by outcome name (``drop``,
      ``duplicate``, ``delay``, ``crash``);
    * ``consulted`` / ``forced`` — scheduling points where the strategy
      actually chose between ≥1 enabled machines versus points with a
      single forced continuation (the consult ratio says how much
      search-space a strategy is really exercising).
    """

    __slots__ = (
        "iterations",
        "steps",
        "iteration_us",
        "rate",
        "fault_kinds",
        "consulted",
        "forced",
    )

    def __init__(self) -> None:
        self.iterations = 0
        self.steps = Histogram()
        self.iteration_us = Histogram()
        self.rate: Dict[int, int] = {}
        self.fault_kinds: Dict[str, int] = {}
        self.consulted = 0
        self.forced = 0

    def record_iteration(
        self,
        *,
        steps: int,
        scheduling_points: int,
        wall_seconds: float,
        since_start: float,
        consulted: int,
        fault_kinds: Optional[Dict[str, int]] = None,
    ) -> None:
        self.iterations += 1
        self.steps.record(steps)
        self.iteration_us.record(wall_seconds * 1e6)
        second = int(since_start)
        self.rate[second] = self.rate.get(second, 0) + 1
        self.consulted += consulted
        self.forced += max(0, scheduling_points - consulted)
        if fault_kinds:
            kinds = self.fault_kinds
            for name, count in fault_kinds.items():
                if count:
                    kinds[name] = kinds.get(name, 0) + count

    @property
    def consult_ratio(self) -> float:
        decisions = self.consulted + self.forced
        return self.consulted / decisions if decisions else 0.0

    def merge(self, other: "TelemetryStats") -> "TelemetryStats":
        self.iterations += other.iterations
        self.steps.merge(other.steps)
        self.iteration_us.merge(other.iteration_us)
        rate = self.rate
        for second, count in other.rate.items():
            rate[second] = rate.get(second, 0) + count
        kinds = self.fault_kinds
        for name, count in other.fault_kinds.items():
            kinds[name] = kinds.get(name, 0) + count
        self.consulted += other.consulted
        self.forced += other.forced
        return self

    def copy(self) -> "TelemetryStats":
        clone = TelemetryStats()
        clone.iterations = self.iterations
        clone.steps = self.steps.copy()
        clone.iteration_us = self.iteration_us.copy()
        clone.rate = dict(self.rate)
        clone.fault_kinds = dict(self.fault_kinds)
        clone.consulted = self.consulted
        clone.forced = self.forced
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TelemetryStats):
            return NotImplemented
        return (
            self.iterations == other.iterations
            and self.steps == other.steps
            and self.iteration_us == other.iteration_us
            and self.rate == other.rate
            and self.fault_kinds == other.fault_kinds
            and self.consulted == other.consulted
            and self.forced == other.forced
        )

    __hash__ = None  # mutable

    def summary_lines(self) -> List[str]:
        lines = [
            f"iterations: {self.iterations}, "
            f"steps/iter mean {self.steps.mean:.0f} "
            f"(min {self.steps.min or 0}, max {self.steps.max or 0}), "
            f"iter wall mean {self.iteration_us.mean / 1000:.2f}ms",
            f"strategy decisions: {self.consulted} consulted, "
            f"{self.forced} forced "
            f"({self.consult_ratio * 100:.0f}% consulted)",
        ]
        if self.fault_kinds:
            kinds = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.fault_kinds.items())
            )
            lines.append(f"faults injected: {kinds}")
        return lines

    def to_json(self) -> Dict[str, object]:
        return {
            "iterations": self.iterations,
            "steps_per_iteration": self.steps.to_json(),
            "iteration_wall_us": self.iteration_us.to_json(),
            "schedules_per_second": {
                str(k): v for k, v in sorted(self.rate.items())
            },
            "fault_kinds": dict(sorted(self.fault_kinds.items())),
            "decisions": {
                "consulted": self.consulted,
                "forced": self.forced,
                "consult_ratio": round(self.consult_ratio, 4),
            },
        }


class EventLog:
    """Append-only JSONL stream of structured campaign events.

    Multi-process safe by construction: each emit is a single ``write``
    of one complete newline-terminated line on an append-mode file
    descriptor, which POSIX keeps atomic for lines shorter than
    ``PIPE_BUF``.  Never raises from :meth:`emit` — a full disk or a
    vanished file must not take the campaign down with it.
    """

    def __init__(self, path: str, *, shard: Optional[int] = None) -> None:
        self.path = os.fspath(path)
        self.shard = shard
        self._fh = open(self.path, "a", encoding="utf-8")

    def emit(self, type_: str, **fields: object) -> None:
        record: Dict[str, object] = {
            "ts": round(time.time(), 6),
            "pid": os.getpid(),
            "type": type_,
        }
        if self.shard is not None:
            record["shard"] = self.shard
        record.update(fields)
        try:
            self._fh.write(json.dumps(record, default=str) + "\n")
            self._fh.flush()
        except (OSError, ValueError):
            pass  # observability must never kill a campaign

    def forward(self, record: Dict[str, object]) -> None:
        """Append a pre-built record verbatim — the path a fleet
        coordinator uses for records that arrived over the wire already
        stamped (ts/pid/shard) by the worker that produced them.  Same
        durability rules as :meth:`emit`: never raises."""
        try:
            self._fh.write(json.dumps(record, default=str) + "\n")
            self._fh.flush()
        except (OSError, ValueError, TypeError):
            pass

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
