"""Render and persist campaign observability artifacts.

A campaign's :class:`~repro.testing.engine.TestReport` — including its
:class:`~repro.testing.coverage.CoverageMap` and
:class:`~repro.testing.telemetry.TelemetryStats` — can be saved to disk
(:func:`save_report`), loaded back (:func:`load_campaign`, which also
reads crash checkpoints and merges their completed shards), and rendered
three ways:

* :func:`coverage_table` — a plain-text table of per-machine state and
  transition coverage plus the *names* of everything declared but never
  visited, so "what did this campaign fail to explore?" has a concrete
  answer;
* :func:`report_json` — a machine-readable dict for CI round-trips and
  dashboards;
* :func:`coverage_dot` — a Graphviz rendering of the explored state
  space, visited states filled and unvisited ones dashed.

Everything here is read-side: no function in this module mutates the
report it is handed.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import TYPE_CHECKING, Any, Dict, List

from ..errors import PSharpError
from .coverage import CoverageMap
from .engine import TestReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

#: Bumped when the saved-report layout changes incompatibly.
REPORT_VERSION = 1

_REPORT_KIND = "campaign-report"


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------
def save_report(path: "str | os.PathLike", report: TestReport) -> None:
    """Atomically persist ``report`` (detached) to ``path``.

    The file is a versioned pickle; :func:`load_campaign` reads it back.
    The write goes through a temp file in the same directory +
    ``os.replace`` so a kill mid-write never leaves a torn file."""
    path = os.fspath(path)
    payload = {
        "version": REPORT_VERSION,
        "kind": _REPORT_KIND,
        "report": report.detached(),
    }
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_campaign(path: "str | os.PathLike") -> TestReport:
    """Load a campaign report from ``path``.

    Accepts two on-disk shapes:

    * a report file written by :func:`save_report`;
    * a campaign checkpoint written by
      :func:`~repro.testing.checkpoint.save_checkpoint` — the completed
      shards are merged (in shard order) into one report, so a crashed
      campaign's partial coverage is still inspectable.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            state = pickle.load(fh)
    except OSError as exc:
        raise PSharpError(f"cannot read report file {path!r}: {exc}") from exc
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError,
            IndexError, ValueError) as exc:
        raise PSharpError(f"corrupt report file {path!r}: {exc}") from exc
    if isinstance(state, TestReport):
        return state
    if not isinstance(state, dict):
        raise PSharpError(
            f"{path!r} is neither a campaign report nor a checkpoint"
        )
    if state.get("kind") == _REPORT_KIND:
        if state.get("version") != REPORT_VERSION:
            raise PSharpError(
                f"report {path!r} has version {state.get('version')!r}; "
                f"this build reads version {REPORT_VERSION}"
            )
        report = state.get("report")
        if not isinstance(report, TestReport):
            raise PSharpError(f"corrupt report file {path!r}: no report inside")
        return report
    if "completed" in state and "specs" in state:
        completed = state["completed"]
        shards = [completed[index] for index in sorted(completed)]
        if not shards:
            return TestReport(strategy="checkpoint")
        return TestReport.merged(shards, strategy="checkpoint")
    raise PSharpError(
        f"{path!r} is neither a campaign report nor a checkpoint"
    )


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------
def _percent(value: float) -> str:
    return f"{value * 100:.0f}%"


def coverage_table(
    coverage: CoverageMap, *, max_uncovered: int = 25
) -> List[str]:
    """Render ``coverage`` as plain-text lines.

    One row per machine class (monitors flagged), a totals line, and —
    the part that makes a campaign's blind spots actionable — the names
    of every declared-but-unvisited state and transition, capped at
    ``max_uncovered`` entries each with an explicit "and N more" line so
    truncation is never silent."""
    if not coverage:
        return ["activity coverage: nothing recorded (campaign ran 0 schedules?)"]
    rows = []
    for name in sorted(coverage.machines):
        mc = coverage.machines[name]
        label = f"{name} (monitor)" if mc.is_monitor else name
        rows.append((
            label,
            f"{len(mc.states_visited)}/{len(mc.declared_states)}",
            f"{len(mc.transitions_taken)}/{len(mc.declared_transitions)}"
            f" ({_percent(mc.transition_coverage)})",
            str(mc.instances),
            str(mc.halts),
        ))
    header = ("machine", "states", "transitions", "instances", "halts")
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows))
        for col in range(len(header))
    ]
    lines = ["activity coverage:"]
    lines.append(
        "  " + "  ".join(header[col].ljust(widths[col]) for col in range(5))
    )
    for row in rows:
        lines.append(
            "  " + "  ".join(row[col].ljust(widths[col]) for col in range(5))
        )
    totals = coverage.totals()
    lines.append(
        f"  total: {totals['visited_states']}/{totals['declared_states']} states, "
        f"{totals['visited_transitions']}/{totals['declared_transitions']} "
        f"transitions; events sent={totals['events_sent']} "
        f"dequeued={totals['events_dequeued']} dropped={totals['events_dropped']}"
    )

    uncovered_states = [
        f"{name}: {state}"
        for name in sorted(coverage.machines)
        for state in coverage.machines[name].uncovered_states()
    ]
    uncovered_transitions = [
        f"{name}: {src} --{event}--> {dst}"
        for name in sorted(coverage.machines)
        for src, event, dst in coverage.machines[name].uncovered_transitions()
    ]
    for title, items in (
        ("uncovered states", uncovered_states),
        ("uncovered transitions", uncovered_transitions),
    ):
        if not items:
            continue
        lines.append(f"  {title} ({len(items)}):")
        for item in items[:max_uncovered]:
            lines.append(f"    {item}")
        if len(items) > max_uncovered:
            lines.append(f"    ... and {len(items) - max_uncovered} more")
    if not uncovered_states and not uncovered_transitions:
        lines.append("  every declared state and transition was visited")
    return lines


# ---------------------------------------------------------------------------
# JSON rendering
# ---------------------------------------------------------------------------
def report_json(report: TestReport) -> Dict[str, Any]:
    """A machine-readable view of ``report`` for CI and dashboards."""
    out: Dict[str, Any] = {
        "strategy": report.strategy,
        "iterations": report.iterations,
        "buggy_iterations": report.buggy_iterations,
        "bugs": len(report.bugs),
        "distinct_bugs": report.distinct_bugs,
        "total_scheduling_points": report.total_scheduling_points,
        "elapsed": report.elapsed,
        "exhausted": report.exhausted,
        "timed_out": report.timed_out,
        "interrupted": report.interrupted,
        "watchdog_hits": report.watchdog_hits,
        "effective_backend": report.effective_backend,
        "faults_injected": report.faults_injected,
        "fault_kinds": dict(report.fault_kinds),
        "consulted_decisions": report.consulted_decisions,
        # Schedule-space reduction: distinct fingerprinted states, pruned
        # schedules/subtrees, and the redundancy they imply.  Summed
        # across shards by TestReport.merge (per-shard caches are
        # private, so the merged distinct-state figure is an upper
        # bound); all zero when the campaign ran with reduction="none".
        "distinct_states": report.distinct_states,
        "schedules_pruned": report.schedules_pruned,
        "redundancy_ratio": report.redundancy_ratio,
        "first_bug": (
            None if report.first_bug is None else {
                "kind": report.first_bug.kind,
                "message": report.first_bug.message,
                "iteration": report.first_bug_iteration,
            }
        ),
    }
    if report.coverage is not None:
        out["coverage"] = report.coverage.to_json()
        out["coverage_fingerprint"] = report.coverage.fingerprint()
    if report.telemetry is not None:
        out["telemetry"] = report.telemetry.to_json()
    return out


# ---------------------------------------------------------------------------
# Graphviz rendering
# ---------------------------------------------------------------------------
def _dot_quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def coverage_dot(coverage: CoverageMap) -> str:
    """Render ``coverage`` as a Graphviz digraph.

    One cluster per machine class; visited states are filled boxes,
    declared-but-unvisited ones dashed; taken transitions are solid
    edges labelled with the event name, untaken declared ones dashed
    grey.  Paste into ``dot -Tsvg`` to *see* what a campaign explored."""
    lines = [
        "digraph coverage {",
        "  rankdir=LR;",
        '  node [shape=box, style="rounded"];',
    ]
    for idx, name in enumerate(sorted(coverage.machines)):
        mc = coverage.machines[name]
        lines.append(f"  subgraph cluster_{idx} {{")
        title = f"{name} (monitor)" if mc.is_monitor else name
        lines.append(f"    label={_dot_quote(title)};")
        states = sorted(set(mc.declared_states) | set(mc.states_visited))
        for state in states:
            node = _dot_quote(f"{name}.{state}")
            if state in mc.states_visited:
                style = 'style="rounded,filled", fillcolor="#cfe8cf"'
            else:
                style = 'style="rounded,dashed", color="#888888"'
            lines.append(
                f"    {node} [label={_dot_quote(state)}, {style}];"
            )
        edges = sorted(set(mc.declared_transitions) | set(mc.transitions_taken))
        for src, event, dst in edges:
            src_node = _dot_quote(f"{name}.{src}")
            dst_node = _dot_quote(f"{name}.{dst}")
            attrs = f"label={_dot_quote(event)}"
            if (src, event, dst) not in mc.transitions_taken:
                attrs += ', style=dashed, color="#888888", fontcolor="#888888"'
            lines.append(f"    {src_node} -> {dst_node} [{attrs}];")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"
