"""Parallel portfolio testing: many strategies racing in separate processes.

The paper's Table 2 measures single-strategy, single-process campaigns.
Two observations push beyond that:

* No single search heuristic dominates — DFS exhausts shallow corners,
  random sampling finds the deep rare bugs, PCT and delay-bounding carry
  probabilistic guarantees for bounded-depth bugs.  Running a *portfolio*
  of diverse strategies hedges across bug depths, the same way portfolio
  SAT/SMT solvers combine complementary heuristics.
* One schedule-controlled execution serializes everything on purpose, so
  a campaign's schedules/sec is capped by one core.  Sharding workers
  across processes recovers the hardware's parallelism.

:class:`PortfolioEngine` runs one worker process per
:class:`StrategySpec`.  Each worker drives the same iteration loop as a
plain :class:`~repro.testing.engine.TestingEngine`
(:func:`~repro.testing.engine.drive`), constructs its strategy from its
picklable spec via the strategy-factory registry, and reports a
*detached* (picklable) :class:`~repro.testing.engine.TestReport` back.
The first worker to find a bug wins: a shared cancellation event stops
the others (polled between iterations and inside long ones), and the
winner's :class:`~repro.testing.trace.ScheduleTrace` replays
deterministically in the parent via :func:`repro.testing.engine.replay`.
"""

from __future__ import annotations

import ast
import multiprocessing
import os
import queue as queue_module
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Type

if TYPE_CHECKING:  # circular at runtime: config is the layer above
    from .config import TestConfig

from ..core.machine import Machine
from ..errors import PSharpError
from .checkpoint import (
    config_fingerprint,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from .engine import TestReport, drive, replay
from .reduction import DEFAULT_STATE_CACHE_SIZE
from .runtime import ExecutionResult
from .telemetry import EventLog
from .strategies import (
    DelayBoundingStrategy,
    DfsStrategy,
    FairRandomStrategy,
    IterativeDeepeningDfsStrategy,
    PctStrategy,
    RandomStrategy,
    SchedulingStrategy,
)


# ---------------------------------------------------------------------------
# Strategy specs + factory registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StrategySpec:
    """A picklable recipe for constructing a scheduling strategy.

    Workers build strategies from specs instead of receiving live strategy
    objects: strategies hold RNGs and mutable search state that must start
    fresh in the worker, and some (DFS stacks) are not meaningfully
    picklable anyway.
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __hash__(self) -> int:
        # The auto-generated frozen-dataclass hash would raise on the dict
        # field; specs are natural set/dict-key material, so hash by value.
        return hash((self.name, tuple(sorted(self.params.items()))))

    def build(self) -> SchedulingStrategy:
        return make_strategy(self)

    def label(self) -> str:
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}({inner})"

    @classmethod
    def parse(cls, text: str) -> "StrategySpec":
        """Parse ``"name"`` or ``"name,kw=value,..."`` into a spec — the
        ``--strategy`` syntax of the ``python -m repro`` CLI.  Values go
        through ``ast.literal_eval`` (so ``seed=7`` is an int and
        ``bias=0.7`` a float) and fall back to the raw string."""
        name, _, rest = text.partition(",")
        name = name.strip()
        if not name:
            raise PSharpError(f"empty strategy name in {text!r}")
        params: Dict[str, Any] = {}
        if rest.strip():
            for pair in rest.split(","):
                key, sep, value = pair.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise PSharpError(
                        f"malformed strategy parameter {pair.strip()!r} in "
                        f"{text!r} (expected kw=value)"
                    )
                try:
                    params[key] = ast.literal_eval(value.strip())
                except (ValueError, SyntaxError):
                    params[key] = value.strip()
        return cls(name, params)


StrategyFactory = Callable[..., SchedulingStrategy]

_STRATEGY_FACTORIES: Dict[str, StrategyFactory] = {
    "random": RandomStrategy,
    "fair-random": FairRandomStrategy,
    "dfs": DfsStrategy,
    "iddfs": IterativeDeepeningDfsStrategy,
    "pct": PctStrategy,
    "delay-bounding": DelayBoundingStrategy,
}


def register_strategy(name: str, factory: StrategyFactory) -> None:
    """Register a custom strategy factory under ``name`` so portfolio specs
    can refer to it."""
    _STRATEGY_FACTORIES[name] = factory


def strategy_names() -> List[str]:
    return sorted(_STRATEGY_FACTORIES)


def make_strategy(spec: StrategySpec) -> SchedulingStrategy:
    try:
        factory = _STRATEGY_FACTORIES[spec.name]
    except KeyError:
        raise PSharpError(
            f"unknown strategy {spec.name!r}; known: {', '.join(strategy_names())}"
        ) from None
    try:
        return factory(**spec.params)
    except TypeError as exc:
        # A misspelled/extra parameter is a configuration error, not a
        # crash: surface it as the library's error type so callers (the
        # CLI's exit-2 path, the portfolio's fail-fast loop) report it
        # cleanly.
        raise PSharpError(
            f"invalid parameters for strategy {spec.label()!r}: {exc}"
        ) from exc


# The diverse default mix the portfolio cycles through: a fair random
# sampler, PCT at several priority-change budgets, delay-bounding at
# several delay budgets, and iterative-deepening DFS for the systematic
# shallow sweep (ISSUE: "random, PCT with varied priority-change budgets,
# delay-bounding with varied delay budgets, iterative-deepening DFS").
_DEFAULT_TEMPLATES: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("random", {}),
    ("pct", {"depth": 3}),
    ("delay-bounding", {"delays": 2}),
    ("iddfs", {}),
    ("pct", {"depth": 10}),
    ("delay-bounding", {"delays": 4}),
    ("pct", {"depth": 20}),
    ("delay-bounding", {"delays": 8}),
    # The fair scheduler rides at the end of the cycle: wide portfolios
    # gain a worker whose long executions stay meaningful, which is what
    # liveness-monitor temperature detection needs.
    ("fair-random", {}),
)

_SEEDED = {"random", "fair-random", "pct", "delay-bounding"}


def default_portfolio(workers: int, seed: Optional[int] = None) -> List[StrategySpec]:
    """``workers`` specs cycling through the default strategy mix, with
    distinct derived seeds so same-named workers explore differently."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    # An unseeded portfolio must vary across runs (like an unseeded
    # RandomStrategy), not silently behave as seed=0.
    base_seed = seed if seed is not None else random.randrange(2**31)
    specs = []
    for index in range(workers):
        name, params = _DEFAULT_TEMPLATES[index % len(_DEFAULT_TEMPLATES)]
        params = dict(params)
        if name in _SEEDED:
            params["seed"] = base_seed * 10_007 + index
        specs.append(StrategySpec(name, params))
    return specs


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------
def _portfolio_worker(
    index: int,
    spec: StrategySpec,
    main_cls: Type[Machine],
    payload: Any,
    config: Dict[str, Any],
    deadline: float,
    cancel: Any,  # multiprocessing.Event
    results: Any,  # multiprocessing.Queue
    heartbeats: Any = None,  # multiprocessing.Array('d', ...) or None
) -> None:
    """Run one strategy's shard of the campaign; always report back.

    ``heartbeats[index]`` is refreshed from the runtime's stop-check
    poll, which fires between iterations and inside long executions —
    a worker whose slot goes stale is wedged (or dead) and the parent
    may terminate and respawn it."""
    if heartbeats is not None:

        def stop_check() -> bool:
            heartbeats[index] = time.monotonic()
            return cancel.is_set()

    else:
        stop_check = cancel.is_set
    # Per-shard event stream: workers append to the same JSONL file as
    # the parent (single-line appends are multi-process safe), tagged
    # with their shard index.
    events_path = config.get("events_path")
    events = (
        EventLog(events_path, shard=index) if events_path is not None else None
    )
    try:
        strategy = make_strategy(spec)
        report = drive(
            main_cls,
            payload,
            strategy,
            max_iterations=config["max_iterations"],
            time_limit=None,
            max_steps=config["max_steps"],
            stop_on_first_bug=config["stop_on_first_bug"],
            livelock_as_bug=config["livelock_as_bug"],
            record_traces=config["record_traces"],
            runtime_factory=config["runtime_factory"],
            deadline=deadline,
            stop_check=stop_check,
            workers=config["runtime_workers"],
            monitors=config["monitors"],
            max_hot_steps=config["max_hot_steps"],
            faults=config.get("faults"),
            iteration_timeout=config.get("iteration_timeout"),
            coverage=config.get("coverage", False),
            events=events,
            reduction=config.get("reduction", "none"),
            state_cache_size=config.get("state_cache_size", DEFAULT_STATE_CACHE_SIZE),
        )
        if config["stop_on_first_bug"] and report.first_bug is not None:
            cancel.set()
        results.put((index, report.detached()))
    except Exception as exc:  # noqa: BLE001 - never strand the parent
        results.put((index, TestReport(strategy=spec.label())))
        raise SystemExit(f"portfolio worker {index} ({spec.label()}) failed: {exc}")
    finally:
        if events is not None:
            events.close()


# ---------------------------------------------------------------------------
# The portfolio runner
# ---------------------------------------------------------------------------
def merge_shard_reports(
    specs: Sequence[StrategySpec],
    collected: Dict[int, TestReport],
    *,
    strategy: str = "portfolio",
    winner_index: Optional[int] = None,
    elapsed: Optional[float] = None,
    interrupted: bool = False,
) -> TestReport:
    """Fold per-shard reports into one campaign report, in shard order.

    The one merge path every sharded campaign shape shares — the local
    portfolio runner and the distributed fleet coordinator
    (:mod:`repro.testing.fleet`) both end here, so "what does a merged
    report mean" has a single answer.  Shards missing from ``collected``
    (worker died, missed the flush window, never assigned) contribute an
    empty report so the merge arithmetic stays honest; distinct-bug
    dedup by trace fingerprint happens inside
    :meth:`TestReport.merged`."""
    ordered = []
    for index, spec in enumerate(specs):
        report = collected.get(index)
        if report is None:
            report = TestReport(strategy=spec.label())
        if report.strategy != spec.label():
            report.strategy = spec.label()
        ordered.append(report)
    campaign = TestReport.merged(ordered, strategy=strategy)
    if elapsed is not None:
        campaign.elapsed = elapsed
    if interrupted:
        campaign.interrupted = True
    if winner_index is not None and winner_index in collected:
        winning = collected[winner_index]
        campaign.first_bug = winning.first_bug
        campaign.first_bug_iteration = winning.first_bug_iteration
    return campaign


#: extra seconds granted after the deadline/cancellation for workers to
#: flush their final reports before being terminated.
DEFAULT_GRACE = 10.0

#: how long a worker's heartbeat slot may go unrefreshed before the
#: parent declares it wedged and puts it down (see _portfolio_worker).
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: how many times a dead/wedged shard is restarted before being abandoned.
DEFAULT_MAX_RESPAWNS = 2


def run_portfolio(
    config: "TestConfig",
    *,
    grace: float = DEFAULT_GRACE,
    checkpoint: "str | os.PathLike | None" = None,
    resume: "str | os.PathLike | None" = None,
    heartbeat_timeout: Optional[float] = DEFAULT_HEARTBEAT_TIMEOUT,
    max_respawns: int = DEFAULT_MAX_RESPAWNS,
) -> TestReport:
    """Run a sharded multi-process campaign described by a
    :class:`~repro.testing.config.TestConfig`.

    The core of what used to live inside ``PortfolioEngine.run`` (that
    class is now a thin shim over this function, as is
    :meth:`~repro.testing.config.Campaign.portfolio`): one worker process
    per strategy spec (``config.specs``, or the default diverse mix sized
    by ``config.portfolio_workers``), the shared deadline, first-bug-wins
    cancellation, and the honest merge of detached per-worker reports —
    including ``effective_backend``, which each worker's
    :func:`~repro.testing.engine.drive` resolves process-locally from
    ``config.workers`` (``"auto"`` gives every worker the inline runtime
    with the pooled fallback).

    The campaign is robust to its own failures:

    * every worker refreshes a shared heartbeat slot; a worker that dies
      (OOM-kill, segfault) or stops heartbeating for ``heartbeat_timeout``
      seconds is detected, terminated if needed, and its shard restarted
      from scratch with exponential backoff — up to ``max_respawns``
      times, after which the shard is abandoned (an empty report keeps
      the merge arithmetic honest);
    * ``checkpoint`` names a file that atomically receives the campaign's
      progress (the detached report of every completed shard + the
      materialized strategy mix) after each shard finishes; ``resume``
      restarts a killed campaign from such a file, re-running only the
      shards that had not completed (``checkpoint`` defaults to the
      ``resume`` path so the resumed campaign keeps checkpointing);
    * Ctrl-C (``KeyboardInterrupt``) degrades gracefully: workers are
      cancelled, already-finished shards get a short flush window, a
      final checkpoint is written, and the merged partial report comes
      back with ``interrupted=True`` instead of a traceback;
    * every child process ever spawned is terminated and joined on the
      way out — no leaked children, whatever path exits the loop.
    """
    main_cls, payload, monitors = config.resolve_program()
    completed: Dict[int, TestReport] = {}
    if resume is not None:
        state = load_checkpoint(resume)
        verify_checkpoint(state, config, os.fspath(resume))
        # The stored mix, not a regenerated one: the default portfolio
        # draws fresh seeds per call, so shard indices only line up with
        # the checkpoint's completed-set against the original specs.
        specs = list(state["specs"])
        completed = dict(state["completed"])
        if checkpoint is None:
            checkpoint = resume
    else:
        specs = list(config.portfolio_specs())
    for spec in specs:
        # Fail fast in the parent: a typo'd strategy name or parameter
        # must raise here, not silently produce an empty worker shard.
        make_strategy(spec)
    fingerprint = config_fingerprint(config) if checkpoint is not None else None
    start_method = config.start_method
    if start_method is None:
        # fork shares the already-imported program modules with workers;
        # fall back to the platform default elsewhere.
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else methods[0]

    ctx = multiprocessing.get_context(start_method)
    cancel = ctx.Event()
    results = ctx.Queue()
    # Raw shared doubles, one per shard: each worker stamps its slot with
    # time.monotonic() from its stop-check poll.  No lock: single-writer
    # per slot, and a torn read merely mis-times one staleness check.
    heartbeats = ctx.Array("d", max(1, len(specs)), lock=False)
    deadline = (
        time.monotonic() + config.time_limit
        if config.time_limit is not None
        else float("inf")
    )
    worker_config = {
        "max_iterations": config.max_iterations,
        "max_steps": config.max_steps,
        "stop_on_first_bug": config.stop_on_first_bug,
        "livelock_as_bug": config.livelock_as_bug,
        "record_traces": config.record_traces,
        # Crosses the process boundary: under a "spawn"/"forkserver"
        # start method the factory must be picklable (module-level).
        "runtime_factory": config.runtime_factory,
        "runtime_workers": config.workers,
        "monitors": tuple(monitors),
        "max_hot_steps": config.max_hot_steps,
        "faults": config.resolved_faults(),
        "iteration_timeout": config.iteration_timeout,
        "coverage": config.coverage,
        "events_path": config.events_path,
        "reduction": config.reduction,
        "state_cache_size": config.state_cache_size,
    }
    # Parent-side event stream: campaign lifecycle, worker supervision
    # and checkpoint writes.  Workers append shard-tagged records to the
    # same file; line-sized appends interleave safely.
    events = (
        EventLog(config.events_path) if config.events_path is not None else None
    )
    if events is not None:
        events.emit(
            "campaign_start",
            program=str(config.program),
            specs=[spec.label() for spec in specs],
            resumed=resume is not None,
            completed_shards=sorted(completed),
        )

    collected: Dict[int, TestReport] = dict(completed)
    checkpointed: Dict[int, TestReport] = dict(completed)
    running: Dict[int, Any] = {}
    all_children: List[Any] = []
    respawns: Dict[int, int] = {}
    respawn_at: Dict[int, float] = {}
    abandoned: Set[int] = set()
    winner_index: Optional[int] = None
    interrupted = False
    hard_stop = deadline + grace
    wall_start = time.perf_counter()

    def spawn(index: int) -> None:
        heartbeats[index] = time.monotonic()
        process = ctx.Process(
            target=_portfolio_worker,
            args=(
                index, specs[index], main_cls, payload, worker_config,
                deadline, cancel, results, heartbeats,
            ),
            daemon=True,
            name=f"portfolio-{index}-{specs[index].name}",
        )
        all_children.append(process)
        running[index] = process
        process.start()
        if events is not None:
            events.emit(
                "worker_spawn",
                shard=index,
                spec=specs[index].label(),
                attempt=respawns.get(index, 0),
                pid=process.pid,
            )

    def accept(index: int, report: TestReport, *, flush_only: bool = False) -> None:
        nonlocal winner_index, hard_stop
        collected[index] = report
        running.pop(index, None)
        respawn_at.pop(index, None)
        if not flush_only:
            # Reports that land after Ctrl-C are partial (the worker was
            # cancelled mid-shard): merge them into the campaign report,
            # but never mark them completed in the checkpoint — a resume
            # must re-run those shards in full.
            checkpointed[index] = report
            if checkpoint is not None:
                save_checkpoint(
                    checkpoint,
                    fingerprint=fingerprint,
                    specs=specs,
                    completed=checkpointed,
                )
                if events is not None:
                    events.emit(
                        "checkpoint",
                        path=os.fspath(checkpoint),
                        completed_shards=sorted(checkpointed),
                    )
        if (
            winner_index is None
            and report.first_bug is not None
            and config.stop_on_first_bug
        ):
            winner_index = index
            cancel.set()
            # The rest will stop at their next poll; give them only a
            # short flush window instead of the full remaining budget.
            hard_stop = min(hard_stop, time.monotonic() + grace)

    # A resumed campaign whose checkpointed shards already hold the bug
    # is finished: don't re-spawn the incomplete shards just to cancel
    # them immediately.
    if config.stop_on_first_bug:
        for index in sorted(completed):
            if completed[index].first_bug is not None:
                winner_index = index
                break

    try:
        try:
            if winner_index is None:
                for index in range(len(specs)):
                    if index not in collected:
                        spawn(index)
            while len(collected) + len(abandoned) < len(specs):
                budget = hard_stop - time.monotonic()
                if budget <= 0:
                    break
                # Drain everything queued before judging liveness, so a
                # worker that reported and exited is never declared dead.
                drained = False
                while True:
                    try:
                        index, report = results.get_nowait()
                    except queue_module.Empty:
                        break
                    drained = True
                    accept(index, report)
                if len(collected) + len(abandoned) >= len(specs):
                    break
                now = time.monotonic()
                for index, process in list(running.items()):
                    stale = (
                        heartbeat_timeout is not None
                        and now - heartbeats[index] > heartbeat_timeout
                    )
                    if process.is_alive() and not stale:
                        continue
                    if process.is_alive():
                        # Wedged (stale heartbeat): put it down before
                        # restarting the shard.
                        process.terminate()
                        process.join(timeout=1.0)
                    running.pop(index)
                    attempts = respawns.get(index, 0)
                    if cancel.is_set() or attempts >= max_respawns:
                        abandoned.add(index)
                        if events is not None:
                            events.emit(
                                "worker_abandoned",
                                shard=index,
                                spec=specs[index].label(),
                                attempts=attempts,
                                stale=stale,
                            )
                    else:
                        respawns[index] = attempts + 1
                        respawn_at[index] = now + 0.5 * (2 ** attempts)
                        if events is not None:
                            events.emit(
                                "worker_respawn",
                                shard=index,
                                spec=specs[index].label(),
                                attempt=respawns[index],
                                stale=stale,
                            )
                for index, due in list(respawn_at.items()):
                    if cancel.is_set():
                        respawn_at.pop(index)
                        abandoned.add(index)
                    elif now >= due:
                        respawn_at.pop(index)
                        spawn(index)
                if not running and not respawn_at:
                    # Nothing is executing and nothing is scheduled to —
                    # no further results can arrive (e.g. a resumed
                    # checkpoint already held the winning bug).
                    break
                if not drained:
                    try:
                        index, report = results.get(timeout=min(budget, 0.25))
                    except queue_module.Empty:
                        continue
                    accept(index, report)
        except KeyboardInterrupt:
            # Graceful degradation: cancel the fleet, give shards that
            # already finished a short window to flush their reports,
            # persist a final checkpoint, and fall through to the merge
            # with interrupted=True (the CLI maps that to exit 130).
            interrupted = True
            cancel.set()
            if events is not None:
                events.emit("interrupted")
            flush_stop = time.monotonic() + min(grace, 2.0)
            while (
                len(collected) + len(abandoned) < len(specs)
                and time.monotonic() < flush_stop
            ):
                try:
                    index, report = results.get(timeout=0.1)
                except (queue_module.Empty, KeyboardInterrupt):
                    continue
                accept(index, report, flush_only=True)
            if checkpoint is not None:
                save_checkpoint(
                    checkpoint,
                    fingerprint=fingerprint,
                    specs=specs,
                    completed=checkpointed,
                )
    finally:
        # Leak-proof shutdown: every child ever spawned is terminated and
        # joined on every exit path (normal, winner, deadline, Ctrl-C,
        # exception) so no campaign strands worker processes.
        cancel.set()
        for process in all_children:
            if process.is_alive():
                process.terminate()
        for process in all_children:
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)

    # Late flushes can still land after the loop gave up on a worker.
    while len(collected) < len(specs):
        try:
            index, report = results.get_nowait()
        except queue_module.Empty:
            break
        collected.setdefault(index, report)
    results.close()

    campaign = merge_shard_reports(
        specs,
        collected,
        strategy="portfolio",
        winner_index=winner_index,
        elapsed=time.perf_counter() - wall_start,
        interrupted=interrupted,
    )
    if events is not None:
        events.emit(
            "campaign_end",
            iterations=campaign.iterations,
            bugs=len(campaign.bugs),
            elapsed=round(campaign.elapsed, 6),
            interrupted=interrupted,
            abandoned_shards=sorted(abandoned),
        )
        events.close()
    return campaign


# ---------------------------------------------------------------------------
# The portfolio engine
# ---------------------------------------------------------------------------
class PortfolioEngine:
    """Shard a bug-finding campaign across a pool of strategy workers.

    Each spec in ``specs`` becomes one worker process running
    ``max_iterations`` schedules (the per-worker shard) within the shared
    ``time_limit``.  With ``stop_on_first_bug`` (the default) the first
    worker to find a bug cancels the rest; the campaign report's
    ``first_bug`` is that winner's, its trace ready for deterministic
    replay in this process via :meth:`replay_winner`.

    A 1-spec portfolio is behaviourally identical to a
    :class:`~repro.testing.engine.TestingEngine` run with that strategy —
    both execute :func:`~repro.testing.engine.drive`.

    .. deprecated::
        ``PortfolioEngine`` is kept as a thin shim over the declarative
        facade: its ``run`` builds a :class:`repro.testing.config
        .TestConfig` and calls :func:`run_portfolio` — prefer
        ``Campaign(config).portfolio()``.
    """

    __test__ = False

    #: per-instance override of the worker flush window (see DEFAULT_GRACE).
    grace = DEFAULT_GRACE

    def __init__(
        self,
        main_cls: Type[Machine],
        payload: Any = None,
        *,
        specs: Optional[Sequence[StrategySpec]] = None,
        workers: Optional[int] = None,
        seed: Optional[int] = None,
        max_iterations: int = 10_000,
        time_limit: float = 300.0,
        max_steps: int = 20_000,
        stop_on_first_bug: bool = True,
        livelock_as_bug: bool = False,
        start_method: Optional[str] = None,
        runtime_workers: str = "auto",
        monitors: Sequence[type] = (),
        max_hot_steps: int = 1000,
    ) -> None:
        if specs is None:
            specs = default_portfolio(workers if workers is not None else 4, seed)
        elif workers is not None and workers != len(specs):
            raise ValueError("pass either specs or workers, not conflicting both")
        if not specs:
            raise ValueError("portfolio needs at least one strategy spec")
        self.main_cls = main_cls
        self.payload = payload
        self.specs = [
            spec if isinstance(spec, StrategySpec) else StrategySpec(*spec)
            for spec in specs
        ]
        for spec in self.specs:
            # Fail fast in the parent: a typo'd strategy name or parameter
            # must raise here, not silently produce an empty worker shard.
            make_strategy(spec)
        self.max_iterations = max_iterations
        self.time_limit = time_limit
        self.max_steps = max_steps
        self.stop_on_first_bug = stop_on_first_bug
        self.livelock_as_bug = livelock_as_bug
        if runtime_workers not in ("auto", "inline", "pool", "spawn"):
            raise ValueError(
                "runtime_workers must be 'auto', 'inline', 'pool' or "
                f"'spawn', got {runtime_workers!r}"
            )
        # Worker back-end each subprocess's runtime uses: "auto" (default)
        # gives every worker the single-thread inline continuation runtime
        # with a transparent process-local fallback to pooled threads;
        # concrete modes pin the back-end.
        self.runtime_workers = runtime_workers
        # Monitor *classes* ship to workers (picklable by reference, like
        # the program's machine classes); instances are per-execution.
        self.monitors = tuple(monitors)
        self.max_hot_steps = max_hot_steps
        # None flows through to run_portfolio, the single place the
        # fork-preference default is resolved.
        self.start_method = start_method
        self.last_report: Optional[TestReport] = None

    # ------------------------------------------------------------------
    def run(self) -> TestReport:
        # Deferred import: config is the layer above this module.
        from .config import TestConfig

        config = TestConfig(
            program=self.main_cls,
            payload=self.payload,
            specs=tuple(self.specs),
            max_iterations=self.max_iterations,
            time_limit=self.time_limit,
            max_steps=self.max_steps,
            stop_on_first_bug=self.stop_on_first_bug,
            livelock_as_bug=self.livelock_as_bug,
            workers=self.runtime_workers,
            monitors=self.monitors,
            max_hot_steps=self.max_hot_steps,
            start_method=self.start_method,
        )
        campaign = run_portfolio(config, grace=self.grace)
        self.last_report = campaign
        return campaign

    # ------------------------------------------------------------------
    def replay_winner(
        self, report: Optional[TestReport] = None
    ) -> Optional[ExecutionResult]:
        """Replay the campaign-winning schedule in *this* process.

        Returns the replay's :class:`ExecutionResult`, or None when the
        campaign found no bug (or recorded no trace)."""
        report = report if report is not None else self.last_report
        if report is None or report.first_bug is None or report.first_bug.trace is None:
            return None
        return replay(
            self.main_cls,
            report.first_bug.trace,
            payload=self.payload,
            max_steps=self.max_steps,
            livelock_as_bug=self.livelock_as_bug,
            monitors=self.monitors,
            max_hot_steps=self.max_hot_steps,
        )
