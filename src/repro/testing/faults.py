"""Deterministic fault injection: faults as controlled nondeterminism.

The P# paper's flagship case studies found bugs in *fault-tolerant*
protocols precisely because the tester modeled node failures and message
losses as nondeterministic choices under the scheduler's control —
"modeling failures nondeterministically" is what let the extinction
protocol and live-table-migration bugs surface (Sections 2 and 7).  This
module provides the configuration surface for that idea: a frozen
:class:`FaultConfig` describing which faults the tester may inject and how
often, attached to a :class:`~repro.testing.config.TestConfig` (or a
benchmark registry :class:`~repro.bench.registry.Variant`).

Every injected fault is a *strategy decision*, recorded in the
:class:`~repro.testing.trace.ScheduleTrace` under the ``"fault"`` kind, so
a faulty execution replays bit-identically: ``ReplayStrategy`` re-fires
exactly the recorded faults and never invents new ones.

Four fault kinds are supported:

``drop``
    A sent message is lost in transit (the monitor mirror still observes
    the send — specifications watch machine *actions*, not the network).
``duplicate``
    A sent message is delivered twice.
``delay``
    A sent message overtakes the previously queued message (pairwise
    reordering of the target's inbox).
``crash``
    The currently scheduled machine crash-restarts between two steps: its
    inbox and volatile fields are wiped, fields named in the machine's
    ``persistent_fields`` survive (when ``persistent_state`` is true), and
    the machine re-enters its initial state with its original creation
    payload — the P# model of a node rebooting from durable storage.

Probabilities are interpreted per decision point by the active strategy
(randomized strategies draw from their seeded RNG; DFS enumerates both
branches systematically), quantized to permille so the decision weights
are integers on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Probability quantization: fault weights are integers in [0, FAULT_SCALE]
#: (permille).  Strategies compare a draw against the weight.
FAULT_SCALE = 1000

# Fault outcome codes, recorded as the value of a ``"fault"`` trace entry.
FAULT_NONE = 0
FAULT_DROP = 1
FAULT_DUPLICATE = 2
FAULT_DELAY = 3
FAULT_CRASH = 4

_OUTCOME_NAMES = ("none", "drop", "duplicate", "delay", "crash")


def outcome_name(outcome: int) -> str:
    """Human-readable name for a fault outcome code."""
    if 0 <= outcome < len(_OUTCOME_NAMES):
        return _OUTCOME_NAMES[outcome]
    return f"fault#{outcome}"


def _weight(probability: float) -> int:
    """Quantize a probability to an integer permille weight."""
    return int(round(probability * FAULT_SCALE))


@dataclass(frozen=True)
class FaultConfig:
    """Which faults the tester may inject, and how aggressively.

    Frozen and picklable so it travels inside a ``TestConfig`` to
    portfolio worker processes unchanged.

    Parameters
    ----------
    drop, duplicate, delay:
        Per-send probabilities (``0.0``–``1.0``) of the three message
        faults.  At most one message fault fires per send, consulted in
        ``drop`` → ``duplicate`` → ``delay`` order.
    crash:
        Per-step probability that the currently scheduled machine
        crash-restarts before taking its next step.
    persistent_state:
        When true (the default), fields listed in the crashed machine's
        ``persistent_fields`` class attribute survive the restart — the
        rest of ``__dict__`` is volatile memory and is wiped.  When
        false, *everything* is wiped (a diskless node).
    max_faults:
        Hard budget per execution: once this many faults have fired, no
        further fault decisions are consulted.  Keeps faulty state spaces
        bounded, mirroring how P# tests bound failure counts.
    crash_classes:
        Restrict crash faults to machines of these classes (subclasses
        included).  Empty means any machine may crash.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    crash: float = 0.0
    persistent_state: bool = True
    max_faults: int = 16
    crash_classes: Tuple[type, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "crash"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"FaultConfig.{name} must be a probability in [0, 1], "
                    f"got {value!r}"
                )
        if not isinstance(self.max_faults, int) or self.max_faults < 0:
            raise ValueError(
                f"FaultConfig.max_faults must be a non-negative int, "
                f"got {self.max_faults!r}"
            )
        if not isinstance(self.crash_classes, tuple):
            # Accept any iterable of classes but normalize to a tuple so
            # the config stays hashable/picklable.
            object.__setattr__(self, "crash_classes", tuple(self.crash_classes))
        for cls in self.crash_classes:
            if not isinstance(cls, type):
                raise ValueError(
                    f"FaultConfig.crash_classes must contain classes, "
                    f"got {cls!r}"
                )

    # -- derived views ---------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when any fault can actually fire."""
        return self.max_faults > 0 and (
            self.drop > 0 or self.duplicate > 0 or self.delay > 0 or self.crash > 0
        )

    @property
    def message_weights(self) -> Tuple[int, int, int]:
        """Integer permille weights for (drop, duplicate, delay)."""
        return (_weight(self.drop), _weight(self.duplicate), _weight(self.delay))

    @property
    def crash_weight(self) -> int:
        """Integer permille weight for crash faults."""
        return _weight(self.crash)
