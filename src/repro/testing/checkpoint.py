"""Campaign checkpoint/resume: crash-resilient long-running campaigns.

A sharded campaign — the local portfolio
(:func:`repro.testing.portfolio.run_portfolio`) or the distributed fleet
coordinator (:func:`repro.testing.fleet.run_fleet`), which share this
module verbatim — can periodically persist its progress: the detached
:class:`~repro.testing.engine.TestReport` of every *completed* shard plus
the materialized strategy mix, written to a checkpoint file.  If the campaign is
killed (SIGINT, OOM, machine reboot), ``python -m repro test --resume
FILE`` (or ``Campaign.portfolio(resume=...)``) restarts it: shards whose
final reports were checkpointed are not re-run; only the shards that were
still in flight start over.

Granularity is the *shard* (one strategy spec driven by one worker
process): a shard's mid-campaign strategy state (DFS frame stacks, RNG
positions) is deliberately not persisted — resuming re-runs an
incomplete shard from scratch, which is always sound because shards are
independent and deterministic per spec.

The checkpoint file is a pickle written atomically (temp file +
``os.replace``), so a kill mid-write leaves the previous checkpoint
intact.  A fingerprint of the campaign identity (program spelling,
budgets, seed) guards against resuming someone else's checkpoint.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..errors import PSharpError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import TestConfig
    from .engine import TestReport
    from .portfolio import StrategySpec

#: Bumped when the checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1

_REQUIRED_KEYS = ("version", "fingerprint", "specs", "completed")


def config_fingerprint(config: "TestConfig") -> str:
    """A stable digest of the campaign identity a checkpoint belongs to.

    Covers the program spelling and the budget knobs that define what a
    "completed shard" means — not the strategy mix itself, which is
    materialized once at campaign start and carried *inside* the
    checkpoint (the default mix draws fresh random seeds per call, so it
    must be reused verbatim on resume, not regenerated)."""
    program = config.program
    if not isinstance(program, str):
        program = f"{program.__module__}:{program.__qualname__}"
    key = repr(
        (
            program,
            config.seed,
            config.max_iterations,
            config.max_steps,
            config.stop_on_first_bug,
            config.workers,
            config.faults,
            # Coverage collection changes what a shard's report carries;
            # resuming a plain campaign from a coverage checkpoint (or
            # vice versa) would merge maps with holes.
            config.coverage,
        )
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


def save_checkpoint(
    path: "str | os.PathLike",
    *,
    fingerprint: str,
    specs: List["StrategySpec"],
    completed: Dict[int, "TestReport"],
) -> None:
    """Atomically persist campaign progress to ``path``.

    ``completed`` maps shard index -> the shard's final *detached*
    report.  The write goes through a temp file in the same directory +
    ``os.replace``, so readers never observe a torn checkpoint."""
    path = os.fspath(path)
    payload = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "specs": list(specs),
        "completed": dict(completed),
    }
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path: "str | os.PathLike") -> Dict[str, Any]:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`PSharpError` with a clear message when the file is
    missing, truncated, corrupt, or from an incompatible version."""
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            state = pickle.load(fh)
    except OSError as exc:
        raise PSharpError(f"cannot read checkpoint file {path!r}: {exc}") from exc
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError,
            IndexError, ValueError) as exc:
        raise PSharpError(
            f"corrupt checkpoint file {path!r}: {exc}"
        ) from exc
    if not isinstance(state, dict) or any(k not in state for k in _REQUIRED_KEYS):
        raise PSharpError(
            f"corrupt checkpoint file {path!r}: not a campaign checkpoint"
        )
    if state["version"] != CHECKPOINT_VERSION:
        raise PSharpError(
            f"checkpoint {path!r} has version {state['version']!r}; this "
            f"build reads version {CHECKPOINT_VERSION}"
        )
    return state


def verify_checkpoint(
    state: Dict[str, Any], config: "TestConfig", path: Optional[str] = None
) -> None:
    """Refuse to resume a checkpoint recorded for a different campaign."""
    expected = config_fingerprint(config)
    if state["fingerprint"] != expected:
        where = f" {path!r}" if path else ""
        raise PSharpError(
            f"checkpoint{where} was recorded for a different campaign "
            "(program, seed or budgets differ); re-run without --resume "
            "or point it at the matching checkpoint file"
        )
