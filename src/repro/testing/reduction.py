"""Schedule-space reduction: DPOR, state caching, learned prefix clauses.

Raw schedule throughput stopped being the bottleneck once the inline
backend landed; the next multiplier is exploring *fewer* schedules.  The
P#-style tester (Section 6.2) enumerates interleavings whose vast
majority are equivalent, because the only visible effects of a scheduling
step are the messages it enqueues — and sends targeting distinct inboxes
commute.  This module shrinks the schedule tree itself, in three
cooperating layers:

**Independence oracle.**  The runtime reports, per scheduling step, the
set of *objects* the step touched: the stepping machine itself (its
program counter and inbox), every inbox it enqueued into (sends — with or
without an injected fault: a fault decision never commutes with its own
send, so the target stays in the footprint either way), every machine it
created, and every specification monitor that observed one of its events
(monitor state is order-sensitive, so two sends observed by the same
monitor do not commute even when their targets differ).  Two steps
commute iff their object footprints are disjoint.  Footprints are derived
from trace-visible facts only, so the oracle is identical on the inline,
pool and spawn back-ends.

**Dynamic partial-order reduction** (:class:`~repro.testing.strategies
.DfsStrategy` / ``IterativeDeepeningDfsStrategy``).  Machine-choice
stack frames carry an explicit backtrack list instead of enumerating
every enabled machine: a frame starts with a single branch, and after
each execution the engine scans the step log for *races* — a step whose
footprint intersects the footprint of the last earlier step by a
different machine touching the same object — and inserts the racing
machine as a backtrack point at that earlier decision (falling back to
the whole enabled set when the racer was not yet enabled there, the
classic conservative case).  A frame's explored prefix ``values[:pos+1]``
is its sleep set: a branch that has been explored (or deliberately
skipped) at this node is never re-added.  Branches never materialized are
counted as ``branches_pruned`` when the frame pops.  Pruning decisions
never touch recorded schedule decisions, so a bug trace found under
reduction replays bit-identically — on any back-end — via
``ReplayStrategy``.

**State caching.**  :meth:`BugFindingRuntime.state_fingerprint` hashes
the complete observable program state (per machine: current state, inbox
event names + payload hashes, user fields; plus monitor states, the step
count and the fault budget) into a stable digest; the engine keeps an
LRU-bounded seen-set across the campaign and the runtime abandons an
execution (status ``"pruned"``, trace kind ``"reduction"``) when it
reaches a state the campaign has already explored.  Two guards make this
sound for DFS-order search:

* *Divergence gating* — a DFS iteration re-executes the previous
  iteration's schedule prefix decision-for-decision, and every prefix
  state is by construction already cached; fingerprints are therefore
  only checked (and inserted) once the current trace has diverged from
  the previous iteration's.  Under depth-first order every reachable
  cache hit then refers to a node strictly left of the current path,
  whose subtree is fully explored — pruning it drops only redundant
  work.
* *Step-count inclusion* — the fingerprint includes the step counter, so
  a state reached by a longer path (different remaining ``max_steps``
  budget) or a cycle within one execution never aliases a cached entry.

For randomized strategies the cache is a redundancy heuristic, not an
equivalence argument; see ``docs/reduction.md`` for the caveats
(liveness temperature, fairness) and when to use which mode.

**Learned prefix clauses** (the opt-in CDCL-flavored stretch,
``"dpor+state-cache+clauses"``).  Every state-cache prune learns the
implication "from fingerprint *F*, scheduling machine *m* re-enters
explored territory" — a blocked edge, the one-step analogue of a learned
clause over schedule prefixes.  On later visits to *F* the runtime
consults the store right after the decision and prunes *before*
executing the step, saving the step plus the child fingerprint.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

from ..core.events import Event, MachineId
from ..errors import PSharpError
from .trace import ScheduleTrace

__all__ = [
    "REDUCTION_MODES",
    "REASON_STATE",
    "REASON_CLAUSE",
    "ReductionEngine",
    "normalize_reduction",
    "stable_update",
]

#: Reduction modes a campaign may name.  "dpor" arms the race analysis
#: for DFS-family strategies; "+state-cache" additionally prunes
#: revisited states for *every* strategy; "+clauses" opts into the
#: learned blocked-edge store on top.
REDUCTION_MODES = ("none", "dpor", "dpor+state-cache", "dpor+state-cache+clauses")

#: Trace-record reason codes for ``"reduction"`` entries.
REASON_STATE = 1   # state-cache hit: this exact state was already explored
REASON_CLAUSE = 2  # learned clause: this edge re-enters explored territory

#: Default LRU bound of the campaign-level seen-set.
DEFAULT_STATE_CACHE_SIZE = 1 << 16


def normalize_reduction(mode: Optional[str]) -> str:
    """Validate a reduction mode name, loudly."""
    if mode is None:
        return "none"
    if mode not in REDUCTION_MODES:
        raise PSharpError(
            f"reduction must be one of {', '.join(REDUCTION_MODES)}, "
            f"got {mode!r}"
        )
    return mode


# ----------------------------------------------------------------------
# Stable hashing of machine state
# ----------------------------------------------------------------------
def stable_update(update: Callable[[bytes], None], obj: object) -> None:
    """Feed a stable byte encoding of ``obj`` into a hash ``update``.

    Stability contract: equal values produce equal byte streams across
    processes, back-ends and ``PYTHONHASHSEED`` values — which is why
    this never goes through built-in ``hash()``.  Containers are length-
    prefixed and type-tagged so ``[1, 2]`` / ``(1, 2)`` / ``"12"`` cannot
    collide; dicts and sets are hashed order-independently by digesting
    each element and sorting the digests.  Objects with a default
    ``repr`` (which embeds a memory address) degrade to their class name
    — coarse, but deterministic.
    """
    if obj is None:
        update(b"\x00N")
    elif obj is True:
        update(b"\x00T")
    elif obj is False:
        update(b"\x00F")
    else:
        t = type(obj)
        if t is int:
            update(b"\x00i%d" % obj)
        elif t is str:
            data = obj.encode("utf-8", "surrogatepass")
            update(b"\x00s%d:" % len(data))
            update(data)
        elif t is float:
            update(b"\x00f")
            update(repr(obj).encode("ascii"))
        elif t is bytes:
            update(b"\x00b%d:" % len(obj))
            update(obj)
        elif t is MachineId:
            update(b"\x00m%d" % obj.value)
        elif t is tuple or t is list:
            update(b"\x00l" if t is list else b"\x00t")
            update(b"%d:" % len(obj))
            for item in obj:
                stable_update(update, item)
        elif t is dict:
            update(b"\x00d%d:" % len(obj))
            _update_unordered(update, obj.items())
        elif t is set or t is frozenset:
            update(b"\x00S%d:" % len(obj))
            _update_unordered(update, obj)
        elif isinstance(obj, Event):
            update(b"\x00E")
            stable_update(update, type(obj).__name__)
            stable_update(update, getattr(obj, "payload", None))
        elif isinstance(obj, type):
            update(b"\x00C")
            update(f"{obj.__module__}:{obj.__qualname__}".encode("utf-8"))
        else:
            r = repr(obj)
            if " at 0x" in r:  # default repr: address is not stable
                r = f"<{type(obj).__name__}>"
            update(b"\x00r")
            update(r.encode("utf-8", "replace"))


def _update_unordered(update: Callable[[bytes], None], items) -> None:
    """Hash an unordered collection: digest each element independently,
    then feed the sorted digests — order-independent and key-order-proof
    without requiring the elements to be comparable."""
    from hashlib import blake2b

    digests = []
    for item in items:
        h = blake2b(digest_size=8)
        stable_update(h.update, item)
        digests.append(h.digest())
    digests.sort()
    for d in digests:
        update(d)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ReductionEngine:
    """Campaign-lifetime reduction state shared by the runtime (step
    footprints, state cache) and the DFS-family strategies (race
    analysis, backtrack insertion).

    One engine serves one campaign loop: :func:`repro.testing.engine
    .drive` constructs it next to the coverage map, hands it to the
    runtime (``BugFindingRuntime(reduction=...)``) and attaches it to the
    strategy (:meth:`~repro.testing.strategies.SchedulingStrategy
    .attach_reduction`).  The ``workers="auto"`` inline→pool restart
    re-enters the loop and builds a fresh engine, so a restarted
    campaign's pruning decisions are bit-identical to an explicit pooled
    run — exactly the coverage-map contract.

    The step log (``_points``/``_bounds``/``effects``) covers the most
    recent execution only; the seen-set, the clause store and the
    counters span the campaign.
    """

    def __init__(
        self,
        mode: str = "dpor",
        state_cache_size: int = DEFAULT_STATE_CACHE_SIZE,
    ) -> None:
        mode = normalize_reduction(mode)
        if mode == "none":
            raise PSharpError(
                "ReductionEngine is only constructed for an active "
                "reduction mode; pass reduction='none' to the campaign "
                "instead"
            )
        if state_cache_size < 1:
            raise PSharpError(
                f"state_cache_size must be >= 1, got {state_cache_size!r}"
            )
        self.mode = mode
        self.dpor = True  # every active mode includes the race analysis
        self.cache_on = mode != "dpor"
        self.clauses_on = mode == "dpor+state-cache+clauses"
        self.state_cache_size = state_cache_size
        # Campaign-level counters (telemetry; see TestReport).
        self.distinct_states = 0
        self.state_prunes = 0
        self.clause_prunes = 0
        self.branches_pruned = 0
        self.clauses_learned = 0
        # Campaign-level stores.
        self._seen: "OrderedDict[bytes, bool]" = OrderedDict()
        self._blocked: dict = {}  # fingerprint -> set of blocked machine values
        self.prev_trace: Optional[ScheduleTrace] = None
        # Per-execution step log (see begin_execution).
        self.effects: List[int] = []
        self._points: List[Tuple[int, Tuple[int, ...], int]] = []
        self._bounds: List[int] = []
        self._pending_depth = -1
        self.diverged = False
        self.checked = 0
        self.cur_blocked: Optional[set] = None
        self._cur_fp: Optional[bytes] = None

    @property
    def schedules_pruned(self) -> int:
        """Schedules the reduction avoided exploring: DPOR branches never
        materialized plus executions cut short by the state cache or a
        learned clause."""
        return self.branches_pruned + self.state_prunes + self.clause_prunes

    # -- per-execution lifecycle ---------------------------------------
    def begin_execution(self) -> None:
        """Reset the step log for a fresh execution (campaign-level
        stores and counters persist)."""
        self.effects.clear()
        self._points.clear()
        self._bounds.clear()
        self._pending_depth = -1
        # The first execution (no previous trace) has nothing to stay
        # aligned with: every point checks the (initially empty) cache.
        self.diverged = self.prev_trace is None
        self.checked = 0
        self.cur_blocked = None
        self._cur_fp = None

    def end_execution(self, trace: Optional[ScheduleTrace]) -> None:
        """Record the completed execution's trace as the prefix-alignment
        reference for the next one."""
        if trace is not None:
            self.prev_trace = trace

    def reset_search(self) -> None:
        """Forget everything tied to the *current* systematic search
        (seen states, learned clauses, the alignment trace) while keeping
        the campaign counters.  Iterative deepening calls this at every
        depth increase: the deepened DFS re-explores the whole tree, and
        states cached by the shallower pass would otherwise prune it to
        nothing."""
        self._seen.clear()
        self._blocked.clear()
        self.prev_trace = None

    # -- step log (runtime side) ---------------------------------------
    def bind_frame(self, depth: int) -> None:
        """Called by a DPOR strategy inside ``pick_machine``: associate
        the decision being made with its stack-frame depth, so the race
        analysis can insert backtrack points at it."""
        self._pending_depth = depth

    def chose(self, value: int, enabled: Tuple[int, ...]) -> None:
        """A scheduling decision was recorded: machine ``value`` starts a
        new step at a point whose enabled set was ``enabled``.  The
        stepping machine itself is always part of the step's footprint
        (its program counter and inbox advance)."""
        depth, self._pending_depth = self._pending_depth, -1
        self._bounds.append(len(self.effects))
        self.effects.append(value)
        self._points.append((value, enabled, depth))

    # -- DPOR analysis (strategy side) ---------------------------------
    def analyze(self, add_backtrack: Callable[[int, Optional[int]], None]) -> None:
        """Scan the last execution's step log for races and insert
        backtrack points via ``add_backtrack(frame_depth, machine_value
        or None)``.

        For each object a step touched, the *last* earlier step by a
        different machine touching the same object is a race: the racing
        machine is added as a backtrack branch at that step's decision
        frame (or the whole enabled set when it was not enabled there).
        Races shadowed by a nearer access are found transitively over
        subsequent iterations, the standard last-access argument.  Steps
        whose decision was forced (``depth == -1``) had no alternative to
        insert, so they are skipped."""
        points = self._points
        if not points:
            return
        effects = self.effects
        bounds = self._bounds
        n = len(points)
        total = len(effects)
        last: dict = {}
        for i in range(n):
            chosen, _enabled, _depth = points[i]
            start = bounds[i]
            stop = bounds[i + 1] if i + 1 < n else total
            for obj in effects[start:stop]:
                j = last.get(obj)
                if j is not None:
                    prev_chosen, prev_enabled, prev_depth = points[j]
                    if prev_chosen != chosen and prev_depth >= 0:
                        add_backtrack(
                            prev_depth,
                            chosen if chosen in prev_enabled else None,
                        )
                last[obj] = i

    def count_skipped(self, count: int) -> None:
        """A DPOR frame was exhausted and popped with ``count`` enabled
        branches never materialized: the race analysis proved no
        dependent transition needed them."""
        if count > 0:
            self.branches_pruned += count

    # -- state cache (runtime side) ------------------------------------
    def check_state(self, fingerprint: bytes) -> int:
        """Consult (and update) the seen-set for the state at the current
        scheduling point.  Returns a prune reason code (0: fresh state,
        keep executing).  On a hit with clause learning armed, the edge
        that led here — (previous point's fingerprint, last scheduled
        machine) — is recorded as blocked."""
        seen = self._seen
        if fingerprint in seen:
            seen.move_to_end(fingerprint)
            self.state_prunes += 1
            if self.clauses_on and self._cur_fp is not None and self._points:
                blocked = self._blocked.setdefault(self._cur_fp, set())
                edge = self._points[-1][0]
                if edge not in blocked:
                    blocked.add(edge)
                    self.clauses_learned += 1
            return REASON_STATE
        seen[fingerprint] = True
        if len(seen) > self.state_cache_size:
            seen.popitem(last=False)
        self.distinct_states += 1
        if self.clauses_on:
            self._cur_fp = fingerprint
            self.cur_blocked = self._blocked.get(fingerprint)
        return 0
