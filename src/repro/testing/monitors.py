"""Specification monitors: safety and liveness state machines.

The paper's testing story rests on *specification machines* (Section 7.2):
monitors that observe the events a program exchanges and flag violations.
A safety monitor asserts invariants over the observed event stream ("at
most one leader per term").  A liveness monitor partitions its states into
**hot** and **cold**: hot states are "something is still owed" states
(a request is pending, the token has not completed its circuit) and cold
states are "the obligation was met" states.  Under a *fair* schedule, a
monitor that stays hot beyond a temperature threshold — or is hot when
the program terminates — witnesses a liveness violation, without the
false positives the bare depth-bound heuristic produces under unfair
strategies like DFS or PCT.

Monitors are :class:`~repro.core.machine.Machine` subclasses, so they use
the exact state/transition/action vocabulary of ordinary machines, but
they are **passive**: they never hold a scheduler slot, never send events,
never create machines, and never consume controlled nondeterminism.  The
runtime invokes them *synchronously* at its existing scheduling points
(send / dequeue / halt), so attaching monitors cannot perturb the
strategy's decision sequence — for a fixed seed, a program explores the
same schedules with and without its specifications attached.

Authoring a monitor::

    class ProgressMonitor(Monitor):
        observes = (ERequest, EGranted)     # auto-mirrored on send

        @cold
        class Satisfied(State):
            initial = True
            transitions = {ERequest: "Starved"}
            ignored = (EGranted,)

        @hot
        class Starved(State):
            transitions = {EGranted: "Satisfied"}
            ignored = (ERequest,)

Events listed in ``observes`` are mirrored to the monitor whenever any
machine *sends* one; ``observes_dequeue`` mirrors at delivery (dequeue)
time instead.  ``EMachineHalted`` (payload: the halted ``MachineId``) is
mirrored when a machine halts.  Programs can also invoke a monitor
explicitly with ``self.monitor(ProgressMonitor, event)`` — a no-op when
the monitor class is not attached to the runtime, so instrumented
programs run unchanged without their specifications.

Monitors are attached per campaign: ``BugFindingRuntime(...,
monitors=[ProgressMonitor])``, or through ``drive`` / ``TestingEngine`` /
``PortfolioEngine`` (monitor *classes* travel to portfolio workers — they
pickle by reference like machine classes).
"""

from __future__ import annotations

from typing import Any, Tuple, Type

from ..core.events import Event, MachineId
from ..core.machine import DISP_DEFER, DISP_IGNORE, Machine
from ..errors import MachineDeclarationError, PSharpError

HOT = "hot"
COLD = "cold"


def hot(state_cls: type) -> type:
    """Class decorator marking a monitor state as *hot* (liveness pending).

    A liveness monitor that remains in hot states for more than the
    runtime's ``max_hot_steps`` consecutive fair steps — or that is hot
    when the program terminates — reports a liveness violation.
    """
    state_cls.temperature = HOT
    return state_cls


def cold(state_cls: type) -> type:
    """Class decorator marking a monitor state as *cold* (obligation met).

    Entering any non-hot state resets the monitor's temperature; ``@cold``
    documents the reset explicitly in the specification's source.
    """
    state_cls.temperature = COLD
    return state_cls


class EMachineHalted(Event):
    """Mirrored to observing monitors when a machine halts.

    The payload is the halted machine's :class:`MachineId`.  Listed in a
    monitor's ``observes`` tuple like any other event class.
    """


class Monitor(Machine):
    """Base class of specification monitors.  See the module docstring.

    Class attributes
    ----------------
    observes:
        Event classes mirrored to this monitor when any machine *sends*
        one (subclasses of a listed event class are mirrored too).
    observes_dequeue:
        Event classes mirrored when a machine *dequeues* one — delivery
        order rather than send order.
    """

    observes: Tuple[Type[Event], ...] = ()
    observes_dequeue: Tuple[Type[Event], ...] = ()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        # Monitors have no inbox, so deferral is meaningless; reject it at
        # declaration time instead of silently dropping observations.
        for info in cls._state_infos.values():
            if info.deferred:
                raise MachineDeclarationError(
                    f"monitor {cls.__name__} state {info.name} declares "
                    "deferred events; monitors cannot defer (use 'ignored' "
                    "or handle the event in every state)"
                )

    # ------------------------------------------------------------------
    # Monitors are passive: the machine primitives that interact with the
    # schedule are forbidden, which is what guarantees that attaching a
    # monitor never perturbs the strategy's decision sequence.
    # ------------------------------------------------------------------
    def send(self, target: MachineId, event: Event) -> None:
        raise PSharpError(
            f"monitor {type(self).__name__} attempted to send an event; "
            "monitors are passive observers"
        )

    def create_machine(self, machine_cls: type, payload: Any = None) -> MachineId:
        raise PSharpError(
            f"monitor {type(self).__name__} attempted to create a machine; "
            "monitors are passive observers"
        )

    def nondet(self) -> bool:
        raise PSharpError(
            f"monitor {type(self).__name__} attempted a nondeterministic "
            "choice; monitors must be deterministic"
        )

    def nondet_int(self, bound: int) -> int:
        raise PSharpError(
            f"monitor {type(self).__name__} attempted a nondeterministic "
            "choice; monitors must be deterministic"
        )

    # ------------------------------------------------------------------
    # Invocation machinery (driven by the runtimes)
    # ------------------------------------------------------------------
    @property
    def is_hot(self) -> bool:
        """Whether the monitor currently sits in a hot state."""
        state = self._current_state
        return state is not None and state.temperature == HOT

    def _boot(self) -> None:
        """Enter the initial state and run any raised-event cascade."""
        self._start()
        self._drain_raised()

    def _observe(self, event: Event) -> None:
        """Process one observed event synchronously.

        Ignored events are dropped; anything else goes through the normal
        dispatch (action, transition, or — the specification's own error
        class — an :class:`UnhandledEventError`)."""
        state = self._current_state
        assert state is not None
        code = state.disposition(type(event))[0]
        if code == DISP_IGNORE or code == DISP_DEFER:
            return
        self._handle(event)
        self._drain_raised()

    def _drain_raised(self) -> None:
        while self._raised is not None:
            event, self._raised = self._raised, None
            self._handle(event)


def has_hot_states(monitor_cls: Type[Monitor]) -> bool:
    """Whether ``monitor_cls`` declares any hot state (i.e. is a liveness
    monitor).  Runtimes use this to decide when temperature tracking — and
    the suppression of the legacy depth-bound heuristic — applies."""
    return any(
        info.temperature == HOT for info in monitor_cls._state_infos.values()
    )
