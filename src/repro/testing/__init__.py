"""Systematic concurrency testing for P# programs (Section 6.2)."""

from .checkpoint import load_checkpoint, save_checkpoint
from .coverage import CoverageMap, MachineCoverage
from .engine import TestingEngine, TestReport, drive, replay
from .faults import FaultConfig
from .monitors import EMachineHalted, Monitor, cold, has_hot_states, hot
from .portfolio import (
    PortfolioEngine,
    StrategySpec,
    default_portfolio,
    make_strategy,
    register_strategy,
    run_portfolio,
    strategy_names,
)
from .config import CONFIG_SCHEMA_VERSION, Campaign, TestConfig
from .fleet import (
    PROTOCOL_VERSION,
    Connection,
    ConnectionClosed,
    ProtocolError,
    connect_worker,
    run_fleet,
    worker_loop,
)
from .reduction import (
    DEFAULT_STATE_CACHE_SIZE,
    REDUCTION_MODES,
    ReductionEngine,
    normalize_reduction,
)
from .reporting import (
    coverage_dot,
    coverage_table,
    load_campaign,
    report_json,
    save_report,
)
from .telemetry import EventLog, Histogram, TelemetryStats
from .runtime import (
    BugFindingRuntime,
    ExecutionResult,
    WorkerPool,
    shared_worker_pool,
)
from .strategies import (
    DelayBoundingStrategy,
    DfsStrategy,
    FairRandomStrategy,
    IterativeDeepeningDfsStrategy,
    PctStrategy,
    RandomStrategy,
    ReplayStrategy,
    SchedulingStrategy,
)
from .trace import ScheduleTrace

__all__ = [
    "TestConfig",
    "CONFIG_SCHEMA_VERSION",
    "Campaign",
    "FaultConfig",
    "run_fleet",
    "worker_loop",
    "connect_worker",
    "Connection",
    "ProtocolError",
    "ConnectionClosed",
    "PROTOCOL_VERSION",
    "load_checkpoint",
    "save_checkpoint",
    "CoverageMap",
    "MachineCoverage",
    "TelemetryStats",
    "Histogram",
    "EventLog",
    "save_report",
    "load_campaign",
    "coverage_table",
    "report_json",
    "coverage_dot",
    "ReductionEngine",
    "REDUCTION_MODES",
    "DEFAULT_STATE_CACHE_SIZE",
    "normalize_reduction",
    "TestingEngine",
    "TestReport",
    "drive",
    "replay",
    "run_portfolio",
    "Monitor",
    "EMachineHalted",
    "hot",
    "cold",
    "has_hot_states",
    "PortfolioEngine",
    "StrategySpec",
    "default_portfolio",
    "make_strategy",
    "register_strategy",
    "strategy_names",
    "BugFindingRuntime",
    "ExecutionResult",
    "WorkerPool",
    "shared_worker_pool",
    "SchedulingStrategy",
    "DfsStrategy",
    "IterativeDeepeningDfsStrategy",
    "RandomStrategy",
    "FairRandomStrategy",
    "ReplayStrategy",
    "PctStrategy",
    "DelayBoundingStrategy",
    "ScheduleTrace",
]
