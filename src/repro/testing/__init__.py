"""Systematic concurrency testing for P# programs (Section 6.2)."""

from .engine import TestingEngine, TestReport, replay
from .runtime import BugFindingRuntime, ExecutionResult
from .strategies import (
    DelayBoundingStrategy,
    DfsStrategy,
    PctStrategy,
    RandomStrategy,
    ReplayStrategy,
    SchedulingStrategy,
)
from .trace import ScheduleTrace

__all__ = [
    "TestingEngine",
    "TestReport",
    "replay",
    "BugFindingRuntime",
    "ExecutionResult",
    "SchedulingStrategy",
    "DfsStrategy",
    "RandomStrategy",
    "ReplayStrategy",
    "PctStrategy",
    "DelayBoundingStrategy",
    "ScheduleTrace",
]
