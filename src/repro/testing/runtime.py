"""The bug-finding runtime: serialized, schedule-controlled execution.

Section 6.2: "we designed a bug-finding mode for the runtime, in which
execution is serialized and the schedule is controlled.  In this mode, the
runtime repeatedly executes a program from start to completion, each time
exploring a (potentially) different schedule. ... In bug-finding mode, the
send and create-machine methods call the runtime method Schedule, which
blocks the current thread and releases another thread."

Implementation: one cooperative worker thread per machine, a single
"running" token passed via per-worker semaphores.  Scheduling points occur
exactly at ``send`` and ``create_machine`` (receives need no scheduling
point — the simple partial-order reduction inherited from P [6]); a forced
hand-off additionally happens when a machine goes idle.  Exactly one
thread is runnable at any moment, so runtime state needs no locking.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Type

from ..core.events import Event, MachineId
from ..core.machine import Machine
from ..core.runtime import RuntimeBase
from ..errors import (
    ActionError,
    AssertionFailure,
    BugReport,
    ExecutionCanceled,
    LivenessError,
    PSharpError,
    UnhandledEventError,
)
from .strategies import SchedulingStrategy
from .trace import BOOL, INT, SCHED, ScheduleTrace


class _WorkerState(Enum):
    NEW = "new"          # thread created, waiting to run the entry handler
    RUNNING = "running"  # inside an action (possibly blocked at a sched point)
    IDLE = "idle"        # waiting for a deliverable event
    DONE = "done"        # halted or finished


@dataclass
class ExecutionResult:
    """Outcome of a single controlled execution (one schedule)."""

    status: str  # "ok" | "bug" | "depth-bound" | "time-bound" | "stopped"
    steps: int
    scheduling_points: int
    trace: Optional[ScheduleTrace]
    bug: Optional[BugReport] = None

    @property
    def buggy(self) -> bool:
        return self.bug is not None


class _Worker:
    __slots__ = ("machine", "thread", "semaphore", "state")

    def __init__(self, machine: Machine, thread: threading.Thread) -> None:
        self.machine = machine
        self.thread = thread
        self.semaphore = threading.Semaphore(0)
        self.state = _WorkerState.NEW


class BugFindingRuntime(RuntimeBase):
    """A runtime whose interleavings are decided by a scheduling strategy.

    Parameters
    ----------
    strategy:
        The search strategy (DFS, random, replay, PCT, ...).
    max_steps:
        Depth bound on scheduling decisions per execution.  Exceeding it
        terminates the execution; with ``livelock_as_bug`` it is reported
        as a potential liveness violation (how Section 7.2.2 detects the
        German-benchmark livelock).
    record_trace:
        Record every decision so a found bug can be replayed.
    deadline:
        Absolute ``time.monotonic()`` deadline.  Unlike the engine's
        per-iteration time-limit check, this cuts off an execution *mid
        schedule* (status ``"time-bound"``), so a single long iteration
        cannot blow past the campaign budget.
    stop_check:
        Polled periodically; when it returns True the execution aborts
        with status ``"stopped"``.  Portfolio workers pass the shared
        first-bug-wins cancellation event here.
    """

    # How many scheduling steps between deadline/stop_check polls: the
    # checks must not dominate the hot handoff path.
    _POLL_MASK = 31

    def __init__(
        self,
        strategy: SchedulingStrategy,
        max_steps: int = 20_000,
        record_trace: bool = True,
        livelock_as_bug: bool = False,
        deadline: Optional[float] = None,
        stop_check: Optional[Callable[[], bool]] = None,
    ) -> None:
        super().__init__()
        self.strategy = strategy
        self.max_steps = max_steps
        self.record_trace = record_trace
        self.livelock_as_bug = livelock_as_bug
        self.deadline = deadline
        self.stop_check = stop_check

        self._workers: Dict[MachineId, _Worker] = {}
        self._creation_order: List[MachineId] = []
        self._done = threading.Semaphore(0)
        self._canceled = False
        self._finished = False
        self._status = "ok"
        self._bug: Optional[BugReport] = None
        self._trace: Optional[ScheduleTrace] = None
        self._sched_points = 0
        self._steps = 0
        self._current: Optional[MachineId] = None

    # ==================================================================
    # Public entry point
    # ==================================================================
    def execute(self, main_cls: Type[Machine], payload: Any = None) -> ExecutionResult:
        """Run the program once, from start to completion, under the
        strategy's schedule."""
        self._trace = ScheduleTrace() if self.record_trace else None
        mid = self._spawn(main_cls, payload)
        first = self._pick([mid])
        self._workers[first].semaphore.release()
        self._done.acquire()
        self._cancel_all()
        for worker in self._workers.values():
            worker.thread.join(timeout=5.0)
        return ExecutionResult(
            status=self._status,
            steps=self._steps,
            scheduling_points=self._sched_points,
            trace=self._trace,
            bug=self._bug,
        )

    # ==================================================================
    # RuntimeBase interface (called from inside running actions)
    # ==================================================================
    def create_machine(
        self,
        machine_cls: Type[Machine],
        payload: Any = None,
        creator: Optional[Machine] = None,
    ) -> MachineId:
        mid = self._spawn(machine_cls, payload)
        if creator is not None:
            # Scheduling point *after* creation: the new machine is now a
            # branch the strategy may choose.
            self._schedule(creator.id)
        return mid

    def send(
        self, target: MachineId, event: Event, sender: Optional[Machine] = None
    ) -> None:
        machine = self._machines.get(target)
        if machine is not None and not machine.is_halted:
            machine._enqueue(event)
            self.on_visible_operation(machine, "enqueue")
        if sender is not None:
            self._schedule(sender.id)

    def nondet(self, machine: Machine) -> bool:
        self._check_canceled()
        value = self.strategy.pick_bool()
        if self._trace is not None:
            self._trace.record(BOOL, int(value))
        return value

    def nondet_int(self, machine: Machine, bound: int) -> int:
        self._check_canceled()
        value = self.strategy.pick_int(bound)
        if self._trace is not None:
            self._trace.record(INT, value)
        return value

    def on_machine_halted(self, machine: Machine) -> None:
        worker = self._workers.get(machine.id)
        if worker is not None:
            worker.state = _WorkerState.DONE

    # Hook for the CHESS baseline: called on extra visible operations
    # (queue ops, field accesses).  The base runtime ignores them — this is
    # precisely the P# optimization of Section 6.2.
    def on_visible_operation(self, machine: Machine, kind: str) -> None:
        pass

    # ==================================================================
    # Worker machinery
    # ==================================================================
    def _spawn(self, machine_cls: Type[Machine], payload: Any) -> MachineId:
        machine = self._instantiate(machine_cls, payload)
        thread = threading.Thread(
            target=self._worker_main,
            args=(machine,),
            daemon=True,
            name=f"sct-{machine.id}",
        )
        worker = _Worker(machine, thread)
        self._workers[machine.id] = worker
        self._creation_order.append(machine.id)
        thread.start()
        return machine.id

    def _worker_main(self, machine: Machine) -> None:
        worker = self._workers[machine.id]
        worker.semaphore.acquire()
        if self._canceled:
            return
        worker.state = _WorkerState.RUNNING
        self._current = machine.id
        try:
            machine._start()
            while not machine.is_halted:
                self._count_step()
                self.on_visible_operation(machine, "dequeue")
                progressed = machine._step()
                if machine.is_halted:
                    break
                if not progressed:
                    self._become_idle(worker)
            worker.state = _WorkerState.DONE
            self._handoff(worker, voluntary=False)
        except ExecutionCanceled:
            pass
        except AssertionFailure as exc:
            self._report_bug("assertion-failure", str(exc), machine, exc)
        except UnhandledEventError as exc:
            self._report_bug("unhandled-event", str(exc), machine, exc)
        except PSharpError as exc:
            self._report_bug("runtime-error", str(exc), machine, exc)
        except Exception as exc:  # noqa: BLE001 - paper error class (iii)
            wrapped = ActionError(machine, machine.current_state or "?", exc)
            self._report_bug("action-exception", str(wrapped), machine, wrapped)

    def _become_idle(self, worker: _Worker) -> None:
        worker.state = _WorkerState.IDLE
        self._handoff(worker, voluntary=True)
        # Woken up: either canceled, or we have a deliverable event.
        self._check_canceled()
        worker.state = _WorkerState.RUNNING
        self._current = worker.machine.id

    # ------------------------------------------------------------------
    # The scheduler
    # ------------------------------------------------------------------
    def _schedulable(self) -> List[MachineId]:
        enabled = []
        for mid in self._creation_order:
            worker = self._workers[mid]
            if worker.state is _WorkerState.NEW:
                enabled.append(mid)
            elif worker.state is _WorkerState.RUNNING:
                enabled.append(mid)
            elif worker.state is _WorkerState.IDLE and worker.machine._has_deliverable():
                enabled.append(mid)
        return enabled

    def _schedule(self, current: MachineId) -> None:
        """A scheduling point: the strategy picks the next machine among
        the enabled ones; the current thread blocks if not chosen."""
        self._check_canceled()
        self._count_step()
        enabled = self._schedulable()
        self._sched_points += 1
        choice = self._pick(enabled, current)
        if choice == current:
            return
        current_worker = self._workers[current]
        self._workers[choice].semaphore.release()
        current_worker.semaphore.acquire()
        self._check_canceled()
        self._current = current

    def _handoff(self, worker: _Worker, voluntary: bool) -> None:
        """Give up control without remaining schedulable (idle or done)."""
        enabled = self._schedulable()
        if not enabled:
            self._finish("ok")
            # Block until cancellation unwinds this thread.
            worker.semaphore.acquire()
            self._check_canceled()
            return
        self._sched_points += 1
        choice = self._pick(enabled, worker.machine.id)
        self._workers[choice].semaphore.release()
        if voluntary:
            worker.semaphore.acquire()

    def _pick(
        self, enabled: List[MachineId], current: Optional[MachineId] = None
    ) -> MachineId:
        choice = self.strategy.pick_machine(enabled, current)
        if self._trace is not None:
            self._trace.record(SCHED, choice.value)
        return choice

    def _count_step(self) -> None:
        self._steps += 1
        if (self.deadline is not None or self.stop_check is not None) and (
            self._steps & self._POLL_MASK == 0
        ):
            if self.deadline is not None and time.monotonic() >= self.deadline:
                self._finish("time-bound")
                raise ExecutionCanceled()
            if self.stop_check is not None and self.stop_check():
                self._finish("stopped")
                raise ExecutionCanceled()
        if self._steps > self.max_steps:
            if self.livelock_as_bug:
                self._report_bug(
                    "liveness",
                    f"depth bound of {self.max_steps} steps exceeded: "
                    "potential livelock",
                    None,
                    LivenessError("depth bound exceeded"),
                    finish_status="bug",
                )
            else:
                self._finish("depth-bound")
            raise ExecutionCanceled()

    # ------------------------------------------------------------------
    # Termination plumbing
    # ------------------------------------------------------------------
    def _check_canceled(self) -> None:
        if self._canceled:
            raise ExecutionCanceled()

    def _report_bug(
        self,
        kind: str,
        message: str,
        machine: Optional[Machine],
        exc: BaseException,
        finish_status: str = "bug",
    ) -> None:
        if self._bug is None:
            self._bug = BugReport(
                kind=kind,
                message=message,
                machine=machine,
                trace=self._trace,
                exception=exc,
                step=self._steps,
            )
        self._finish(finish_status)

    def _finish(self, status: str) -> None:
        if not self._finished:
            self._finished = True
            self._status = status
            self._done.release()

    def _cancel_all(self) -> None:
        self._canceled = True
        for worker in self._workers.values():
            # Wake everyone; awakened workers observe _canceled and unwind.
            worker.semaphore.release()
