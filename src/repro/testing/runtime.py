"""The bug-finding runtime: serialized, schedule-controlled execution.

Section 6.2: "we designed a bug-finding mode for the runtime, in which
execution is serialized and the schedule is controlled.  In this mode, the
runtime repeatedly executes a program from start to completion, each time
exploring a (potentially) different schedule. ... In bug-finding mode, the
send and create-machine methods call the runtime method Schedule, which
blocks the current thread and releases another thread."

Implementation: one cooperative worker thread per machine, a single
"running" token passed via per-worker signals.  Scheduling points occur
exactly at ``send`` and ``create_machine`` (receives need no scheduling
point — the simple partial-order reduction inherited from P [6]); a forced
hand-off additionally happens when a machine goes idle.  Exactly one
thread is runnable at any moment, so runtime state needs no locking.

Three worker back-ends drive the cooperative machines:

``workers="inline"``
    The single-thread continuation runtime: machine handlers are
    compiled into resumable generator coroutines
    (:mod:`repro.core.continuations`) and a flat trampoline switches
    between them, so a scheduling decision is a plain function call — no
    locks, no hand-offs, no permits, and no ~3-7us OS thread switch per
    non-forced decision.

``workers="pool"`` (default)
    A process-lifetime :class:`WorkerPool` of reusable OS threads.  Each
    execution checks workers out, binds machines to them, and checks them
    back in when the schedule completes, so a 10k-iteration campaign
    reuses a handful of threads instead of spawning and joining tens of
    thousands.  Hand-offs ride raw ``threading.Lock`` primitives (C
    implemented) instead of ``threading.Semaphore`` (pure-Python
    condition variables).

``workers="spawn"``
    The historical thread-per-execution path, kept as the A/B baseline:
    a fresh thread and semaphore per machine per execution.

All back-ends run the *same* scheduling code, so for a fixed strategy
seed they produce bit-identical :class:`ScheduleTrace` records — DFS
backtracking, replay and PCT semantics are independent of the back-end.

The runtime is reusable: :meth:`BugFindingRuntime.reset` (called
automatically at the top of :meth:`~BugFindingRuntime.execute`) returns
it to a pristine state, so an engine drives one runtime object for a
whole campaign instead of reconstructing it per iteration.
"""

from __future__ import annotations

import os
import threading
import time
from bisect import insort
from dataclasses import dataclass
from enum import Enum
from hashlib import blake2b
from itertools import chain
from operator import attrgetter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..core.continuations import (
    OP_SEND,
    InlineCompileError,
    compile_inline_machine,
)
from ..core.events import Event, MachineId
from ..core.machine import Machine
from ..core.runtime import RuntimeBase
from ..errors import (
    ActionError,
    AssertionFailure,
    BugReport,
    ExecutionCanceled,
    LivenessError,
    MonitorError,
    PSharpError,
    UnhandledEventError,
)
from .coverage import CoverageMap
from .faults import (
    FAULT_CRASH,
    FAULT_DELAY,
    FAULT_DROP,
    FAULT_DUPLICATE,
    FAULT_NONE,
    FaultConfig,
)
from .monitors import EMachineHalted, Monitor, has_hot_states
from .reduction import REASON_CLAUSE, ReductionEngine, stable_update
from .strategies import SchedulingStrategy
from .trace import (
    BOOL_TAG,
    FAULT_TAG,
    INT_TAG,
    LIVENESS_TAG,
    MONITOR_TAG,
    REDUCTION_TAG,
    SCHED_TAG,
    ScheduleTrace,
)

# Sentinel "no hot monitor" deadline: any real step count compares below.
_NO_DEADLINE = float("inf")

# Sentinel for "nothing to send into an inline activation" (None is a
# legitimate send value: it resumes a plain send's yield).
_NO_VALUE = object()

# Sort key for the incrementally-maintained enabled set: machine ids are
# ordered by their allocation counter, matching the seat order the full
# _schedulable_walk produces (ids have no __lt__ of their own).
_MID_VALUE = attrgetter("value")


class _WorkerState(Enum):
    NEW = "new"          # bound to a machine, waiting to run the entry handler
    RUNNING = "running"  # inside an action (possibly blocked at a sched point)
    IDLE = "idle"        # waiting for a deliverable event
    DONE = "done"        # halted or finished


_NEW = _WorkerState.NEW
_RUNNING = _WorkerState.RUNNING
_IDLE = _WorkerState.IDLE
_DONE = _WorkerState.DONE


@dataclass(slots=True)
class ExecutionResult:
    """Outcome of a single controlled execution (one schedule)."""

    # "ok" | "bug" | "depth-bound" | "time-bound" | "stopped" | "watchdog"
    # | "pruned" (schedule-space reduction: the execution reached a state
    # the campaign had already explored and was abandoned early)
    status: str
    steps: int
    scheduling_points: int
    trace: Optional[ScheduleTrace]
    bug: Optional[BugReport] = None
    # Telemetry: faults injected this execution, their outcomes indexed
    # by FAULT_* code, and how many scheduling points actually consulted
    # the strategy (the rest were forced single-choice continuations).
    faults_injected: int = 0
    fault_kinds: Tuple[int, ...] = (0, 0, 0, 0, 0)
    consulted: int = 0

    @property
    def buggy(self) -> bool:
        return self.bug is not None


class _SpawnWorker:
    """Thread-per-execution worker: the historical back-end."""

    __slots__ = ("machine", "mid", "thread", "signal", "state",
                 "final_wake_consumed")

    def __init__(self, runtime: "BugFindingRuntime", machine: Machine) -> None:
        self.machine = machine
        self.mid = machine.id
        self.signal = threading.Semaphore(0)
        self.state = _NEW
        self.final_wake_consumed = False
        self.thread = threading.Thread(
            target=self._main,
            args=(runtime,),
            daemon=True,
            name=f"sct-{machine.id}",
        )
        self.thread.start()

    def _main(self, runtime: "BugFindingRuntime") -> None:
        self.signal.acquire()
        if runtime._canceled:
            return
        runtime._worker_body(self)


class _PoolWorker:
    """A reusable cooperative worker thread.

    Between executions the thread parks on its pre-acquired ``signal``
    lock.  Binding a machine and scheduling it for the first time are the
    same operation as a mid-schedule hand-off: a ``signal.release()``.

    Permit accounting is exact: during one binding the worker consumes
    every scheduler wake sent to it plus *exactly one* end-of-execution
    wake (the cancellation permit from ``_cancel_all``, or a pending
    scheduler permit that cancellation found unconsumed).  Workers that
    unwind on their own — the bug-throwing machine, or a machine that
    halted while others continue — have not consumed that final wake yet,
    so they park on it *before* retiring (``final_wake_consumed``
    distinguishes the two unwind shapes).  The worker's lock is therefore
    provably locked-and-permit-free when it returns to the pool, which is
    what makes rebinding it to the next execution safe.
    """

    __slots__ = ("thread", "signal", "machine", "mid", "state", "runtime",
                 "retired", "shutdown", "final_wake_consumed")

    def __init__(self, index: int) -> None:
        # A raw lock used as a binary semaphore: created "empty" so the
        # first release wakes the thread.  Lock beats Semaphore here —
        # hand-offs happen at every scheduling point and Lock is a C
        # primitive while Semaphore is condition-variable Python.
        self.signal = threading.Lock()
        self.signal.acquire()
        self.machine: Optional[Machine] = None
        self.mid: Optional[MachineId] = None
        self.state = _DONE
        self.runtime: Optional["BugFindingRuntime"] = None
        self.retired = True
        self.shutdown = False
        self.final_wake_consumed = False
        self.thread = threading.Thread(
            target=self._main, daemon=True, name=f"sct-pool-{index}"
        )
        self.thread.start()

    def _main(self) -> None:
        while True:
            self.signal.acquire()
            if self.shutdown:
                return
            runtime = self.runtime
            if runtime is None:
                continue  # defensive: re-park on an unexplained wake
            try:
                if runtime._canceled:
                    # Bound but never scheduled: this wake *is* the
                    # cancellation permit.
                    self.final_wake_consumed = True
                else:
                    runtime._worker_body(self)
            finally:
                if not self.final_wake_consumed:
                    # Unwound spontaneously: the end-of-execution permit
                    # is still owed to this worker.  Wait for it so the
                    # lock is clean before the pool can rebind us.
                    self.signal.acquire()
                self.runtime = None
                self.machine = None
                runtime._worker_retired(self)


class WorkerPool:
    """A pool of reusable cooperative worker threads.

    Sized by the maximum number of machines ever simultaneously bound;
    workers are parked (blocked on their signal lock) between executions.
    One shared process-wide pool serves every pooled runtime by default —
    workers carry no runtime state between bindings.

    Fork-safe: ``fork`` only duplicates the forking thread, so parked
    worker threads do not exist in a child process (e.g. a portfolio
    worker).  The pool detects the new pid and rebuilds itself empty
    before handing out workers there.
    """

    def __init__(self) -> None:
        self._free: List[_PoolWorker] = []
        self._created = 0
        self._lock = threading.Lock()
        self._pid = os.getpid()

    def _repair_after_fork(self) -> None:
        # Runs on the child's (still single) thread: inherited workers are
        # threadless shells and the inherited lock may be stuck mid-hold.
        self._lock = threading.Lock()
        self._free = []
        self._created = 0
        self._pid = os.getpid()

    def checkout(self) -> _PoolWorker:
        if self._pid != os.getpid():
            self._repair_after_fork()
        with self._lock:
            if self._free:
                return self._free.pop()
            index = self._created
            self._created += 1
        return _PoolWorker(index)

    def checkin(self, worker: _PoolWorker) -> None:
        if self._pid != os.getpid():
            self._repair_after_fork()
            return  # the worker being returned is a pre-fork shell: drop it
        with self._lock:
            self._free.append(worker)

    @property
    def size(self) -> int:
        return self._created

    @property
    def idle(self) -> int:
        return len(self._free)

    def shutdown(self) -> None:
        """Terminate all parked workers (bound workers are left alone)."""
        with self._lock:
            workers, self._free = self._free, []
            self._created -= len(workers)
        for worker in workers:
            worker.shutdown = True
            worker.signal.release()
        for worker in workers:
            worker.thread.join(timeout=1.0)


class _InlineWorker:
    """One machine's seat on the single-thread inline backend.

    ``gen`` is the machine's cooperative body
    (:meth:`BugFindingRuntime._inline_body`): a generator that yields the
    next machine id at every control transfer.  The trampoline resumes
    it when the strategy picks this machine; between resumptions the
    machine's entire action stack sits suspended inside the generator.
    The ``state`` field carries the same :class:`_WorkerState` protocol
    the threaded workers use, so ``_schedulable`` is back-end agnostic.
    """

    __slots__ = ("machine", "mid", "state", "gen")

    def __init__(self, runtime: "BugFindingRuntime", machine: Machine) -> None:
        self.machine = machine
        self.mid = machine.id
        self.state = _NEW
        self.gen = runtime._inline_body(self)


_shared_pool = WorkerPool()


def shared_worker_pool() -> WorkerPool:
    """The process-wide default pool used by pooled runtimes."""
    return _shared_pool


class BugFindingRuntime(RuntimeBase):
    """A runtime whose interleavings are decided by a scheduling strategy.

    Parameters
    ----------
    strategy:
        The search strategy (DFS, random, replay, PCT, ...).
    max_steps:
        Depth bound on scheduling decisions per execution.  Exceeding it
        terminates the execution; with ``livelock_as_bug`` it is reported
        as a potential liveness violation (how Section 7.2.2 detects the
        German-benchmark livelock).
    record_trace:
        Record every decision so a found bug can be replayed.
    deadline:
        Absolute ``time.monotonic()`` deadline.  Unlike the engine's
        per-iteration time-limit check, this cuts off an execution *mid
        schedule* (status ``"time-bound"``), so a single long iteration
        cannot blow past the campaign budget.
    stop_check:
        Polled periodically; when it returns True the execution aborts
        with status ``"stopped"``.  Portfolio workers pass the shared
        first-bug-wins cancellation event here.
    workers:
        ``"inline"`` runs every machine on this thread as resumable
        generator coroutines (the continuation runtime — fastest, but
        handlers must be source-analysable; see
        :mod:`repro.core.continuations`); ``"pool"`` binds machines to
        reusable pooled threads (default); ``"spawn"`` creates a thread
        per machine per execution (the historical path, kept for A/B
        benchmarking); ``"auto"`` resolves per campaign at
        :meth:`execute` time — inline when the main machine class
        compiles (``Machine.inline_compatible``), pool otherwise — with
        the resolved choice readable as :attr:`effective_workers`.  (A
        machine class *created mid-execution* that fails to compile
        still raises :class:`InlineCompileError` out of ``execute``;
        the engine layer catches it and restarts the campaign on the
        pooled backend.)  All back-ends produce identical traces for
        the same strategy seed.
    pool:
        The :class:`WorkerPool` to draw pooled workers from; defaults to
        the shared process-wide pool.
    monitors:
        Specification monitor classes (:class:`~repro.testing.monitors
        .Monitor` subclasses) attached to every execution.  Each execution
        gets fresh instances; observed events are mirrored to them
        synchronously, assertion failures become ``"monitor"`` bugs, and
        liveness monitors (any hot state) enable temperature detection.
    max_hot_steps:
        Temperature threshold: a liveness monitor that stays hot for more
        than this many consecutive steps under a *fair* strategy
        (``strategy.is_fair()``) reports a ``"liveness"`` bug naming the
        hot monitor state.  A monitor that is hot when the program
        terminates is reported regardless of the strategy's fairness.
        When liveness monitors are attached they are authoritative: the
        legacy ``livelock_as_bug`` depth-bound heuristic is suppressed.
    faults:
        A :class:`~repro.testing.faults.FaultConfig` arming deterministic
        fault injection (message drop/duplicate/delay, machine
        crash-restart).  Every injected fault is a strategy decision
        recorded in the trace under the ``"fault"`` kind, so faulty
        executions replay bit-identically on every back-end.  ``None``
        (the default) explores failure-free executions only.
    iteration_timeout:
        Per-execution wall-clock watchdog, in seconds: an execution that
        runs longer is canceled with status ``"watchdog"`` instead of
        wedging its campaign slot.  Checked at the same polling cadence
        as ``deadline``, so a handler stuck in native code without
        scheduling steps cannot be interrupted — the watchdog targets
        runaway step churn (livelock-shaped iterations with generous
        ``max_steps``).
    coverage:
        A :class:`~repro.testing.coverage.CoverageMap` to accumulate
        activity coverage into, across every execution this runtime
        runs: states entered, transitions taken, events
        sent/dequeued/dropped, machine instances and halts.  Collection
        rides the existing hook points at identical positions on all
        three back-ends, so for a fixed strategy seed the resulting map
        is bit-identical across inline/pool/spawn.  ``None`` (default)
        disables collection; the hooks then cost one boolean/None test.
    reduction:
        A :class:`~repro.testing.reduction.ReductionEngine` arming
        schedule-space reduction.  The runtime reports each step's
        object footprint to it (the independence oracle), consults its
        state cache at every scheduling point — abandoning executions
        that reach an already-explored state with status ``"pruned"``
        and a ``"reduction"`` trace record — and feeds it the step log
        the DFS strategies' DPOR analysis mines for races.  ``None``
        (the default) keeps every reduction hook dark.
    """

    # How many scheduling steps between deadline/stop_check polls: the
    # checks must not dominate the hot handoff path.
    _POLL_MASK = 31

    # How long execute() waits for workers to unwind at end-of-execution
    # before declaring the runtime tainted (see ``tainted``).
    _retire_timeout = 5.0

    def __init__(
        self,
        strategy: SchedulingStrategy,
        max_steps: int = 20_000,
        record_trace: bool = True,
        livelock_as_bug: bool = False,
        deadline: Optional[float] = None,
        stop_check: Optional[Callable[[], bool]] = None,
        workers: str = "pool",
        pool: Optional[WorkerPool] = None,
        monitors: Sequence[Type[Monitor]] = (),
        max_hot_steps: int = 1000,
        faults: Optional[FaultConfig] = None,
        iteration_timeout: Optional[float] = None,
        coverage: Optional[CoverageMap] = None,
        reduction: Optional[ReductionEngine] = None,
    ) -> None:
        super().__init__()
        if workers not in ("auto", "inline", "pool", "spawn"):
            raise ValueError(
                "workers must be 'auto', 'inline', 'pool' or 'spawn', "
                f"got {workers!r}"
            )
        if faults is not None and not isinstance(faults, FaultConfig):
            raise ValueError(f"faults must be a FaultConfig, got {faults!r}")
        if iteration_timeout is not None and iteration_timeout <= 0:
            raise ValueError(
                f"iteration_timeout must be positive, got {iteration_timeout!r}"
            )
        for monitor_cls in monitors:
            if not (isinstance(monitor_cls, type) and issubclass(monitor_cls, Monitor)):
                raise ValueError(
                    f"monitors must be Monitor subclasses, got {monitor_cls!r}"
                )
        self.strategy = strategy
        self.max_steps = max_steps
        self.record_trace = record_trace
        self.livelock_as_bug = livelock_as_bug
        self.deadline = deadline
        self.stop_check = stop_check
        self.workers = workers
        # The back-end actually driving executions: equal to ``workers``
        # when concrete, re-resolved per main class at execute() time when
        # "auto" (provisionally a threaded mode so construction-time
        # reset() builds the _done lock).
        self.effective_workers = workers if workers != "auto" else "pool"
        self.monitors: Tuple[Type[Monitor], ...] = tuple(monitors)
        self.max_hot_steps = max_hot_steps
        self.faults = faults
        self.iteration_timeout = iteration_timeout
        # Fault weights quantized once (the config is frozen); zeros when
        # fault injection is off, so the armed flags reset() derives from
        # them keep the hot paths on their fault-free branch.
        if faults is not None and faults.enabled:
            self._msg_weights = faults.message_weights
            self._crash_weight = faults.crash_weight
            self._crash_classes = faults.crash_classes
            self._fault_budget = faults.max_faults
        else:
            self._msg_weights = (0, 0, 0)
            self._crash_weight = 0
            self._crash_classes = ()
            self._fault_budget = 0
        self._has_liveness_monitors = any(has_hot_states(m) for m in self.monitors)
        self._pool = pool if pool is not None else _shared_pool
        self._hook_visible = (
            type(self).on_visible_operation
            is not BugFindingRuntime.on_visible_operation
        )
        self._retire_lock = threading.Lock()
        self._all_retired = threading.Event()
        # True once a worker thread outlived the end-of-execution barrier
        # (non-terminating or slow-unwinding user code).  A tainted
        # runtime must not be reused: reset() would clear _canceled and
        # the straggler thread, on resuming, would mutate the *next*
        # execution's state.  Leaving the runtime canceled forever makes
        # the straggler unwind harmlessly — the same benign leak the old
        # runtime-per-iteration design had.  drive() constructs a fresh
        # runtime when it sees the flag.
        self.tainted = False
        # Activity-coverage collection (repro.testing.coverage): the map
        # accumulates across every execution this runtime runs, so the
        # engine reads one campaign-level map at the end.  Armed before
        # the construction-time reset() below — monitor boots during
        # reset are state entries too.  When None (the default), the
        # class-level ``_hook_state = False`` keeps every hook dark.
        if coverage is not None and not isinstance(coverage, CoverageMap):
            raise ValueError(f"coverage must be a CoverageMap, got {coverage!r}")
        self._cov = coverage
        self._hook_state = coverage is not None
        # Schedule-space reduction (repro.testing.reduction): like the
        # coverage map, the engine spans the whole campaign while the
        # runtime feeds it per-execution facts.  Armed before the
        # construction-time reset() below, which keys per-execution
        # reduction state off it.
        if reduction is not None and not isinstance(reduction, ReductionEngine):
            raise ValueError(
                f"reduction must be a ReductionEngine, got {reduction!r}"
            )
        self._red = reduction
        # Per-execution state (see reset()).  Initialized non-virtually so
        # subclass __init__ order cannot break construction.
        BugFindingRuntime.reset(self)

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def reset(self) -> None:
        """Return the runtime to a pristine state so it can run another
        execution.  ``execute`` calls this automatically, which also
        repairs the stale ``_current``/counter state a canceled or
        depth-bounded execution leaves behind.

        Subclasses with per-execution state (e.g. the CHESS baseline's
        vector clocks) must override this and call ``super().reset()``.
        """
        # Registry state from RuntimeBase.
        self._machines.clear()
        self._next_id = 0
        self._error = None
        # Execution state.
        self._workers: Dict[MachineId, Any] = {}
        self._worker_list: List[Any] = []  # in machine-creation order
        # The schedulable set, maintained incrementally (sorted by machine
        # id, i.e. creation order — the order the old per-point walk
        # produced): _spawn adds, idle-entry and halt remove, and
        # _idle_pending holds idle seats whose deliverability must be
        # re-checked (an enqueue landed since they idled) at the next
        # scheduling point.  See _schedulable.
        self._enabled: List[MachineId] = []
        self._idle_pending: List[Any] = []
        # Per-machine log of nondeterministic outcomes (bool/int/fault)
        # consumed this execution, keyed by machine id value.  Part of the
        # state fingerprint: two states are only equivalent if every
        # machine's *suspended handler* is at the same position, and a
        # handler's position is determined by the machine's visible state
        # plus the nondeterminism it consumed.  Schedule permutations of
        # independent steps preserve each machine's own log, so diamonds
        # still merge.  None (no allocation, no appends) unless the
        # reduction engine's state cache is armed.
        self._nondet_log: Optional[Dict[int, List[int]]] = (
            {} if self._red is not None and self._red.cache_on else None
        )
        if self.effective_workers == "inline":
            # No waiting thread to signal: the trampoline runs the whole
            # execution synchronously inside execute().
            self._done = None
        else:
            self._done = threading.Lock()
            self._done.acquire()
        self._canceled = False
        self._finished = False
        self._status = "ok"
        self._bug: Optional[BugReport] = None
        self._trace: Optional[ScheduleTrace] = None
        self._sched_points = 0
        self._steps = 0
        self._current: Optional[MachineId] = None
        # Per-iteration watchdog deadline, armed by execute().
        self._iter_deadline: Optional[float] = None
        self._poll = (
            self.deadline is not None
            or self.stop_check is not None
            or self.iteration_timeout is not None
        )
        # Fault-injection state: fired-fault count, armed flags (cleared
        # when the budget runs out, stopping all further consultation),
        # and the replay probe that re-fires recorded outcomes instead of
        # consulting probabilities.
        self._faults_injected = 0
        self._send_fault_active = any(self._msg_weights) and self._fault_budget > 0
        self._crash_fault_active = self._crash_weight > 0 and self._fault_budget > 0
        self._fault_probe = getattr(self.strategy, "next_fault_outcome", None)
        # Telemetry counters: injected-fault outcomes by FAULT_* code and
        # strategy-consulted (non-forced) scheduling decisions.
        self._fault_kinds = [0, 0, 0, 0, 0]
        self._consulted = 0
        # Pooled-worker bookkeeping.
        self._bound: List[_PoolWorker] = []
        self._live = 0
        self._all_retired.clear()
        # Specification monitors: fresh instances per execution (their
        # state is per-schedule), lazily memoized event->observers tables,
        # and temperature bookkeeping.  ``_hot_deadline`` is the earliest
        # step at which some hot monitor exceeds the threshold — a single
        # comparison on the counting hot path.
        self._monitors = []
        self._monitor_by_class: Dict[type, Monitor] = {}
        self._send_observers: Dict[type, tuple] = {}
        self._dequeue_observers: Dict[type, tuple] = {}
        self._hot_since: Dict[Monitor, int] = {}
        self._hot_deadline = _NO_DEADLINE
        # Temperature detection needs fairness: under an unfair strategy a
        # monitor can stay hot forever because the strategy starves the
        # machine that would cool it, not because the program livelocks.
        self._temp_enabled = self._has_liveness_monitors and self.strategy.is_fair()
        # Replay probe (ReplayStrategy.temperature_may_fire): non-None
        # when the strategy replays a recorded schedule, gating the
        # temperature check to fire exactly where the recorded run did
        # (see _count_step).
        self._replay_probe = getattr(self.strategy, "temperature_may_fire", None)
        self._monitors_attached = bool(self.monitors)
        # Dequeue mirroring rides the existing hook flag; keep it hot only
        # for subclasses that override the hook (CHESS) or when some
        # attached monitor observes at dequeue time.
        self._hook_dequeued = (
            type(self).on_event_dequeued is not BugFindingRuntime.on_event_dequeued
            or any(m.observes_dequeue for m in self.monitors)
            or self._cov is not None  # dequeue counting rides the hook
        )
        if self._cov is not None:
            # Monitors visited in no execution must still contribute
            # their declared states to the uncovered report.
            for monitor_cls in self.monitors:
                self._cov.ensure_class(monitor_cls, monitor=True)
        for index, monitor_cls in enumerate(self.monitors):
            instance = monitor_cls(
                self, MachineId(-(index + 1), monitor_cls.__name__)
            )
            instance._monitor_index = index
            self._monitors.append(instance)
            self._monitor_by_class[monitor_cls] = instance
        for instance in self._monitors:
            instance._boot()
            if self._temp_enabled and instance.is_hot:
                self._note_temperature(instance)

    def close(self) -> None:
        """Shut down a privately owned worker pool (no-op for the shared
        pool, whose parked threads are reused process-wide)."""
        if self._pool is not _shared_pool:
            self._pool.shutdown()

    # ==================================================================
    # Public entry point
    # ==================================================================
    def resolve_workers(self, main_cls: Type[Machine]) -> str:
        """The back-end :meth:`execute` will use for ``main_cls``.

        Concrete ``workers`` values are themselves; ``"auto"`` resolves
        through the backend-resolution hook
        (:meth:`~repro.core.machine.Machine.inline_compatible`): the
        inline continuation runtime when the main class compiles, the
        pooled-thread backend otherwise."""
        if self.workers != "auto":
            return self.workers
        return "inline" if main_cls.inline_compatible() else "pool"

    @property
    def machine_count(self) -> int:
        """Number of machines the current (or most recent) execution has
        created, the main machine included."""
        return len(self._machines)

    def execute(self, main_cls: Type[Machine], payload: Any = None) -> ExecutionResult:
        """Run the program once, from start to completion, under the
        strategy's schedule.  Reusable: each call starts from a reset
        runtime and releases its workers before returning."""
        if self.tainted:
            raise PSharpError(
                "runtime is tainted: a worker thread from a previous "
                "execution never unwound; construct a fresh runtime"
            )
        if self.workers == "auto":
            # Resolve before reset(): the worker plumbing reset() builds
            # (the _done lock, pooled bookkeeping) is back-end specific.
            self.effective_workers = self.resolve_workers(main_cls)
        self.reset()
        if self.iteration_timeout is not None:
            self._iter_deadline = time.monotonic() + self.iteration_timeout
        trace = ScheduleTrace() if self.record_trace else None
        self._trace = trace
        red = self._red
        if red is not None:
            red.begin_execution()
        # Consulted-decisions bookkeeping under reduction: DPOR frames
        # that offer exactly one branch predetermine the pick, so those
        # consultations are subtracted below — the telemetry ratio keeps
        # meaning "decisions with real alternatives".
        forced_base = getattr(self.strategy, "reduction_forced", 0)
        mid = self._spawn(main_cls, payload)
        # The very first decision is forced: only the main machine exists.
        self.strategy.observe_forced(mid)
        if trace is not None:
            trace.append(SCHED_TAG, mid.value)
        if red is not None:
            red.chose(mid.value, (mid.value,))
        if self.effective_workers == "inline":
            self._run_inline(self._workers[mid])
        else:
            self._workers[mid].signal.release()
            self._done.acquire()
            self._cancel_all()
            if self.effective_workers == "pool":
                self._release_pool_workers()
            else:
                for worker in self._workers.values():
                    worker.thread.join(timeout=self._retire_timeout)
                if any(w.thread.is_alive() for w in self._workers.values()):
                    self.tainted = True
        consulted = self._consulted
        if red is not None:
            red.end_execution(trace)
            reduction_forced = (
                getattr(self.strategy, "reduction_forced", 0) - forced_base
            )
            if reduction_forced > 0:
                consulted = max(0, consulted - reduction_forced)
        return ExecutionResult(
            status=self._status,
            steps=self._steps,
            scheduling_points=self._sched_points,
            trace=trace,
            bug=self._bug,
            faults_injected=self._faults_injected,
            fault_kinds=tuple(self._fault_kinds),
            consulted=consulted,
        )

    def _release_pool_workers(self) -> None:
        """Wait for every bound worker to unwind, then return them to the
        pool.  Retirement implies the worker consumed its end-of-execution
        permit, so its lock is clean for the next binding."""
        if not self._all_retired.wait(timeout=self._retire_timeout):
            # A straggler is still unwinding; it and this runtime are
            # written off (leaked worker, tainted runtime) so it can
            # never corrupt a later execution.
            self.tainted = True
        bound, self._bound = self._bound, []
        for worker in bound:
            if worker.retired:
                self._pool.checkin(worker)

    # ==================================================================
    # RuntimeBase interface (called from inside running actions)
    # ==================================================================
    def create_machine(
        self,
        machine_cls: Type[Machine],
        payload: Any = None,
        creator: Optional[Machine] = None,
    ) -> MachineId:
        mid = self._spawn(machine_cls, payload)
        if creator is not None:
            # Scheduling point *after* creation: the new machine is now a
            # branch the strategy may choose.
            self._schedule(creator.id)
        return mid

    def send(
        self, target: MachineId, event: Event, sender: Optional[Machine] = None
    ) -> None:
        if self._monitors_attached:
            observers = self._observers_for(type(event), self._send_observers, "observes")
            if observers:
                self._deliver_to_monitors(observers, event)
        machine = self._machines.get(target)
        cov = self._cov
        if cov is not None:
            cov.record_send(event, machine is None or machine._halted)
        if machine is not None and not machine._halted:
            if self._red is not None:
                # Independence oracle: the target inbox is part of this
                # step's footprint (with or without a fault — the fault
                # decision never commutes with its own send).
                self._red.effects.append(target.value)
            # Message-fault consultation point (kept in sync with the
            # inlined OP_SEND blocks of _inline_body/_inline_drive).
            if self._send_fault_active and (fault := self._consult_send_fault()):
                self._apply_send_fault(machine, event, fault)
            else:
                machine._inbox.append(event)
                if not machine._inbox_dirty:
                    machine._inbox_dirty = True
                    worker = self._worker_list[target.value]
                    if worker.state is _IDLE:
                        self._idle_pending.append(worker)
                if self._hook_visible:
                    self.on_visible_operation(machine, "enqueue")
        if sender is not None:
            self._schedule(sender.id)

    def nondet(self, machine: Machine) -> bool:
        if self._canceled:
            raise ExecutionCanceled()
        value = self.strategy.pick_bool()
        if self._trace is not None:
            self._trace.append(BOOL_TAG, int(value))
        log = self._nondet_log
        if log is not None:
            log.setdefault(machine.id.value, []).append(int(value))
        return value

    def nondet_int(self, machine: Machine, bound: int) -> int:
        if self._canceled:
            raise ExecutionCanceled()
        value = self.strategy.pick_int(bound)
        if self._trace is not None:
            self._trace.append(INT_TAG, value)
        log = self._nondet_log
        if log is not None:
            log.setdefault(machine.id.value, []).append(value)
        return value

    # ------------------------------------------------------------------
    # Fault injection (see repro.testing.faults)
    # ------------------------------------------------------------------
    def _consult_send_fault(self) -> int:
        """One message-fault consultation: decide (via the strategy) and
        record the fault outcome for the send being performed.

        Called only while send faults are armed and budget remains.  The
        outcome — including "no fault" — is appended to the trace under
        the ``"fault"`` kind, so replay re-fires exactly the recorded
        faults: consultation points are positionally aligned because the
        replaying runtime runs with the same :class:`FaultConfig`.
        """
        probe = self._fault_probe
        if probe is not None:
            outcome = probe()
            if outcome == FAULT_CRASH:
                # A crash outcome cannot apply to a send: the replayed
                # schedule diverged, fall back to fault-free delivery.
                outcome = FAULT_NONE
        else:
            drop_w, dup_w, delay_w = self._msg_weights
            pick_fault = self.strategy.pick_fault
            if drop_w and pick_fault(drop_w):
                outcome = FAULT_DROP
            elif dup_w and pick_fault(dup_w):
                outcome = FAULT_DUPLICATE
            elif delay_w and pick_fault(delay_w):
                outcome = FAULT_DELAY
            else:
                outcome = FAULT_NONE
        if self._trace is not None:
            self._trace.append(FAULT_TAG, outcome)
        log = self._nondet_log
        if log is not None and self._current is not None:
            # Part of the sender's consumed-nondeterminism fingerprint: a
            # dropped send leaves the same inboxes as no send at all, so
            # the fault outcome itself must distinguish the two states.
            log.setdefault(self._current.value, []).append(outcome)
        if outcome != FAULT_NONE:
            self._faults_injected += 1
            self._fault_kinds[outcome] += 1
            if self._faults_injected >= self._fault_budget:
                self._send_fault_active = False
                self._crash_fault_active = False
        return outcome

    def _apply_send_fault(self, target: Machine, event: Event, outcome: int) -> None:
        """Deliver ``event`` to ``target`` under a non-trivial fault
        outcome.  Drop loses the message entirely; duplicate enqueues it
        twice; delay makes it overtake the previously queued message
        (pairwise reordering — a no-op on an empty inbox)."""
        if outcome == FAULT_DROP:
            if self._cov is not None:
                self._cov.record_drop(event)
            return
        inbox = target._inbox
        if outcome == FAULT_DUPLICATE:
            inbox.append(event)
            inbox.append(event)
        else:  # FAULT_DELAY
            if inbox:
                inbox.insert(len(inbox) - 1, event)
            else:
                inbox.append(event)
        if not target._inbox_dirty:
            target._inbox_dirty = True
            worker = self._worker_list[target.id.value]
            if worker.state is _IDLE:
                self._idle_pending.append(worker)
        if self._hook_visible:
            self.on_visible_operation(target, "enqueue")

    def _consult_crash_fault(self) -> bool:
        """One crash-fault consultation for the machine about to take its
        next step.  Returns True when the machine should crash-restart
        now; the outcome is recorded like every other fault decision."""
        probe = self._fault_probe
        if probe is not None:
            fire = probe() == FAULT_CRASH
        else:
            fire = self.strategy.pick_fault(self._crash_weight)
        if self._trace is not None:
            self._trace.append(FAULT_TAG, FAULT_CRASH if fire else FAULT_NONE)
        log = self._nondet_log
        if log is not None and self._current is not None:
            log.setdefault(self._current.value, []).append(
                FAULT_CRASH if fire else FAULT_NONE
            )
        if fire:
            self._faults_injected += 1
            self._fault_kinds[FAULT_CRASH] += 1
            if self._faults_injected >= self._fault_budget:
                self._send_fault_active = False
                self._crash_fault_active = False
        return fire

    def _crash_restart(self, machine: Machine) -> None:
        """Crash ``machine`` in place: wipe its volatile state (fields,
        inbox, raised event, current state) and reposition it at its
        initial state with its original creation payload, as if the node
        rebooted.  Fields named in the class's ``persistent_fields``
        survive when the fault config models durable storage
        (``persistent_state=True``).  The caller re-enters the initial
        state through the back-end-appropriate start path."""
        saved = None
        faults = self.faults
        if faults is not None and faults.persistent_state:
            fields = type(machine).persistent_fields
            if fields:
                values = machine.__dict__
                saved = [(name, values[name]) for name in fields if name in values]
        machine.__dict__.clear()
        machine._inbox.clear()
        machine._raised = None
        machine._current_state = None
        machine._current_event = machine._boot_event
        machine._inbox_dirty = True
        machine._idle_deliverable = False
        if saved:
            machine.__dict__.update(saved)

    def on_machine_halted(self, machine: Machine) -> None:
        worker = self._workers.get(machine.id)
        if worker is not None:
            worker.state = _DONE
            try:
                # A machine only halts while running, so it is in the
                # enabled set; discard-style removal keeps double halts
                # (or exotic subclass call orders) harmless.
                self._enabled.remove(machine.id)
            except ValueError:
                pass
        if self._cov is not None:
            self._cov.record_halt(type(machine))
        if self._monitors_attached:
            observers = self._observers_for(
                EMachineHalted, self._send_observers, "observes"
            )
            if observers:
                self._deliver_to_monitors(observers, EMachineHalted(machine.id))

    def on_event_dequeued(self, machine: Machine, event: Event) -> None:
        if self._cov is not None:
            self._cov.record_dequeue(event)
        if self._monitors_attached:
            observers = self._observers_for(
                type(event), self._dequeue_observers, "observes_dequeue"
            )
            if observers:
                self._deliver_to_monitors(observers, event)

    def on_state_entered(self, machine, old_info, event) -> None:
        """Activity-coverage hook (see :mod:`repro.testing.coverage`).
        Called from the machine's state-entry paths only while
        ``_hook_state`` is armed, i.e. ``_cov`` is attached."""
        self._cov.record_entry(
            type(machine),
            None if old_info is None else old_info.name,
            event,
            machine._current_state.name,
        )

    # ------------------------------------------------------------------
    # Specification monitors
    # ------------------------------------------------------------------
    def invoke_monitor(
        self, monitor_cls: type, event: Event, source: Optional[Machine] = None
    ) -> None:
        """Explicit monitor invocation (``machine.monitor(Cls, event)``).

        A no-op when ``monitor_cls`` is not attached, so instrumented
        programs run unchanged without their specifications."""
        instance = self._monitor_by_class.get(monitor_cls)
        if instance is not None:
            self._deliver_to_monitors((instance,), event)

    def _observers_for(self, event_cls: type, table: Dict[type, tuple], attr: str) -> tuple:
        observers = table.get(event_cls)
        if observers is None:
            observers = tuple(
                m for m in self._monitors
                if any(issubclass(event_cls, o) for o in getattr(m, attr))
            )
            table[event_cls] = observers
        return observers

    def _deliver_to_monitors(self, observers: tuple, event: Event) -> None:
        """Run ``event`` through each observing monitor synchronously.

        Every invocation is recorded in the trace (kind ``"monitor"``,
        value: the monitor's registration index) so traces with
        specifications attached stay bit-identical across worker back-ends
        and replays.  Monitor assertion failures surface as
        :class:`MonitorError` (bug kind ``"monitor"``)."""
        trace = self._trace
        red = self._red
        for instance in observers:
            if trace is not None:
                trace.append(MONITOR_TAG, instance._monitor_index)
            if red is not None:
                # Independence oracle: monitor state is order-sensitive,
                # so two steps observed by the same monitor never commute
                # even when their send targets differ.  Monitors get the
                # negative keys (machine inboxes are >= 0).
                red.effects.append(-(instance._monitor_index + 1))
            try:
                instance._observe(event)
            except AssertionFailure as exc:
                message = str(exc)
                prefix = f"{instance!r}: "
                if message.startswith(prefix):  # assert_that's own naming
                    message = message[len(prefix):]
                raise MonitorError(instance, message) from exc
            except UnhandledEventError as exc:
                # A spec-authoring defect (observed event unhandled in the
                # monitor's current state): blame the monitor, not the
                # innocent machine whose send mirrored the event.
                raise MonitorError(instance, str(exc)) from exc
            if self._temp_enabled:
                self._note_temperature(instance)

    def _note_temperature(self, instance: Monitor) -> None:
        """Update hot-state bookkeeping after ``instance`` processed an
        event.  A monitor stays "hot since" its first hot observation until
        it reaches any non-hot state (hot-to-hot transitions keep
        accumulating temperature, as in P#'s liveness monitors)."""
        hot_since = self._hot_since
        if instance.is_hot:
            if instance not in hot_since:
                hot_since[instance] = self._steps
                deadline = self._steps + self.max_hot_steps
                if deadline < self._hot_deadline:
                    self._hot_deadline = deadline
        elif instance in hot_since:
            del hot_since[instance]
            self._hot_deadline = (
                min(hot_since.values()) + self.max_hot_steps
                if hot_since else _NO_DEADLINE
            )

    def _report_hot_liveness(self) -> None:
        """A monitor exceeded the temperature threshold: report a liveness
        bug naming the hot monitor state (Section 7.2's hot/cold liveness
        detection, replacing the bare depth-bound heuristic)."""
        instance = min(self._hot_since, key=self._hot_since.get)
        since = self._hot_since[instance]
        state = instance.current_state
        if self._trace is not None:
            # The firing is part of the schedule record: replay uses it to
            # fire at exactly this point, and its absence in a trace
            # proves the recorded run survived its hot stretches.
            self._trace.append(LIVENESS_TAG, instance._monitor_index)
        message = (
            f"liveness violation: monitor {type(instance).__name__} stayed hot "
            f"in state {state!r} for {self._steps - since} fair steps "
            f"(threshold {self.max_hot_steps}, hot since step {since})"
        )
        self._report_bug(
            "liveness",
            message,
            instance,
            LivenessError(
                message,
                monitor=type(instance).__name__,
                state=state,
                step=self._steps,
            ),
        )

    def _check_monitors_at_termination(self) -> None:
        """A liveness monitor that is hot when the program terminates is a
        definitive violation — no fairness argument needed, the program
        finished and the obligation was never met."""
        for instance in self._monitors:
            if instance.is_hot:
                state = instance.current_state
                message = (
                    f"liveness violation: monitor {type(instance).__name__} is "
                    f"hot in state {state!r} at program termination "
                    f"(step {self._steps})"
                )
                self._report_bug(
                    "liveness",
                    message,
                    instance,
                    LivenessError(
                        message,
                        monitor=type(instance).__name__,
                        state=state,
                        step=self._steps,
                    ),
                )
                return

    # Hook for the CHESS baseline: called on extra visible operations
    # (queue ops, field accesses).  The base runtime ignores them — this is
    # precisely the P# optimization of Section 6.2.
    def on_visible_operation(self, machine: Machine, kind: str) -> None:
        pass

    # ==================================================================
    # Worker machinery
    # ==================================================================
    def _spawn(self, machine_cls: Type[Machine], payload: Any) -> MachineId:
        inline = self.effective_workers == "inline"
        if inline and "_inline_ready" not in machine_cls.__dict__:
            compile_inline_machine(machine_cls)
        machine = self._instantiate(machine_cls, payload)
        if self._cov is not None:
            self._cov.record_machine(machine_cls)
        if self._red is not None:
            # Independence oracle: creating a machine touches it (nothing
            # else can have, yet).
            self._red.effects.append(machine.id.value)
        if inline:
            worker = self._workers[machine.id] = _InlineWorker(self, machine)
            self._worker_list.append(worker)
            # New ids are allocated in increasing order, so appending
            # keeps the enabled set sorted.
            self._enabled.append(machine.id)
            return machine.id
        if self.effective_workers == "pool":
            worker = self._pool.checkout()
            worker.machine = machine
            worker.mid = machine.id
            worker.state = _NEW
            worker.retired = False
            worker.final_wake_consumed = False
            worker.runtime = self
            with self._retire_lock:
                self._live += 1
            self._bound.append(worker)
        else:
            worker = _SpawnWorker(self, machine)
        self._workers[machine.id] = worker
        self._worker_list.append(worker)
        self._enabled.append(machine.id)
        return machine.id

    def _worker_retired(self, worker: _PoolWorker) -> None:
        with self._retire_lock:
            worker.retired = True
            self._live -= 1
            if self._live == 0:
                self._all_retired.set()

    def _worker_body(self, worker: Any) -> None:
        """Run one machine to completion under the cooperative schedule.
        Entered with the signal permit held (this worker was scheduled)."""
        machine = worker.machine
        worker.state = _RUNNING
        self._current = machine.id
        try:
            machine._start()
            count_step = self._count_step
            step = machine._step
            hook_visible = self._hook_visible
            poll = self._poll
            max_steps = self.max_steps
            crash_eligible = self._crash_weight > 0 and (
                not self._crash_classes
                or isinstance(machine, self._crash_classes)
            )
            while not machine._halted:
                # Crash-fault consultation point, between steps so every
                # handler stays atomic with respect to its own crash
                # (kept in sync with _inline_body).
                if (
                    crash_eligible
                    and self._crash_fault_active
                    and self._consult_crash_fault()
                ):
                    self._crash_restart(machine)
                    machine._start()
                    continue
                # Fast path of _count_step (kept in sync with the inline
                # body): bump the counter, fall back to the real method
                # whenever any of its checks could fire.
                steps = self._steps + 1
                if poll or steps > self._hot_deadline or steps > max_steps:
                    count_step()
                else:
                    self._steps = steps
                if hook_visible:
                    self.on_visible_operation(machine, "dequeue")
                progressed = step()
                if machine._halted:
                    break
                if not progressed:
                    self._become_idle(worker)
            worker.state = _DONE
            self._handoff(worker, voluntary=False)
        except BaseException as exc:  # noqa: BLE001 - classified below
            self._report_worker_exception(machine, exc)

    def _report_worker_exception(self, machine: Machine, exc: BaseException) -> None:
        """Classify an exception that escaped a machine's cooperative body
        into the paper's bug kinds.  Shared verbatim by the threaded
        worker bodies and the inline trampoline so a given failure is
        reported identically on every back-end."""
        if isinstance(exc, ExecutionCanceled):
            return
        if isinstance(exc, InlineCompileError):
            # A handler the coroutine compiler cannot reshape is a
            # configuration error of the campaign, not a bug in the
            # program under test: surface it to the caller instead of
            # fabricating a BugReport no other backend can reproduce.
            raise exc
        if isinstance(exc, MonitorError):
            self._report_bug("monitor", str(exc), exc.monitor, exc)
        elif isinstance(exc, AssertionFailure):
            self._report_bug("assertion-failure", str(exc), machine, exc)
        elif isinstance(exc, UnhandledEventError):
            self._report_bug("unhandled-event", str(exc), machine, exc)
        elif isinstance(exc, PSharpError):
            self._report_bug("runtime-error", str(exc), machine, exc)
        elif isinstance(exc, Exception):  # paper error class (iii)
            wrapped = ActionError(machine, machine.current_state or "?", exc)
            self._report_bug("action-exception", str(wrapped), machine, wrapped)
        else:
            # KeyboardInterrupt and friends are not bugs; let them fly.
            raise exc

    def _become_idle(self, worker: Any) -> None:
        worker.state = _IDLE
        # The step that just returned False scanned the inbox and found
        # nothing deliverable; nothing can have been enqueued since (only
        # one machine runs at a time), so that verdict seeds the memo.
        machine = worker.machine
        machine._idle_deliverable = False
        machine._inbox_dirty = False
        self._enabled.remove(machine.id)
        self._handoff(worker, voluntary=True)
        # Woken up: either canceled, or we have a deliverable event.
        if self._canceled:
            worker.final_wake_consumed = True
            raise ExecutionCanceled()
        worker.state = _RUNNING
        self._current = worker.machine.id

    # ------------------------------------------------------------------
    # The inline scheduler (single-thread continuation back-end)
    # ------------------------------------------------------------------
    def _run_inline(self, first: _InlineWorker) -> None:
        """The trampoline: resume one machine's cooperative body at a
        time; each ``gen.send`` runs the machine up to its next control
        transfer, which arrives back here as the chosen machine id.  One
        flat loop replaces the threaded back-ends' signal hand-offs, so a
        non-forced scheduling decision costs a strategy call plus a
        generator resume instead of an OS thread switch."""
        current = first
        # Machine ids are allocated in creation order and every machine
        # owns exactly one seat, so _worker_list[mid.value] is the seat —
        # an index instead of a dict probe on every control transfer.
        workers = self._worker_list
        try:
            while True:
                try:
                    choice = current.gen.send(None)
                except StopIteration as stop:
                    # A finished body hands over its final choice (machine
                    # done); a bare return means the execution is over.
                    choice = stop.value
                    if choice is None:
                        break
                except BaseException as exc:  # noqa: BLE001 - classified
                    self._report_worker_exception(current.machine, exc)
                    break
                if self._finished:
                    break
                current = workers[choice.value]
            if not self._finished:
                self._finish("ok")
        finally:
            # Mirror _cancel_all: unwind every still-suspended machine
            # with ExecutionCanceled so user try/finally blocks run
            # exactly as they do when the threaded back-ends cancel
            # their workers.  Runs even when a hard error (e.g.
            # InlineCompileError) propagates to the caller.
            self._canceled = True
            for worker in self._worker_list:
                gen, worker.gen = worker.gen, None
                if gen is None or gen.gi_frame is None:
                    continue  # finished bodies have nothing to unwind
                try:
                    gen.throw(ExecutionCanceled())
                except (StopIteration, ExecutionCanceled):
                    pass
                except InlineCompileError:
                    pass  # the primary error is already propagating
                except BaseException as exc:  # noqa: BLE001 - classified
                    self._report_worker_exception(worker.machine, exc)
                finally:
                    gen.close()

    def _inline_body(self, worker: _InlineWorker):
        """Cooperative body of one machine: the inline counterpart of
        :meth:`_worker_body`.  A generator that yields the next machine
        id whenever the schedule transfers control away; exceptions
        propagate to the trampoline, which classifies them.

        The op-interpreter loop for *step* activations is inlined here
        (it is the hottest code in an inline campaign — a per-step
        delegating generator measurably caps #Sch/sec); it must stay
        semantically identical to :meth:`_inline_drive`, which remains
        the documented reference implementation and drives the
        once-per-machine start activation.
        """
        machine = worker.machine
        worker.state = _RUNNING
        self._current = machine.id
        outcome = machine._start_inline()
        if outcome is not True:
            yield from self._inline_drive(worker, outcome)
        count_step = self._count_step
        step_inline = machine._step_inline
        hook_visible = self._hook_visible
        strategy = self.strategy
        observe_forced = strategy.observe_forced
        pick_machine = strategy.pick_machine
        schedulable = self._schedulable
        machines_get = self._machines.get
        monitors_attached = self._monitors_attached
        cov = self._cov
        red = self._red
        workers_list = self._worker_list
        idle_pending = self._idle_pending
        trace = self._trace
        trace_append = None if trace is None else trace.append
        mid = machine.id
        mid_value = mid.value
        poll = self._poll
        max_steps = self.max_steps
        crash_eligible = self._crash_weight > 0 and (
            not self._crash_classes or isinstance(machine, self._crash_classes)
        )
        while not machine._halted:
            # Crash-fault consultation point, between steps (kept in sync
            # with _worker_body).
            if (
                crash_eligible
                and self._crash_fault_active
                and self._consult_crash_fault()
            ):
                self._crash_restart(machine)
                outcome = machine._start_inline()
                if outcome is not True:
                    yield from self._inline_drive(worker, outcome)
                continue
            # Fast path of _count_step: bump the counter and fall back to
            # the real method whenever any of its checks could fire.
            steps = self._steps + 1
            if poll or steps > self._hot_deadline or steps > max_steps:
                count_step()
            else:
                self._steps = steps
            if hook_visible:
                self.on_visible_operation(machine, "dequeue")
            # True / False mirror _step's plain-handler result; anything
            # else is a coroutine activation to drive (it progressed).
            progressed = step_inline()
            if progressed is not True and progressed is not False:
                # -- the _inline_drive loop, inlined (keep in sync!) --
                gen = progressed
                value = _NO_VALUE
                error: Optional[BaseException] = None
                while True:
                    if error is not None or value is not _NO_VALUE:
                        try:
                            if error is not None:
                                exc, error = error, None
                                op = gen.throw(exc)
                            else:
                                sent, value = value, _NO_VALUE
                                op = gen.send(sent)
                        except StopIteration:
                            break
                        ops = chain((op,), gen)
                    else:
                        ops = gen
                    completed = True
                    for op in ops:
                        try:
                            if op[0] == OP_SEND:
                                event = op[2]
                                if monitors_attached:
                                    observers = self._observers_for(
                                        type(event), self._send_observers, "observes"
                                    )
                                    if observers:
                                        self._deliver_to_monitors(observers, event)
                                target = machines_get(op[1])
                                if cov is not None:
                                    cov.record_send(
                                        event,
                                        target is None or target._halted,
                                    )
                                if target is not None and not target._halted:
                                    if red is not None:
                                        red.effects.append(op[1].value)
                                    # Message-fault consultation point
                                    # (kept in sync with send()).
                                    if self._send_fault_active and (
                                        fault := self._consult_send_fault()
                                    ):
                                        self._apply_send_fault(
                                            target, event, fault
                                        )
                                    else:
                                        target._inbox.append(event)
                                        if not target._inbox_dirty:
                                            target._inbox_dirty = True
                                            seat = workers_list[op[1].value]
                                            if seat.state is _IDLE:
                                                idle_pending.append(seat)
                                        if hook_visible:
                                            self.on_visible_operation(
                                                target, "enqueue"
                                            )
                            else:  # OP_CREATE
                                value = self._spawn(op[1], op[2])
                            if self._canceled:
                                raise ExecutionCanceled()
                            steps = self._steps + 1
                            if poll or steps > self._hot_deadline or steps > max_steps:
                                count_step()
                            else:
                                self._steps = steps
                            if red is not None:
                                self._reduction_check()
                            enabled = schedulable()
                            self._sched_points += 1
                            if len(enabled) == 1:
                                choice = enabled[0]
                                observe_forced(choice)
                                if trace_append is not None:
                                    trace_append(SCHED_TAG, choice.value)
                                if red is not None:
                                    self._reduction_chose(choice, enabled)
                            else:
                                choice = pick_machine(enabled, mid)
                                self._consulted += 1
                                if trace_append is not None:
                                    trace_append(SCHED_TAG, choice.value)
                                if red is not None:
                                    self._reduction_chose(choice, enabled)
                                if choice.value != mid_value:
                                    yield choice
                                    if self._canceled:
                                        raise ExecutionCanceled()
                                    self._current = mid
                            if value is not _NO_VALUE:
                                completed = False
                                break
                        except InlineCompileError:
                            raise  # configuration error, never a bug
                        except BaseException as exc:  # noqa: BLE001
                            error = exc
                            completed = False
                            break
                    if completed:
                        break
                progressed = True
            if machine._halted:
                break
            if not progressed:
                worker.state = _IDLE
                # The failed step scan doubles as the idle memo (nothing
                # was enqueued since); mirrors _become_idle.
                machine._idle_deliverable = False
                machine._inbox_dirty = False
                self._enabled.remove(mid)
                yield self._inline_handoff(worker)
                # Resumed: either canceled, or we have a deliverable event.
                if self._canceled:
                    raise ExecutionCanceled()
                worker.state = _RUNNING
                self._current = mid
        worker.state = _DONE
        # Returning (instead of yielding) finishes this generator, making
        # its end-of-execution cleanup free; the trampoline reads the
        # final choice out of StopIteration.
        return self._inline_handoff(worker)

    def _inline_drive(self, worker: _InlineWorker, gen):
        """Interpret one machine activation (a start or step coroutine).

        The activation yields ``(OP_SEND, target, event)`` /
        ``(OP_CREATE, cls, payload)`` tuples at its scheduling
        primitives; this loop performs the effect, then makes the
        scheduling decision the primitive implies — the exact sequence
        :meth:`send` + :meth:`_schedule` produce on the threaded
        back-ends, so traces stay bit-identical.  Control transfers are
        yielded upward to the trampoline; exceptions raised by the
        effect or the decision (monitor failures, bound cutoffs,
        cancellation) are thrown *into* the activation so they surface
        at the user's call site with its try/finally semantics intact.
        The loop iterates the activation with ``for`` — a generator that
        returns (all of ours return None) exhausts a for-loop without the
        cost of materializing and catching StopIteration — and drops to
        explicit ``send``/``throw`` only when a create needs its result
        delivered or an exception must surface at the user's call site.
        """
        strategy = self.strategy
        observe_forced = strategy.observe_forced
        pick_machine = strategy.pick_machine
        count_step = self._count_step
        schedulable = self._schedulable
        machines_get = self._machines.get
        hook_visible = self._hook_visible
        monitors_attached = self._monitors_attached
        cov = self._cov
        red = self._red
        workers_list = self._worker_list
        idle_pending = self._idle_pending
        trace = self._trace
        trace_append = None if trace is None else trace.append
        mid = worker.mid
        mid_value = mid.value
        poll = self._poll
        max_steps = self.max_steps
        value = _NO_VALUE
        error: Optional[BaseException] = None
        while True:
            if error is not None or value is not _NO_VALUE:
                # Slow advance: deliver a create result or throw an
                # exception into the activation, then resume iterating
                # from the op it yields next (if any).
                try:
                    if error is not None:
                        exc, error = error, None
                        op = gen.throw(exc)
                    else:
                        sent, value = value, _NO_VALUE
                        op = gen.send(sent)
                except StopIteration:
                    return
                ops = chain((op,), gen)
            else:
                ops = gen
            completed = True
            for op in ops:
                try:
                    if op[0] == OP_SEND:
                        # The send effect, mirroring self.send(sender=
                        # None): monitor mirroring, enqueue, hook.
                        event = op[2]
                        if monitors_attached:
                            observers = self._observers_for(
                                type(event), self._send_observers, "observes"
                            )
                            if observers:
                                self._deliver_to_monitors(observers, event)
                        machine = machines_get(op[1])
                        if cov is not None:
                            cov.record_send(
                                event, machine is None or machine._halted
                            )
                        if machine is not None and not machine._halted:
                            if red is not None:
                                red.effects.append(op[1].value)
                            # Message-fault consultation point (kept in
                            # sync with send()).
                            if self._send_fault_active and (
                                fault := self._consult_send_fault()
                            ):
                                self._apply_send_fault(machine, event, fault)
                            else:
                                machine._inbox.append(event)
                                if not machine._inbox_dirty:
                                    machine._inbox_dirty = True
                                    seat = workers_list[op[1].value]
                                    if seat.state is _IDLE:
                                        idle_pending.append(seat)
                                if hook_visible:
                                    self.on_visible_operation(machine, "enqueue")
                    else:  # OP_CREATE
                        value = self._spawn(op[1], op[2])
                    # The scheduling point (mirrors _schedule).
                    if self._canceled:
                        raise ExecutionCanceled()
                    steps = self._steps + 1
                    if poll or steps > self._hot_deadline or steps > max_steps:
                        count_step()
                    else:
                        self._steps = steps
                    if red is not None:
                        self._reduction_check()
                    enabled = schedulable()
                    self._sched_points += 1
                    if len(enabled) == 1:
                        choice = enabled[0]
                        observe_forced(choice)
                        if trace_append is not None:
                            trace_append(SCHED_TAG, choice.value)
                        if red is not None:
                            self._reduction_chose(choice, enabled)
                    else:
                        choice = pick_machine(enabled, mid)
                        self._consulted += 1
                        if trace_append is not None:
                            trace_append(SCHED_TAG, choice.value)
                        if red is not None:
                            self._reduction_chose(choice, enabled)
                        if choice.value != mid_value:
                            yield choice
                            if self._canceled:
                                raise ExecutionCanceled()
                            self._current = mid
                    if value is not _NO_VALUE:
                        completed = False
                        break
                except InlineCompileError:
                    raise  # configuration error, never a bug
                except BaseException as exc:  # noqa: BLE001 - rethrown
                    error = exc
                    completed = False
                    break
            if completed:
                return

    def _inline_handoff(self, worker: _InlineWorker) -> MachineId:
        """Pick who runs next when ``worker`` gives up control without
        remaining schedulable (idle or done): the inline counterpart of
        :meth:`_handoff`.  The caller yields the returned id."""
        enabled = self._schedulable()
        if not enabled:
            if self._monitors_attached:
                self._check_monitors_at_termination()
            self._finish("ok")
            # The threaded worker parks here until cancellation unwinds
            # it; inline, the unwind is immediate.
            raise ExecutionCanceled()
        # Kept in sync with _handoff: termination above is never pruned.
        if self._red is not None:
            self._reduction_check()
        self._sched_points += 1
        if len(enabled) == 1:
            choice = enabled[0]
            self.strategy.observe_forced(choice)
        else:
            choice = self.strategy.pick_machine(enabled, worker.mid)
            self._consulted += 1
        if self._trace is not None:
            self._trace.append(SCHED_TAG, choice.value)
        if self._red is not None:
            self._reduction_chose(choice, enabled)
        return choice

    # ------------------------------------------------------------------
    # The scheduler
    # ------------------------------------------------------------------
    def _schedulable(self) -> List[MachineId]:
        """The enabled machines, maintained incrementally.

        ``_enabled`` (sorted by machine id, i.e. seat order) is kept up
        to date by the events that can change it — spawn appends, halt
        and idle-entry remove — except for one case that is deferred to
        here: an enqueue to an *idle* machine parks its seat on
        ``_idle_pending`` instead of re-scanning its inbox at send time,
        and this drain settles the deliverability verdict once per
        scheduling point.  The common scheduling point (no idle wake-ups
        pending) is thus a single list copy instead of an O(#machines)
        seat walk.  Invariant: an IDLE machine with a dirty inbox is on
        ``_idle_pending``; deliverability is monotone under enqueue, so
        an already-deliverable machine never needs rechecking.
        """
        pending = self._idle_pending
        if pending:
            enabled = self._enabled
            for seat in pending:
                # A seat that left IDLE since it was parked (it was
                # scheduled, or halted) settles its verdict elsewhere.
                if seat.state is _IDLE:
                    machine = seat.machine
                    if machine._inbox_dirty:
                        machine._inbox_dirty = False
                        if not machine._idle_deliverable:
                            machine._idle_deliverable = (
                                machine._has_deliverable()
                            )
                            if machine._idle_deliverable:
                                insort(enabled, seat.mid, key=_MID_VALUE)
            pending.clear()
        return self._enabled[:]

    def _schedulable_walk(self) -> List[MachineId]:
        """Reference implementation of :meth:`_schedulable`: the full
        O(#machines) seat walk the incremental enabled set replaced.
        Side-effect free (it neither clears dirty bits nor updates the
        memo), so equivalence tests can call it next to the incremental
        path without corrupting the invariant."""
        enabled = []
        append = enabled.append
        for worker in self._worker_list:
            state = worker.state
            if state is _RUNNING or state is _NEW:
                append(worker.mid)
            elif state is _IDLE:
                machine = worker.machine
                if machine._inbox_dirty:
                    # Deliverability is monotone under enqueue: a
                    # standing True memo needs no rescan.
                    if machine._idle_deliverable or machine._has_deliverable():
                        append(worker.mid)
                elif machine._idle_deliverable:
                    append(worker.mid)
        return enabled

    def _schedule(self, current: MachineId) -> None:
        """A scheduling point: the strategy picks the next machine among
        the enabled ones; the current thread blocks if not chosen.

        When only one machine is enabled the decision is forced: the
        strategy is not consulted (``observe_forced`` keeps replay
        aligned) and — since the running machine is always enabled here —
        no hand-off happens.  The forced decision is still recorded, so
        traces are identical whether or not the fast path fires.
        """
        if self.effective_workers == "inline":
            # Reached only when a handler the coroutine compiler could not
            # analyse (source unavailable, or resolved through a
            # static/classmethod shim) calls a scheduling primitive
            # directly: there is no thread to block here.
            machine = self._machines.get(current)
            raise InlineCompileError(
                f"{machine} hit a blocking scheduling point on the inline "
                "backend: its handler was not compiled to a coroutine "
                "(handler source unavailable, or resolved through a "
                "static/classmethod shim); use workers='pool' for this "
                "program"
            )
        if self._canceled:
            raise ExecutionCanceled()
        steps = self._steps + 1
        if self._poll or steps > self._hot_deadline or steps > self.max_steps:
            self._count_step()
        else:
            self._steps = steps
        if self._red is not None:
            self._reduction_check()
        enabled = self._schedulable()
        self._sched_points += 1
        trace = self._trace
        if len(enabled) == 1:
            choice = enabled[0]
            self.strategy.observe_forced(choice)
            if trace is not None:
                trace.append(SCHED_TAG, choice.value)
            if self._red is not None:
                self._reduction_chose(choice, enabled)
            return  # the only enabled machine is the running one
        choice = self.strategy.pick_machine(enabled, current)
        self._consulted += 1
        if trace is not None:
            trace.append(SCHED_TAG, choice.value)
        if self._red is not None:
            self._reduction_chose(choice, enabled)
        if choice == current:
            return
        current_worker = self._workers[current]
        self._workers[choice].signal.release()
        current_worker.signal.acquire()
        if self._canceled:
            current_worker.final_wake_consumed = True
            raise ExecutionCanceled()
        self._current = current

    def _handoff(self, worker: Any, voluntary: bool) -> None:
        """Give up control without remaining schedulable (idle or done)."""
        enabled = self._schedulable()
        if not enabled:
            if self._monitors_attached:
                # Terminal quiescence: a still-hot liveness monitor turns
                # the "ok" outcome into a liveness bug (_finish("ok")
                # below is then a no-op — first finish wins).
                self._check_monitors_at_termination()
            self._finish("ok")
            # Block until cancellation unwinds this thread; the only wake
            # that can arrive here is the end-of-execution permit.
            worker.signal.acquire()
            worker.final_wake_consumed = True
            self._check_canceled()
            return
        # Termination (empty enabled set) is never pruned — the monitor
        # checks above must run — so the reduction check sits after it.
        if self._red is not None:
            self._reduction_check()
        self._sched_points += 1
        if len(enabled) == 1:
            choice = enabled[0]
            self.strategy.observe_forced(choice)
        else:
            choice = self.strategy.pick_machine(enabled, worker.machine.id)
            self._consulted += 1
        if self._trace is not None:
            self._trace.append(SCHED_TAG, choice.value)
        if self._red is not None:
            self._reduction_chose(choice, enabled)
        self._workers[choice].signal.release()
        if voluntary:
            worker.signal.acquire()

    def _count_step(self) -> None:
        steps = self._steps + 1
        self._steps = steps
        if steps > self._hot_deadline:
            # A liveness monitor stayed hot beyond the temperature
            # threshold under a fair schedule: the precise detection,
            # checked before the blunt depth bound below.  During replay
            # the probe restricts firing to exactly where the recorded
            # run fired (its trailing "liveness" trace marker) — a
            # recorded run that survived this hot stretch must be
            # replayed to *its* bug, not raced to a different one.
            probe = self._replay_probe
            if probe is None or probe():
                self._report_hot_liveness()
                raise ExecutionCanceled()
        if self._poll and (steps & self._POLL_MASK) == 0:
            if self.deadline is not None and time.monotonic() >= self.deadline:
                self._finish("time-bound")
                raise ExecutionCanceled()
            if self.stop_check is not None and self.stop_check():
                self._finish("stopped")
                raise ExecutionCanceled()
            if (
                self._iter_deadline is not None
                and time.monotonic() >= self._iter_deadline
            ):
                # Per-iteration watchdog: this execution is stuck; cancel
                # it (status "watchdog") so the campaign moves on instead
                # of wedging its slot.
                self._finish("watchdog")
                raise ExecutionCanceled()
        if steps > self.max_steps:
            # The depth-bound heuristic only means "potential livelock"
            # when (a) the caller asked for it, (b) the strategy is fair —
            # under DFS/PCT a long schedule is usually the strategy
            # starving a machine, not the program spinning — and (c)
            # temperature detection is not armed.  Armed means it *could
            # have fired* before this cutoff (liveness monitors attached,
            # fair strategy, threshold below the depth bound): reaching
            # the bound with every monitor cool then proves the spin is
            # benign.  A threshold at or above max_steps can never fire,
            # so it must not suppress the heuristic.
            temperature_armed = (
                self._temp_enabled and self.max_hot_steps < self.max_steps
            )
            # A diverged replay (recorded decisions exhausted early, the
            # unfair first-enabled fallback running since) must not
            # fabricate a livelock the recorded run never reported; a
            # faithful reproduction hits this cutoff with diverged False.
            diverged_replay = getattr(self.strategy, "diverged", False)
            if (
                self.livelock_as_bug
                and self.strategy.is_fair()
                and not temperature_armed
                and not diverged_replay
            ):
                machine = self._machines.get(self._current)
                message = (
                    f"depth bound of {self.max_steps} scheduling steps "
                    f"exceeded at step {steps} (last scheduled machine: "
                    f"{machine}): potential livelock"
                )
                self._report_bug(
                    "liveness",
                    message,
                    machine,
                    LivenessError(message, machine=machine, step=steps),
                    finish_status="bug",
                )
            else:
                self._finish("depth-bound")
            raise ExecutionCanceled()

    # ------------------------------------------------------------------
    # Schedule-space reduction (repro.testing.reduction)
    # ------------------------------------------------------------------
    def state_fingerprint(self) -> bytes:
        """A stable 16-byte digest of the execution's visible state.

        Covers, per machine in creation order: identity, current state,
        halted flag, the raised-event slot, the event being handled, the
        inbox contents, the user-defined fields (``__dict__``), and the
        log of nondeterministic outcomes the machine has consumed (two
        executions in the same visible state but holding different
        ``nondet()`` results have different futures — the log is what
        makes the fingerprint sound for suspended mid-handler
        continuations).  Monitors, the step budget already spent and the
        fault count round it out.  Built exclusively from
        :func:`repro.testing.reduction.stable_update`, so the digest is
        independent of ``PYTHONHASHSEED``, worker back-end and process —
        equal digests across inline/pool/spawn are part of the parity
        contract and are asserted in the test-suite.
        """
        h = blake2b(digest_size=16)
        update = h.update
        log = self._nondet_log
        for machine in self._machines.values():
            update(b"\x00M")
            update(str(machine.id.value).encode())
            update(type(machine).__name__.encode())
            state = machine._current_state
            update(state.name.encode() if state is not None else b"-")
            update(b"\x01" if machine._halted else b"\x02")
            stable_update(update, machine._raised)
            stable_update(update, machine._current_event)
            for event in machine._inbox:
                stable_update(update, event)
            for key in sorted(machine.__dict__):
                update(key.encode())
                stable_update(update, machine.__dict__[key])
            if log is not None:
                stable_update(update, log.get(machine.id.value))
        for instance in self._monitors:
            update(b"\x00O")
            stable_update(update, instance.current_state)
            update(b"\x01" if instance.is_hot else b"\x02")
            for key in sorted(instance.__dict__):
                update(key.encode())
                stable_update(update, instance.__dict__[key])
        # The step budget spent so far: two merged states with different
        # step counts have different remaining budgets under max_steps,
        # so treating them as equal would be unsound.  Ditto faults.
        update(str(self._steps).encode())
        update(str(self._faults_injected).encode())
        return h.digest()

    def _reduction_check(self) -> None:
        """State-cache consultation, run at every non-terminal scheduling
        point before the strategy is consulted.  Dark until the current
        trace diverges from the previous execution's (a DFS iteration
        re-executes the previous schedule's prefix decision-for-decision,
        and the replayed prefix must not prune itself); from the first
        divergent point on, a fingerprint already in the cache proves the
        subtree ahead was fully explored, so the execution is cut with an
        auditable trace record."""
        red = self._red
        trace = self._trace
        if trace is None or not red.cache_on:
            return
        if not red.diverged:
            n = len(trace)
            prev = red.prev_trace
            if prev is not None and trace.range_equal(prev, red.checked, n):
                red.checked = n
                return
            red.diverged = True
        reason = red.check_state(self.state_fingerprint())
        if reason:
            trace.append(REDUCTION_TAG, reason)
            self._finish("pruned")
            raise ExecutionCanceled()

    def _reduction_chose(self, choice: MachineId, enabled: List[MachineId]) -> None:
        """Record a scheduling decision with the reduction engine (DPOR
        race analysis needs every chosen/enabled pair), then apply any
        learned prefix clause: a choice known to lead into an explored
        state prunes immediately instead of running to the cache hit."""
        red = self._red
        red.chose(choice.value, tuple(m.value for m in enabled))
        blocked = red.cur_blocked
        if blocked is not None and choice.value in blocked:
            red.cur_blocked = None
            red.clause_prunes += 1
            trace = self._trace
            if trace is not None:
                trace.append(REDUCTION_TAG, REASON_CLAUSE)
            self._finish("pruned")
            raise ExecutionCanceled()

    # ------------------------------------------------------------------
    # Termination plumbing
    # ------------------------------------------------------------------
    def _check_canceled(self) -> None:
        if self._canceled:
            raise ExecutionCanceled()

    def _report_bug(
        self,
        kind: str,
        message: str,
        machine: Optional[Machine],
        exc: BaseException,
        finish_status: str = "bug",
    ) -> None:
        if self._bug is None:
            self._bug = BugReport(
                kind=kind,
                message=message,
                machine=machine,
                trace=self._trace,
                exception=exc,
                step=self._steps,
            )
        self._finish(finish_status)

    def _finish(self, status: str) -> None:
        if not self._finished:
            self._finished = True
            self._status = status
            if self._done is not None:
                self._done.release()

    def _cancel_all(self) -> None:
        self._canceled = True
        for worker in self._workers.values():
            # Wake everyone; awakened workers observe _canceled and unwind.
            try:
                worker.signal.release()
            except RuntimeError:
                # Raw-lock signal already holds a pending wake-up (e.g. a
                # scheduler release the worker has not consumed yet).
                pass
