"""The declarative campaign facade: :class:`TestConfig` + :class:`Campaign`.

P# exposes one coherent tester surface — a configuration object plus a
command-line tester — over its runtime, strategies and monitors
(Section 7).  This module is that surface for the reproduction: a single
frozen, picklable :class:`TestConfig` captures the *complete* campaign
specification (program target, strategy spec(s), iteration/time/step
budgets, worker back-end, specification monitors, liveness threshold,
trace recording, seeds), and :class:`Campaign` executes it:

* ``Campaign(config).run()`` — a single-strategy campaign
  (:func:`repro.testing.engine.drive` under the hood);
* ``Campaign(config).portfolio()`` — the sharded multi-process campaign
  (:func:`repro.testing.portfolio.run_portfolio`);
* ``Campaign(config).replay(trace)`` — deterministic reproduction from a
  live :class:`~repro.testing.trace.ScheduleTrace` or a trace file.

The historical entry points (``TestingEngine``, ``drive``,
``PortfolioEngine``) remain as thin shims so existing code keeps
working, but new configuration knobs land here once instead of being
re-threaded through every layer.  The ``python -m repro`` CLI
(:mod:`repro.__main__`) is built entirely on this module.

``workers="auto"`` is the default back-end: campaigns run on the
single-thread inline continuation runtime whenever the program compiles
for it and transparently fall back to pooled threads when it does not
(``InlineCompileError``), with the resolved choice recorded as
``TestReport.effective_backend`` — every facade user inherits the
inline speedup without opting in.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Type, Union

from ..core.machine import Machine
from ..errors import PSharpError
from .engine import TestReport, drive, replay
from .faults import FaultConfig
from .reduction import DEFAULT_STATE_CACHE_SIZE, normalize_reduction
from .monitors import Monitor
from .portfolio import (
    _SEEDED,
    StrategySpec,
    default_portfolio,
    make_strategy,
    run_portfolio,
)
from .runtime import ExecutionResult
from .strategies import SchedulingStrategy
from .telemetry import EventLog
from .trace import ScheduleTrace

#: worker back-ends a config may name; "auto" resolves per program.
WORKER_MODES = ("auto", "inline", "pool", "spawn")

StrategyLike = Union[StrategySpec, str, Tuple[str, dict], None]
TargetLike = Union[str, Type[Machine]]


def _normalize_strategy(value: StrategyLike) -> StrategySpec:
    """Coerce the accepted strategy spellings into a :class:`StrategySpec`.

    Deliberately does NOT fold the campaign seed in: the config stores
    the user's spelling so "was a seed explicitly given?" survives
    ``with_overrides`` re-validation — folding happens at build time
    (:func:`_fold_seed`)."""
    if value is None:
        return StrategySpec("random")
    if isinstance(value, StrategySpec):
        return value
    if isinstance(value, str):
        return StrategySpec.parse(value)
    if isinstance(value, tuple) and len(value) == 2:
        return StrategySpec(value[0], dict(value[1]))
    raise PSharpError(
        "strategy must be a StrategySpec, a name like 'pct,depth=10', "
        f"or a (name, params) tuple, got {value!r}"
    )


def _fold_seed(spec: StrategySpec, seed: Optional[int]) -> StrategySpec:
    """The campaign ``seed`` applied to one spec: seedable strategies
    without an explicit seed of their own inherit it."""
    if seed is not None and spec.name in _SEEDED and "seed" not in spec.params:
        return StrategySpec(spec.name, {**spec.params, "seed": seed})
    return spec


# ----------------------------------------------------------------------
# Campaign JSON: the versioned on-disk / on-wire schema (docs/protocol.md
# §"config" and docs/cli.md "Campaign files").  A campaign is one
# shippable artifact: ``config.save("campaign.json")`` then
# ``python -m repro test --config campaign.json`` (or ``serve``, which
# streams the same object to every fleet worker in its welcome message).

#: Bumped whenever the campaign JSON schema changes incompatibly; a
#: reader only accepts files carrying exactly the version it speaks.
CONFIG_SCHEMA_VERSION = 1

#: Every field a version-1 campaign file may carry besides ``version``.
#: ``runtime_factory`` is deliberately absent: factories are live code,
#: not data, and a config carrying one refuses to serialize.
_JSON_FIELDS = (
    "program",
    "payload",
    "strategy",
    "specs",
    "seed",
    "max_iterations",
    "time_limit",
    "max_steps",
    "stop_on_first_bug",
    "livelock_as_bug",
    "record_traces",
    "workers",
    "monitors",
    "max_hot_steps",
    "portfolio_workers",
    "start_method",
    "faults",
    "iteration_timeout",
    "coverage",
    "events_path",
    "reduction",
    "state_cache_size",
)

_FAULT_JSON_FIELDS = (
    "drop",
    "duplicate",
    "delay",
    "crash",
    "persistent_state",
    "max_faults",
    "crash_classes",
)


def _class_path(cls: type, what: str) -> str:
    """``cls`` as the importable ``"module:qualname"`` path campaign JSON
    stores classes by — refused loudly when the name would not resolve
    from another process (``__main__`` classes, closures)."""
    path = f"{cls.__module__}:{cls.__qualname__}"
    if cls.__module__ == "__main__" or "<locals>" in cls.__qualname__:
        raise PSharpError(
            f"{what} {path!r} cannot be serialized to campaign JSON: the "
            "name is not importable from another process (define it in a "
            "module, not __main__ or a function body)"
        )
    return path


def _import_class(path: Any, what: str) -> type:
    """Resolve a campaign-JSON ``"module:Class"`` reference, loudly."""
    module_name, sep, qualname = str(path).partition(":")
    if not sep or not module_name or not qualname:
        raise PSharpError(
            f"{what} {path!r} in campaign JSON must be an importable "
            "'module:Class' path"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise PSharpError(f"cannot import {what} {path!r}: {exc}") from exc
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise PSharpError(
                f"cannot import {what} {path!r}: module {module_name!r} "
                f"has no attribute {qualname!r}"
            )
    if not isinstance(obj, type):
        raise PSharpError(f"{what} {path!r} resolved to {obj!r}, not a class")
    return obj


def _json_value(name: str, value: Any) -> Any:
    """``value`` if it survives JSON encoding; a loud error otherwise —
    campaign files carry plain data, never pickles."""
    try:
        json.dumps(value)
    except (TypeError, ValueError) as exc:
        raise PSharpError(
            f"TestConfig.{name} is not JSON-serializable ({exc}); campaign "
            "JSON carries plain data only"
        ) from exc
    return value


def _spec_to_obj(spec: StrategySpec) -> Dict[str, Any]:
    return {
        "name": spec.name,
        "params": _json_value(f"strategy {spec.label()!r} params", dict(spec.params)),
    }


def _spec_from_obj(value: Any, where: str) -> StrategySpec:
    """A strategy entry from campaign JSON: either the CLI spelling
    (``"pct,depth=10"``) or the canonical ``{"name", "params"}`` object."""
    if isinstance(value, str):
        return StrategySpec.parse(value)
    if isinstance(value, dict):
        unknown = sorted(set(value) - {"name", "params"})
        if unknown:
            raise PSharpError(
                f"unknown field(s) in campaign JSON {where}: "
                + ", ".join(repr(f) for f in unknown)
                + "; a strategy object carries only 'name' and 'params'"
            )
        if "name" not in value or not isinstance(value["name"], str):
            raise PSharpError(
                f"campaign JSON {where} must carry a string 'name'"
            )
        params = value.get("params") or {}
        if not isinstance(params, dict):
            raise PSharpError(
                f"campaign JSON {where} 'params' must be an object, "
                f"got {params!r}"
            )
        return StrategySpec(value["name"], dict(params))
    raise PSharpError(
        f"campaign JSON {where} must be a 'name,key=value' string or a "
        f"{{'name', 'params'}} object, got {value!r}"
    )


@dataclass(frozen=True)
class TestConfig:
    """One frozen, picklable description of a whole testing campaign.

    (``__test__`` keeps pytest from collecting this as a test class.)

    Everything the runtime/strategy/monitor stack can be told rides in
    this one object, validated at construction; derive variations with
    :meth:`with_overrides` (frozen configs never mutate, so sharing one
    across threads/processes is safe — picklability is what lets
    portfolio workers receive their campaign spec by value).

    Parameters
    ----------
    program:
        What to test: a :class:`Machine` subclass, a benchmark-registry
        name or table alias (``"Raft"``, ``"2PhaseCommit"`` — the buggy
        variant, with its monitors and payload, when one exists), or a
        ``"module:Class"`` import path.
    payload:
        Payload for the main machine; ``None`` defers to the registry
        variant's payload when the target is a benchmark name.
    strategy:
        The single-strategy campaign's scheduler: a
        :class:`~repro.testing.portfolio.StrategySpec`, a CLI-style
        string (``"pct,depth=10"``), or a ``(name, params)`` tuple.
        Defaults to the random scheduler.
    specs:
        Portfolio mix for :meth:`Campaign.portfolio`; ``None`` means the
        default diverse mix sized by ``portfolio_workers``.
    seed:
        Campaign seed, folded into ``strategy``/``specs`` entries that
        are seedable and carry no explicit seed of their own.
    workers:
        Worker back-end: ``"auto"`` (default — inline continuation
        runtime with transparent pooled fallback), ``"inline"``,
        ``"pool"`` or ``"spawn"``.
    monitors:
        Specification monitor classes; empty defers to the registry
        variant's monitors when the target is a benchmark name.
    max_hot_steps / livelock_as_bug:
        Liveness temperature threshold and the legacy depth-bound
        heuristic toggle (see :class:`~repro.testing.runtime
        .BugFindingRuntime`).
    runtime_factory:
        Advanced hook for substitute runtimes (e.g. the CHESS baseline);
        note a non-module-level factory makes the config unpicklable.
    faults:
        A :class:`~repro.testing.faults.FaultConfig` arming deterministic
        fault injection.  ``None`` defers to the registry variant's fault
        config when the target is a benchmark name (fault-enabled
        variants like ``RaftLossy`` carry their own); pass an all-zero
        ``FaultConfig()`` to explicitly disable faults for such targets.
    iteration_timeout:
        Per-iteration wall-clock watchdog in seconds: a stuck execution
        is canceled with status ``"watchdog"`` (counted in
        ``TestReport.watchdog_hits``) and the campaign continues.
    coverage:
        Collect activity coverage (:mod:`repro.testing.coverage`): the
        campaign report carries a mergeable
        :class:`~repro.testing.coverage.CoverageMap` of states entered,
        transitions taken and events sent/dequeued/dropped, with
        declared-vs-visited deltas renderable by ``python -m repro
        report``.  Off by default (collection hooks stay dark).
    events_path:
        Path of a JSONL file to stream structured campaign events to
        (:class:`~repro.testing.telemetry.EventLog`): campaign/shard
        spans, progress, bug/watchdog/checkpoint events, worker
        heartbeats and respawns.  Appended to, multi-process safe.
    reduction:
        Schedule-space reduction mode (:mod:`repro.testing.reduction`):
        ``"none"`` (default), ``"dpor"`` (dynamic partial-order
        reduction on the DFS-family strategies), ``"dpor+state-cache"``
        (adds fingerprint-based state caching for every strategy), or
        ``"dpor+state-cache+clauses"`` (additionally learns prefix
        clauses from cache hits).  Reduction stats surface as
        ``TestReport.distinct_states`` / ``schedules_pruned``.
    state_cache_size:
        Bound on the state cache (entries; least-recently-seen states
        are evicted).  Only meaningful when ``reduction`` includes the
        state cache.
    """

    __test__ = False

    program: TargetLike
    payload: Any = None
    strategy: StrategyLike = None
    specs: Optional[Tuple[StrategySpec, ...]] = None
    seed: Optional[int] = None
    max_iterations: int = 10_000
    time_limit: Optional[float] = 300.0
    max_steps: int = 20_000
    stop_on_first_bug: bool = True
    livelock_as_bug: bool = False
    record_traces: bool = True
    workers: str = "auto"
    monitors: Tuple[Type[Monitor], ...] = ()
    max_hot_steps: int = 1000
    portfolio_workers: int = 4
    start_method: Optional[str] = None
    runtime_factory: Optional[Callable[..., Any]] = None
    faults: Optional[FaultConfig] = None
    iteration_timeout: Optional[float] = None
    coverage: bool = False
    events_path: Optional[str] = None
    reduction: str = "none"
    state_cache_size: int = DEFAULT_STATE_CACHE_SIZE

    def __post_init__(self) -> None:
        if not (
            isinstance(self.program, str)
            or (isinstance(self.program, type) and issubclass(self.program, Machine))
        ):
            raise PSharpError(
                "program must be a Machine subclass, a benchmark name, or "
                f"'module:Class', got {self.program!r}"
            )
        object.__setattr__(self, "strategy", _normalize_strategy(self.strategy))
        if self.specs is not None:
            normalized = tuple(_normalize_strategy(spec) for spec in self.specs)
            if not normalized:
                raise PSharpError("specs must name at least one strategy")
            object.__setattr__(self, "specs", normalized)
        object.__setattr__(self, "monitors", tuple(self.monitors))
        if self.workers not in WORKER_MODES:
            raise PSharpError(
                f"workers must be one of {', '.join(WORKER_MODES)}, "
                f"got {self.workers!r}"
            )
        if self.max_iterations < 1:
            raise PSharpError("max_iterations must be >= 1")
        if self.max_steps < 1:
            raise PSharpError("max_steps must be >= 1")
        if self.time_limit is not None and self.time_limit <= 0:
            raise PSharpError("time_limit must be positive (or None)")
        if self.max_hot_steps < 1:
            raise PSharpError("max_hot_steps must be >= 1")
        if self.portfolio_workers < 1:
            raise PSharpError("portfolio_workers must be >= 1")
        if self.faults is not None and not isinstance(self.faults, FaultConfig):
            raise PSharpError(
                f"faults must be a FaultConfig (or None), got {self.faults!r}"
            )
        if self.iteration_timeout is not None and self.iteration_timeout <= 0:
            raise PSharpError("iteration_timeout must be positive (or None)")
        object.__setattr__(self, "coverage", bool(self.coverage))
        object.__setattr__(self, "reduction", normalize_reduction(self.reduction))
        if not isinstance(self.state_cache_size, int) or self.state_cache_size < 1:
            raise PSharpError(
                f"state_cache_size must be a positive integer, got "
                f"{self.state_cache_size!r}"
            )
        if self.events_path is not None:
            import os

            object.__setattr__(self, "events_path", os.fspath(self.events_path))

    # ------------------------------------------------------------------
    def with_overrides(self, **overrides: Any) -> "TestConfig":
        """A new validated config with ``overrides`` applied — the one
        way to vary a frozen config (`dataclasses.replace` semantics, so
        ``__post_init__`` re-validates and re-normalizes)."""
        return dataclasses.replace(self, **overrides)

    def resolve_program(self) -> Tuple[Type[Machine], Any, Tuple[type, ...]]:
        """Resolve ``program`` into ``(main_cls, payload, monitors)``.

        Registry targets contribute their variant's payload and monitors
        wherever the config does not override them; class and
        ``module:Class`` targets use the config's values as-is."""
        from ..bench.registry import resolve_target  # deferred: layer above

        variant = resolve_target(self.program)
        payload = self.payload if self.payload is not None else variant.payload
        monitors = self.monitors if self.monitors else tuple(variant.monitors)
        return variant.main, payload, monitors

    def resolved_faults(self) -> Optional[FaultConfig]:
        """The fault config this campaign actually runs with: the
        config's own ``faults`` when set (an all-zero ``FaultConfig()``
        counts as "explicitly disabled"), else the registry variant's
        default for benchmark targets, else ``None``."""
        if self.faults is not None:
            return self.faults
        from ..bench.registry import resolve_target  # deferred: layer above

        variant = resolve_target(self.program)
        return getattr(variant, "faults", None)

    def strategy_spec(self) -> StrategySpec:
        """The single-strategy campaign's spec with the campaign ``seed``
        folded in (seedable strategies without an explicit seed)."""
        return _fold_seed(self.strategy, self.seed)

    def portfolio_specs(self) -> Tuple[StrategySpec, ...]:
        """The portfolio mix this config describes — explicit ``specs``
        (campaign ``seed`` folded into seedable entries without their
        own), or the default diverse mix sized by ``portfolio_workers``."""
        if self.specs is not None:
            return tuple(_fold_seed(spec, self.seed) for spec in self.specs)
        return tuple(default_portfolio(self.portfolio_workers, self.seed))

    def build_strategy(self) -> SchedulingStrategy:
        """Construct the single-strategy campaign's scheduler."""
        return make_strategy(self.strategy_spec())

    # -- campaign JSON (versioned schema, see CONFIG_SCHEMA_VERSION) ----
    def to_json_obj(self) -> Dict[str, Any]:
        """This config as the version-``CONFIG_SCHEMA_VERSION`` campaign
        JSON object — plain data only (classes become ``"module:Class"``
        paths; a ``runtime_factory`` refuses loudly).

        Note JSON has no tuples: a tuple payload comes back as a list."""
        if self.runtime_factory is not None:
            raise PSharpError(
                "a TestConfig with a runtime_factory cannot be serialized "
                "to campaign JSON: factories are live code, not data"
            )
        program = (
            self.program
            if isinstance(self.program, str)
            else _class_path(self.program, "program")
        )
        faults = None
        if self.faults is not None:
            faults = {
                "drop": self.faults.drop,
                "duplicate": self.faults.duplicate,
                "delay": self.faults.delay,
                "crash": self.faults.crash,
                "persistent_state": self.faults.persistent_state,
                "max_faults": self.faults.max_faults,
                "crash_classes": [
                    _class_path(cls, "crash_classes entry")
                    for cls in self.faults.crash_classes
                ],
            }
        return {
            "version": CONFIG_SCHEMA_VERSION,
            "program": program,
            "payload": _json_value("payload", self.payload),
            "strategy": _spec_to_obj(self.strategy),
            "specs": (
                [_spec_to_obj(spec) for spec in self.specs]
                if self.specs is not None
                else None
            ),
            "seed": self.seed,
            "max_iterations": self.max_iterations,
            "time_limit": self.time_limit,
            "max_steps": self.max_steps,
            "stop_on_first_bug": self.stop_on_first_bug,
            "livelock_as_bug": self.livelock_as_bug,
            "record_traces": self.record_traces,
            "workers": self.workers,
            "monitors": [_class_path(m, "monitor") for m in self.monitors],
            "max_hot_steps": self.max_hot_steps,
            "portfolio_workers": self.portfolio_workers,
            "start_method": self.start_method,
            "faults": faults,
            "iteration_timeout": self.iteration_timeout,
            "coverage": self.coverage,
            "events_path": self.events_path,
            "reduction": self.reduction,
            "state_cache_size": self.state_cache_size,
        }

    def to_json(self) -> str:
        """:meth:`to_json_obj` rendered as an indented JSON document."""
        return json.dumps(self.to_json_obj(), indent=2, sort_keys=True)

    def save(self, path: Union[str, "os.PathLike"]) -> None:
        """Write the campaign JSON document to ``path``."""
        with open(os.fspath(path), "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def from_json_obj(cls, obj: Any) -> "TestConfig":
        """A validated config from a campaign JSON object.

        Loud on anything off-schema: a missing or foreign ``version``,
        unknown fields (typos never silently become defaults), malformed
        strategy/fault entries, unimportable class paths."""
        if not isinstance(obj, dict):
            raise PSharpError(
                f"campaign JSON must be an object, got {type(obj).__name__}"
            )
        version = obj.get("version")
        if version is None:
            raise PSharpError(
                "campaign JSON carries no 'version' field; this build "
                f"reads (and writes) version {CONFIG_SCHEMA_VERSION}"
            )
        if version != CONFIG_SCHEMA_VERSION:
            raise PSharpError(
                f"campaign JSON is schema version {version!r}; this build "
                f"reads version {CONFIG_SCHEMA_VERSION}"
            )
        unknown = sorted(set(obj) - {"version", *_JSON_FIELDS})
        if unknown:
            raise PSharpError(
                "unknown field(s) in campaign JSON: "
                + ", ".join(repr(f) for f in unknown)
                + "; known fields: version, "
                + ", ".join(_JSON_FIELDS)
            )
        if "program" not in obj:
            raise PSharpError("campaign JSON must name a 'program'")
        kwargs: Dict[str, Any] = {
            key: obj[key] for key in _JSON_FIELDS if key in obj
        }
        if kwargs.get("strategy") is not None:
            kwargs["strategy"] = _spec_from_obj(kwargs["strategy"], "'strategy'")
        if kwargs.get("specs") is not None:
            if not isinstance(kwargs["specs"], list):
                raise PSharpError(
                    "campaign JSON 'specs' must be a list (or null), got "
                    f"{kwargs['specs']!r}"
                )
            kwargs["specs"] = tuple(
                _spec_from_obj(entry, f"'specs[{index}]'")
                for index, entry in enumerate(kwargs["specs"])
            )
        if kwargs.get("monitors"):
            if not isinstance(kwargs["monitors"], list):
                raise PSharpError(
                    "campaign JSON 'monitors' must be a list of "
                    f"'module:Class' paths, got {kwargs['monitors']!r}"
                )
            kwargs["monitors"] = tuple(
                _import_class(path, "monitor") for path in kwargs["monitors"]
            )
        if kwargs.get("faults") is not None:
            fobj = kwargs["faults"]
            if not isinstance(fobj, dict):
                raise PSharpError(
                    f"campaign JSON 'faults' must be an object, got {fobj!r}"
                )
            unknown = sorted(set(fobj) - set(_FAULT_JSON_FIELDS))
            if unknown:
                raise PSharpError(
                    "unknown field(s) in campaign JSON 'faults': "
                    + ", ".join(repr(f) for f in unknown)
                    + "; known fields: " + ", ".join(_FAULT_JSON_FIELDS)
                )
            fkwargs = dict(fobj)
            if fkwargs.get("crash_classes"):
                fkwargs["crash_classes"] = tuple(
                    _import_class(path, "crash_classes entry")
                    for path in fkwargs["crash_classes"]
                )
            try:
                kwargs["faults"] = FaultConfig(**fkwargs)
            except (TypeError, ValueError) as exc:
                raise PSharpError(
                    f"invalid 'faults' in campaign JSON: {exc}"
                ) from exc
        try:
            return cls(**kwargs)
        except TypeError as exc:
            # e.g. a string where __post_init__'s range checks expect a
            # number — surface it as the usual loud config error.
            raise PSharpError(f"invalid campaign JSON: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "TestConfig":
        """A validated config from a campaign JSON document."""
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PSharpError(f"campaign JSON does not parse: {exc}") from exc
        return cls.from_json_obj(obj)

    @classmethod
    def load(cls, path: Union[str, "os.PathLike"]) -> "TestConfig":
        """Read and validate the campaign JSON file at ``path``."""
        try:
            with open(os.fspath(path), "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise PSharpError(f"cannot read campaign file: {exc}") from exc
        try:
            return cls.from_json(text)
        except PSharpError as exc:
            raise PSharpError(f"{path}: {exc}") from exc


class Campaign:
    """Execute the campaign a :class:`TestConfig` describes.

    The facade over the three execution shapes — single-strategy
    (:meth:`run`), sharded portfolio (:meth:`portfolio`) and
    deterministic reproduction (:meth:`replay`) — all speaking the same
    config vocabulary.  The last campaign report is kept on
    :attr:`last_report`, so ``campaign.run()`` followed by
    ``campaign.replay()`` reproduces the found bug with no plumbing.

    ``strategy=`` accepts a *live* strategy instance overriding the
    config's spec — the hook the deprecated :class:`~repro.testing
    .engine.TestingEngine` shim uses, and the escape hatch for custom
    strategies that have no registered factory.
    """

    __test__ = False

    def __init__(
        self,
        config: TestConfig,
        *,
        strategy: Optional[SchedulingStrategy] = None,
    ) -> None:
        if not isinstance(config, TestConfig):
            raise PSharpError(f"Campaign needs a TestConfig, got {config!r}")
        self.config = config
        self._strategy_override = strategy
        self.last_report: Optional[TestReport] = None

    # ------------------------------------------------------------------
    def run(
        self,
        deadline: Optional[float] = None,
        stop_check: Optional[Callable[[], bool]] = None,
    ) -> TestReport:
        """Run the single-strategy campaign; returns the
        :class:`~repro.testing.engine.TestReport` (with
        ``effective_backend`` resolved from ``workers="auto"``)."""
        config = self.config
        main_cls, payload, monitors = config.resolve_program()
        strategy = self._strategy_override or config.build_strategy()
        events = (
            EventLog(config.events_path)
            if config.events_path is not None
            else None
        )
        if events is not None:
            events.emit("campaign_start", program=str(config.program))
        try:
            report = drive(
                main_cls,
                payload,
                strategy,
                max_iterations=config.max_iterations,
                time_limit=config.time_limit,
                max_steps=config.max_steps,
                stop_on_first_bug=config.stop_on_first_bug,
                livelock_as_bug=config.livelock_as_bug,
                record_traces=config.record_traces,
                runtime_factory=config.runtime_factory,
                deadline=deadline,
                stop_check=stop_check,
                workers=config.workers,
                monitors=monitors,
                max_hot_steps=config.max_hot_steps,
                faults=config.resolved_faults(),
                iteration_timeout=config.iteration_timeout,
                coverage=config.coverage,
                events=events,
                reduction=config.reduction,
                state_cache_size=config.state_cache_size,
            )
        finally:
            if events is not None:
                events.emit("campaign_end")
                events.close()
        self.last_report = report
        return report

    def portfolio(
        self,
        workers: Optional[int] = None,
        *,
        checkpoint: Union[str, "os.PathLike", None] = None,
        resume: Union[str, "os.PathLike", None] = None,
    ) -> TestReport:
        """Run the sharded multi-process portfolio campaign.

        ``workers`` overrides ``config.portfolio_workers`` for the
        default mix (explicit ``config.specs`` always win).

        ``checkpoint`` names a file the campaign periodically persists
        its progress to (completed shard reports + remaining shards);
        ``resume`` restarts a killed campaign from such a file, skipping
        shards whose reports were already checkpointed.  See
        :mod:`repro.testing.checkpoint`."""
        config = self.config
        if workers is not None:
            config = config.with_overrides(portfolio_workers=workers)
        report = run_portfolio(config, checkpoint=checkpoint, resume=resume)
        self.last_report = report
        return report

    def replay(
        self,
        trace: Union[ScheduleTrace, str, "os.PathLike", None] = None,
    ) -> Optional[ExecutionResult]:
        """Deterministically re-execute a recorded schedule under this
        campaign's configuration (same program, monitors, bounds).

        ``trace`` is a live :class:`~repro.testing.trace.ScheduleTrace`,
        a trace-file path (:meth:`~repro.testing.trace.ScheduleTrace
        .save` format), or ``None`` for the last campaign's winning
        trace — in which case ``None`` is returned when that campaign
        found no bug (or recorded no trace)."""
        if trace is None:
            report = self.last_report
            if (
                report is None
                or report.first_bug is None
                or report.first_bug.trace is None
            ):
                return None
            trace = report.first_bug.trace
        config = self.config
        main_cls, payload, monitors = config.resolve_program()
        return replay(
            main_cls,
            trace,
            payload=payload,
            max_steps=config.max_steps,
            livelock_as_bug=config.livelock_as_bug,
            workers=config.workers,
            monitors=monitors,
            max_hot_steps=config.max_hot_steps,
            faults=config.resolved_faults(),
        )
