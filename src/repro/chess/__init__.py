"""A CHESS-style systematic concurrency testing baseline (Section 7.2.2).

CHESS [19] "uses dynamic instrumentation to intercept memory accesses and
synchronizing operations" and "inserts scheduling points before several
synchronization operations (e.g. runtime locks), whereas the P# scheduler
only needs to schedule before send and create-machine operations, which
greatly reduces the schedule space".  Table 2 quantifies the consequence:
CHESS explores far fewer schedules per second, and its optional data race
detector costs another 4-7.5x.

This baseline reproduces both structural properties on top of the same
cooperative-thread engine as the P# runtime:

* scheduling points at every *visible operation* — every machine field
  write (intercepted via ``Machine.__setattr__``), every queue enqueue /
  dequeue (the runtime's blocking-queue lock operations), in addition to
  sends and machine creations;
* an optional happens-before race detector (``race_detection=True``, the
  RD-on configuration): vector clocks per machine with edges at
  send/receive/create, checked on every intercepted field access.

P# programs are race-free by construction of the machine-local state
model, so — exactly as the paper reports — the detector finds no races
while still charging its bookkeeping to every access.
"""

from .runtime import ChessRuntime, chess_engine

__all__ = ["ChessRuntime", "chess_engine"]
