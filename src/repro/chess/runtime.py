"""The CHESS-style runtime: visible-operation scheduling + optional RD."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Type

from ..core.events import Event, MachineId
from ..core.machine import Machine, install_field_access_hook
from ..core.runtime import RuntimeBase
from ..testing.engine import TestingEngine
from ..testing.runtime import BugFindingRuntime, _WorkerState
from ..testing.strategies import SchedulingStrategy


class _VectorClock:
    __slots__ = ("clocks",)

    def __init__(self, clocks: Optional[Dict[int, int]] = None) -> None:
        self.clocks: Dict[int, int] = dict(clocks or {})

    def tick(self, mid: int) -> None:
        self.clocks[mid] = self.clocks.get(mid, 0) + 1

    def join(self, other: "_VectorClock") -> None:
        for mid, clock in other.clocks.items():
            if clock > self.clocks.get(mid, 0):
                self.clocks[mid] = clock

    def copy(self) -> "_VectorClock":
        return _VectorClock(self.clocks)

    def happens_before(self, other: "_VectorClock") -> bool:
        return all(c <= other.clocks.get(m, 0) for m, c in self.clocks.items())


class ChessRuntime(BugFindingRuntime):
    """Bug-finding runtime that schedules at memory-access granularity.

    ``race_detection`` toggles the RD-on / RD-off configurations compared
    in Table 2.
    """

    def __init__(
        self,
        strategy: SchedulingStrategy,
        race_detection: bool = True,
        **kwargs: Any,
    ) -> None:
        if kwargs.get("workers") == "inline":
            # CHESS schedules inside field-access hooks, i.e. from plain
            # attribute writes deep inside user frames — positions a
            # generator coroutine cannot suspend at.
            raise ValueError(
                "ChessRuntime does not support workers='inline'; its "
                "visible-operation scheduling points cannot suspend a "
                "coroutine — use 'pool' or 'spawn'"
            )
        if kwargs.get("workers") == "auto":
            # The automatic backend resolution can never pick inline here
            # (see above), so "auto" collapses to the pooled threads.
            kwargs["workers"] = "pool"
        if kwargs.get("faults") is not None:
            # CHESS models shared-memory programs: its visible operations
            # are field accesses, not a network that can drop or a node
            # that can crash-restart.  Refuse rather than silently ignore.
            raise ValueError(
                "ChessRuntime does not support fault injection; faults "
                "model message loss and machine crashes, which have no "
                "counterpart in CHESS's shared-memory scheduling"
            )
        super().__init__(strategy, **kwargs)
        self.race_detection = race_detection
        self.races: List[str] = []
        self._clocks: Dict[int, _VectorClock] = {}
        self._event_clocks: Dict[int, _VectorClock] = {}
        # (machine id value, field) -> last write / reads since last write
        self._writes: Dict[Tuple[int, str], Tuple[int, _VectorClock]] = {}
        self._reads: Dict[Tuple[int, str], List[Tuple[int, _VectorClock]]] = {}

    def reset(self) -> None:
        super().reset()
        # Per-execution race-detection state (the runtime is reused across
        # iterations by the engine; clocks must not leak between them).
        self.races = []
        self._clocks = {}
        self._event_clocks = {}
        self._writes = {}
        self._reads = {}

    # ------------------------------------------------------------------
    def execute(self, main_cls, payload=None):
        install_field_access_hook(self._on_field_access)
        try:
            return super().execute(main_cls, payload)
        finally:
            install_field_access_hook(None)

    # ------------------------------------------------------------------
    # Visible operations: every queue op is a scheduling point
    # ------------------------------------------------------------------
    def on_visible_operation(self, machine: Machine, kind: str) -> None:
        self._schedule_if_running()

    def on_event_dequeued(self, machine: Machine, event: Event) -> None:
        super().on_event_dequeued(machine, event)  # monitor dequeue mirroring
        if self.race_detection:
            snapshot = self._event_clocks.pop(id(event), None)
            clock = self._clock(machine.id.value)
            if snapshot is not None:
                clock.join(snapshot)
            clock.tick(machine.id.value)
        self._schedule_if_running()

    def send(self, target, event, sender=None):
        if self.race_detection and sender is not None:
            clock = self._clock(sender.id.value)
            clock.tick(sender.id.value)
            self._event_clocks[id(event)] = clock.copy()
        super().send(target, event, sender=sender)

    def create_machine(self, machine_cls, payload=None, creator=None):
        mid = super().create_machine(machine_cls, payload, creator=creator)
        if self.race_detection and creator is not None:
            clock = self._clock(creator.id.value)
            clock.tick(creator.id.value)
            self._clock(mid.value).join(clock)
        return mid

    # ------------------------------------------------------------------
    # Field accesses: scheduling point + optional race check
    # ------------------------------------------------------------------
    def _on_field_access(self, machine: Machine, name: str, is_write: bool) -> None:
        if self.race_detection:
            self._check_access(machine.id.value, name, is_write)
        self._schedule_if_running()

    def _check_access(self, mid: int, field: str, is_write: bool) -> None:
        key = (mid, field)  # machine fields: the owner id identifies the object
        clock = self._clock(mid)
        last_write = self._writes.get(key)
        if last_write is not None:
            writer, write_clock = last_write
            if writer != mid and not write_clock.happens_before(clock):
                self.races.append(f"race on field {field!r} of machine {mid}")
        if is_write:
            for reader, read_clock in self._reads.get(key, []):
                if reader != mid and not read_clock.happens_before(clock):
                    self.races.append(f"race on field {field!r} of machine {mid}")
            self._writes[key] = (mid, clock.copy())
            self._reads[key] = []
        else:
            self._reads.setdefault(key, []).append((mid, clock.copy()))

    def _clock(self, mid: int) -> _VectorClock:
        if mid not in self._clocks:
            self._clocks[mid] = _VectorClock({mid: 0})
        return self._clocks[mid]

    def _schedule_if_running(self) -> None:
        current = self._current
        if current is None or self._canceled or self._finished:
            return
        worker = self._workers.get(current)
        if worker is None or worker.state is not _WorkerState.RUNNING:
            return
        self._schedule(current)


def chess_engine(
    main_cls: Type[Machine],
    payload: Any = None,
    *,
    strategy: SchedulingStrategy,
    race_detection: bool = True,
    **kwargs: Any,
) -> TestingEngine:
    """A :class:`TestingEngine` wired to the CHESS-style runtime."""

    def factory(**runtime_kwargs: Any) -> ChessRuntime:
        return ChessRuntime(race_detection=race_detection, **runtime_kwargs)

    return TestingEngine(
        main_cls, payload, strategy=strategy, runtime_factory=factory, **kwargs
    )
