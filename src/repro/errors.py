"""Error and bug-report types shared across the runtime, testing and analysis layers.

The P# paper distinguishes three classes of runtime errors (Section 6.1):

(i)   an event can be handled in more than one way in the same state,
(ii)  an event cannot be handled in a state, and
(iii) an uncaught exception is thrown while an event handler executes.

In bug-finding mode (Section 6.2) these, together with assertion failures
and liveness (depth-bound) violations, are reported as bugs with a replayable
schedule trace attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class PSharpError(Exception):
    """Base class for all errors raised by this library."""


class MachineDeclarationError(PSharpError):
    """A machine class is malformed.

    Raised at class-definition time, e.g. when a state declares two handlers
    for the same event (paper error class (i)), when an action binding names
    a method that does not exist, or when a machine has no initial state.
    """


class UnhandledEventError(PSharpError):
    """An event reached a machine state that neither handles, defers nor
    ignores it (paper error class (ii))."""

    def __init__(self, machine: Any, state: str, event: Any) -> None:
        self.machine = machine
        self.state = state
        self.event = event
        super().__init__(
            f"machine {machine} in state {state!r} cannot handle event "
            f"{type(event).__name__}"
        )


class AssertionFailure(PSharpError):
    """A ``Machine.assert_that`` condition evaluated to false."""


class ActionError(PSharpError):
    """An uncaught exception escaped a user action (paper error class (iii))."""

    def __init__(self, machine: Any, action: str, cause: BaseException) -> None:
        self.machine = machine
        self.action = action
        self.cause = cause
        super().__init__(
            f"uncaught exception in action {action!r} of machine {machine}: "
            f"{type(cause).__name__}: {cause}"
        )


class LivenessError(PSharpError):
    """A liveness violation: either a specification monitor stayed hot
    beyond the temperature threshold (or was hot at program termination),
    or — the legacy heuristic of Section 7.2.2 — the depth bound was
    exceeded under a fair schedule.

    Carries enough structure for actionable reports: the offending
    ``monitor`` name and its hot ``state`` (temperature detection), the
    last scheduled ``machine`` (depth-bound detection), and the ``step``
    count at which the violation was declared.
    """

    def __init__(
        self,
        message: str,
        *,
        monitor: Optional[str] = None,
        state: Optional[str] = None,
        machine: Optional[Any] = None,
        step: int = -1,
    ) -> None:
        super().__init__(message)
        self.monitor = monitor
        self.state = state
        self.machine = machine
        self.step = step


class MonitorError(PSharpError):
    """A safety specification monitor's assertion failed.

    Wraps the underlying :class:`AssertionFailure` so monitor-detected
    violations are reported distinctly (bug kind ``"monitor"``) from
    in-program assertions, with the monitor and its current state named.
    """

    def __init__(self, monitor: Any, message: str) -> None:
        self.monitor = monitor
        self.state = getattr(monitor, "current_state", None)
        super().__init__(
            f"specification monitor {type(monitor).__name__} "
            f"(state {self.state!r}) violated: {message}"
        )


class ExecutionCanceled(BaseException):
    """Internal control-flow exception used by the bug-finding runtime to
    unwind cooperative worker threads when an execution ends.

    Derives from ``BaseException`` so that user code catching ``Exception``
    cannot swallow it.
    """


@dataclass
class BugReport:
    """A bug found during testing, with enough information to replay it."""

    kind: str
    message: str
    machine: Optional[Any] = None
    trace: Optional[Any] = None
    exception: Optional[BaseException] = None
    iteration: int = -1
    step: int = -1

    def __str__(self) -> str:
        where = f" in {self.machine}" if self.machine is not None else ""
        return f"[{self.kind}]{where}: {self.message}"

    def detached(self) -> "BugReport":
        """A picklable copy, safe to send across process boundaries.

        Live references (the machine object, the raised exception) are
        replaced by their string forms; the schedule trace — the part that
        matters for replay — is plain data and survives as is.
        """
        return BugReport(
            kind=self.kind,
            message=self.message,
            machine=str(self.machine) if self.machine is not None else None,
            trace=self.trace,
            exception=None,
            iteration=self.iteration,
            step=self.step,
        )


@dataclass
class AnalysisDiagnostic:
    """A diagnostic produced by the static data race analysis."""

    kind: str  # "ownership-violation" | "info"
    machine: str
    method: str
    node: Any
    variable: str
    condition: int  # which of the three Section 5.3 conditions failed (1..3)
    message: str
    suppressed_by: Optional[str] = None  # "xsa" | "readonly" | None

    def __str__(self) -> str:
        sup = f" (suppressed by {self.suppressed_by})" if self.suppressed_by else ""
        return (
            f"{self.machine}.{self.method}: condition {self.condition} violated "
            f"for {self.variable!r} at {self.node}: {self.message}{sup}"
        )


@dataclass
class AnalysisReport:
    """Aggregate result of analysing one program."""

    program: str
    diagnostics: list = field(default_factory=list)
    xsa_enabled: bool = False
    readonly_enabled: bool = False
    seconds: float = 0.0

    @property
    def violations(self) -> list:
        return [d for d in self.diagnostics if d.suppressed_by is None]

    @property
    def verified(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        status = "verified race-free" if self.verified else (
            f"{len(self.violations)} potential race(s)"
        )
        return f"analysis of {self.program}: {status} in {self.seconds:.3f}s"
