"""Runtimes for executing P# programs.

``RuntimeBase``
    Machine registry, id allocation and error plumbing shared by the
    production runtime and the bug-finding runtime
    (:mod:`repro.testing.runtime`).

``Runtime``
    The production runtime (Section 6.1): each machine's event handler
    runs on its own thread, "concurrently with the runtime and other
    handlers", dequeuing from a thread-safe blocking queue.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Dict, List, Optional, Type

from ..errors import ActionError, PSharpError
from .events import Event, MachineId
from .machine import Machine


class RuntimeBase:
    """State and behaviour shared by all runtimes."""

    # State-entry hook flag, mirroring the ``_hook_dequeued`` pattern:
    # machines check this one boolean before calling
    # :meth:`on_state_entered`, so runtimes without activity-coverage
    # collection (this default) pay a single attribute test per state
    # change.  The bug-finding runtime overrides it *per instance* when
    # a CoverageMap is attached.
    _hook_state = False

    def __init__(self) -> None:
        self._machines: Dict[MachineId, Machine] = {}
        self._next_id = 0
        self._error: Optional[BaseException] = None
        self._log_sink: Optional[Callable[[str], None]] = None
        # Registered specification monitor instances (repro.testing
        # .monitors); empty for runtimes without monitor support.
        self._monitors: List[Any] = []
        # Precomputed so machines can skip the no-op dequeue hook call on
        # the hot path; True only for runtimes that override it (CHESS).
        self._hook_dequeued = (
            type(self).on_event_dequeued is not RuntimeBase.on_event_dequeued
        )

    # -- registry -------------------------------------------------------
    def _allocate_id(self, machine_cls: Type[Machine]) -> MachineId:
        mid = MachineId(self._next_id, machine_cls.__name__)
        self._next_id += 1
        return mid

    def _instantiate(
        self, machine_cls: Type[Machine], payload: Any
    ) -> Machine:
        mid = self._allocate_id(machine_cls)
        machine = machine_cls(self, mid)
        # The payload passed at creation is delivered to the initial
        # state's entry handler, like BaseService.Init in Figure 1.
        machine._current_event = Event(payload)
        # Kept for the tester's crash-restart faults: a rebooted machine
        # re-enters its initial state with the original creation payload.
        machine._boot_event = machine._current_event
        self._machines[mid] = machine
        return machine

    def machine(self, mid: MachineId) -> Machine:
        return self._machines[mid]

    @property
    def machines(self) -> List[Machine]:
        return list(self._machines.values())

    # -- hooks overridden by concrete runtimes ---------------------------
    def create_machine(
        self,
        machine_cls: Type[Machine],
        payload: Any = None,
        creator: Optional[Machine] = None,
    ) -> MachineId:
        raise NotImplementedError

    def send(
        self, target: MachineId, event: Event, sender: Optional[Machine] = None
    ) -> None:
        raise NotImplementedError

    def nondet(self, machine: Machine) -> bool:
        raise NotImplementedError

    def nondet_int(self, machine: Machine, bound: int) -> int:
        raise NotImplementedError

    def on_machine_halted(self, machine: Machine) -> None:
        pass

    def invoke_monitor(
        self, monitor_cls: type, event: Event, source: Optional[Machine] = None
    ) -> None:
        """Deliver ``event`` to the registered instance of ``monitor_cls``.

        The base implementation is a no-op: invoking a monitor that is not
        registered (or on a runtime without monitor support) silently does
        nothing, so instrumented programs run unchanged without their
        specifications attached."""

    def on_event_dequeued(self, machine: Machine, event: Event) -> None:
        """Hook invoked when a machine dequeues an event (used by the
        CHESS baseline to add happens-before edges and visible ops)."""

    def on_state_entered(
        self,
        machine: Machine,
        old_info: Optional[Any],
        event: Optional[Event],
    ) -> None:
        """Hook invoked after a machine (or monitor) entered a state —
        ``old_info`` is the previous :class:`StateInfo` (None on the
        initial entry) and ``event`` the trigger.  Guarded by the
        ``_hook_state`` flag; used for activity-coverage collection."""

    def log(self, message: str) -> None:
        if self._log_sink is not None:
            self._log_sink(message)


class Runtime(RuntimeBase):
    """Production runtime: one handler thread per machine.

    Nondeterministic choices are honestly random here; in bug-finding mode
    they are controlled by the scheduling strategy instead.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        super().__init__()
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._threads: List[threading.Thread] = []
        self._stopping = False
        self._rng = random.Random(seed)
        self._idle = 0
        # Memoized event-class -> observing-monitor tables (send/dequeue).
        self._send_observer_cache: Dict[type, tuple] = {}
        self._dequeue_observer_cache: Dict[type, tuple] = {}
        # This class overrides on_event_dequeued for monitor mirroring,
        # but the hook only needs to run once a dequeue-observing monitor
        # is registered — keep the no-monitor hot path unhooked while
        # preserving the base contract for further subclass overrides.
        self._hook_dequeued = (
            type(self).on_event_dequeued is not Runtime.on_event_dequeued
        )

    # ------------------------------------------------------------------
    def run(self, main_cls: Type[Machine], payload: Any = None) -> "Runtime":
        """Create and start the main machine (the paper's ``Main`` attribute
        machine); returns self for chaining with :meth:`join`."""
        self.create_machine(main_cls, payload)
        return self

    def create_machine(
        self,
        machine_cls: Type[Machine],
        payload: Any = None,
        creator: Optional[Machine] = None,
    ) -> MachineId:
        with self._lock:
            if self._stopping:
                raise PSharpError("runtime is stopping")
            machine = self._instantiate(machine_cls, payload)
        thread = threading.Thread(
            target=self._machine_loop, args=(machine,), daemon=True,
            name=f"psharp-{machine.id}",
        )
        self._threads.append(thread)
        thread.start()
        return machine.id

    def send(
        self, target: MachineId, event: Event, sender: Optional[Machine] = None
    ) -> None:
        with self._cv:
            if self._monitors:
                self._mirror_to_monitors(event)
            machine = self._machines.get(target)
            if machine is None or machine.is_halted:
                return  # events to halted machines are dropped
            machine._enqueue(event)
            self._cv.notify_all()

    # -- specification monitors (repro.testing.monitors) -----------------
    def register_monitor(self, monitor_cls: type) -> None:
        """Attach a specification monitor; its handlers run synchronously
        under the runtime lock, so observations are serialized even though
        machine handlers run on concurrent threads.  All three mirroring
        hooks work here: ``observes`` (send), ``observes_dequeue``
        (delivery) and ``EMachineHalted`` (halt)."""
        with self._cv:
            index = len(self._monitors)
            instance = monitor_cls(self, MachineId(-(index + 1), monitor_cls.__name__))
            self._monitors.append(instance)
            # Observer matching is memoized per event class; a fresh
            # registration invalidates the tables.
            self._send_observer_cache = {}
            self._dequeue_observer_cache = {}
            if instance.observes_dequeue:
                self._hook_dequeued = True
            instance._boot()

    def invoke_monitor(
        self, monitor_cls: type, event: Event, source: Optional[Machine] = None
    ) -> None:
        with self._cv:
            for instance in self._monitors:
                if type(instance) is monitor_cls:
                    instance._observe(event)
                    return

    def on_event_dequeued(self, machine: Machine, event: Event) -> None:
        with self._cv:
            for instance in self._matching_monitors(
                type(event), self._dequeue_observer_cache, "observes_dequeue"
            ):
                instance._observe(event)

    def on_machine_halted(self, machine: Machine) -> None:
        if not self._monitors:
            return
        from ..testing.monitors import EMachineHalted

        with self._cv:
            for instance in self._matching_monitors(
                EMachineHalted, self._send_observer_cache, "observes"
            ):
                instance._observe(EMachineHalted(machine.id))

    def _matching_monitors(
        self, event_cls: type, cache: Dict[type, tuple], attr: str
    ) -> tuple:
        observers = cache.get(event_cls)
        if observers is None:
            observers = tuple(
                m for m in self._monitors
                if any(issubclass(event_cls, obs) for obs in getattr(m, attr))
            )
            cache[event_cls] = observers
        return observers

    def _mirror_to_monitors(self, event: Event) -> None:
        for instance in self._matching_monitors(
            type(event), self._send_observer_cache, "observes"
        ):
            instance._observe(event)

    def nondet(self, machine: Machine) -> bool:
        return bool(self._rng.getrandbits(1))

    def nondet_int(self, machine: Machine, bound: int) -> int:
        return self._rng.randrange(bound)

    # ------------------------------------------------------------------
    def _machine_loop(self, machine: Machine) -> None:
        try:
            machine._start()
            while not self._stopping and not machine.is_halted:
                stepped = machine._step()
                if stepped:
                    continue
                with self._cv:
                    self._idle += 1
                    self._cv.notify_all()
                    try:
                        self._cv.wait_for(
                            lambda: self._stopping
                            or machine.is_halted
                            or machine._has_deliverable(),
                            timeout=0.5,
                        )
                    finally:
                        self._idle -= 1
        except PSharpError as exc:
            self._report_error(exc)
        except Exception as exc:  # noqa: BLE001 - error class (iii)
            self._report_error(
                ActionError(machine, machine.current_state or "?", exc)
            )

    def _report_error(self, exc: BaseException) -> None:
        with self._cv:
            if self._error is None:
                self._error = exc
            self._stopping = True
            self._cv.notify_all()

    # ------------------------------------------------------------------
    def wait_quiescence(self, timeout: float = 10.0) -> bool:
        """Block until no machine has a deliverable event (best effort)."""
        deadline = threading.Event()

        def quiescent() -> bool:
            return self._error is not None or all(
                m.is_halted or not m._has_deliverable()
                for m in self._machines.values()
            ) and self._idle >= sum(
                1 for m in self._machines.values() if not m.is_halted
            )

        with self._cv:
            result = self._cv.wait_for(quiescent, timeout=timeout)
        del deadline
        return bool(result)

    def stop(self) -> None:
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        for thread in self._threads:
            thread.join(timeout=2.0)

    def join(self, timeout: float = 10.0) -> None:
        """Wait for quiescence, stop, and re-raise any detected error."""
        self.wait_quiescence(timeout)
        self.stop()
        if self._error is not None:
            raise self._error
