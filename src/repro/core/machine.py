"""The ``Machine`` and ``State`` abstractions.

A P# program is composed of state machines that communicate by sending and
receiving events (Section 1).  Machines are classes inheriting from the
abstract ``Machine``; their states are *nested classes* inheriting from
``State`` — the paper notes that P# "enforces states to be nested classes
of the machine they belong to; this ensures they cannot be accessed
externally" (Section 3).

A state declares, as class attributes:

``entry``
    name of the machine method run on entry to the state (the ``OnEntry``
    of the paper); it receives the payload of the event that caused the
    transition.
``exit``
    name of the machine method run when leaving the state.
``transitions``
    mapping from event classes to target state names (the paper's
    "State Transitions" boxes).
``actions``
    mapping from event classes to machine method names (the paper's
    "Action Bindings"); the machine stays in the same state.
``deferred`` / ``ignored``
    event classes that are skipped in the queue / silently dropped.
``initial``
    marks the machine's initial state (exactly one per machine).

Actions and entry/exit handlers are arbitrary *sequential* Python methods:
they must not spawn threads or use synchronization — concurrency is only
expressed by creating machines and sending events, mirroring the paper's
restriction that "actions ... must be sequential".
"""

from __future__ import annotations

import inspect
import types
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Tuple, Type

from ..errors import (
    AssertionFailure,
    MachineDeclarationError,
    UnhandledEventError,
)
from .events import Event, Halt, MachineId


class State:
    """Base class for machine states.  See module docstring."""

    entry: Optional[str] = None
    exit: Optional[str] = None
    transitions: Dict[Type[Event], str] = {}
    actions: Dict[Type[Event], str] = {}
    deferred: Tuple[Type[Event], ...] = ()
    ignored: Tuple[Type[Event], ...] = ()
    initial: bool = False
    # Liveness temperature of the state: "hot" / "cold" / None.  Only
    # meaningful on specification monitors (repro.testing.monitors); set
    # with the ``@hot`` / ``@cold`` decorators or declared directly.
    temperature: Optional[str] = None


# Event dispositions, precomputed per (state, event class).  Ordered so
# that "deliverable" is a single comparison: codes <= DISP_HALT deliver.
DISP_ACTION = 0
DISP_TRANSITION = 1
DISP_HALT = 2
DISP_DEFER = 3
DISP_IGNORE = 4
DISP_UNHANDLED = 5


@dataclass(slots=True)
class StateInfo:
    """Preprocessed description of one state of a machine.

    The runtime "preprocesses each registered machine to build a
    machine-specific map from states to state transitions and action
    bindings" (Section 6.1); this is that map's entry.

    Beyond the declarative maps, each StateInfo carries the *compiled*
    dispatch for its machine class: entry/exit/action names resolved to
    functions at class-preprocess time, transition targets resolved to
    their ``StateInfo`` objects, and a memoized ``event class ->
    (disposition, payload)`` table, so the per-event hot path does zero
    ``getattr`` and a single dict probe.
    """

    name: str
    entry: Optional[str]
    exit: Optional[str]
    transitions: Dict[Type[Event], str]
    actions: Dict[Type[Event], str]
    deferred: frozenset
    ignored: frozenset
    initial: bool = False
    temperature: Optional[str] = None
    # Compiled by _link_states (after validation):
    owner: Optional[type] = None
    entry_fn: Optional[Callable] = None
    exit_fn: Optional[Callable] = None
    # event class -> (DISP_* code, payload); payload is the bound-to-class
    # action function for DISP_ACTION, the target StateInfo for
    # DISP_TRANSITION, None otherwise.
    dispatch: Dict[type, tuple] = field(default_factory=dict)
    # Compiled lazily by repro.core.continuations.compile_inline_machine
    # for the single-thread inline backend: ``inline_dispatch`` maps event
    # class -> (DISP_* code, payload, is_coroutine); entry/exit handlers
    # become (fn, is_coroutine) pairs.  None until the class first runs
    # inline.
    inline_dispatch: Optional[Dict[type, tuple]] = None
    entry_inline: Optional[tuple] = None
    exit_inline: Optional[tuple] = None

    def handles(self, event_cls: Type[Event]) -> bool:
        return event_cls in self.transitions or event_cls in self.actions

    def defers(self, event_cls: Type[Event]) -> bool:
        return event_cls in self.deferred

    def ignores(self, event_cls: Type[Event]) -> bool:
        return event_cls in self.ignored

    def disposition(self, event_cls: type) -> tuple:
        """Memoized disposition of ``event_cls`` in this state.

        Precedence mirrors the historical ``_deliverable_index`` checks:
        Halt always delivers, then ignored, deferred, and handlers.
        """
        disp = self.dispatch.get(event_cls)
        if disp is None:
            disp = self._compute_disposition(event_cls)
            self.dispatch[event_cls] = disp
        return disp

    def inline_disposition(self, event_cls: type) -> tuple:
        """Like :meth:`disposition` but for the inline backend's compiled
        tables: returns ``(code, payload, is_coroutine)``.  Lazily seeds
        entries for event classes outside the declared handler set (those
        are never coroutine actions — declared actions are pre-seeded by
        ``compile_inline_machine``)."""
        entry = self.inline_dispatch.get(event_cls)
        if entry is None:
            code, payload = self.disposition(event_cls)
            entry = (code, payload, False)
            self.inline_dispatch[event_cls] = entry
        return entry

    def _compute_disposition(self, event_cls: type) -> tuple:
        if issubclass(event_cls, Halt):
            return (DISP_HALT, None)
        if event_cls in self.ignored:
            return (DISP_IGNORE, None)
        if event_cls in self.deferred:
            return (DISP_DEFER, None)
        # Declared handlers are pre-seeded by _link_states; these probes
        # only matter for StateInfos inspected outside a linked machine.
        if event_cls in self.actions and self.owner is not None:
            return (
                DISP_ACTION,
                _resolve_handler(self.owner, self.actions[event_cls]),
            )
        return (DISP_UNHANDLED, None)


def _collect_states(cls: type) -> Dict[str, StateInfo]:
    """Walk the MRO collecting nested ``State`` subclasses.

    Supports inheritance between machines (the ``BaseService`` /
    ``UserService`` pattern of Figure 1): a subclass inherits all states of
    its base machine and may override individual states by redeclaring a
    nested class with the same name.
    """
    states: Dict[str, StateInfo] = {}
    for klass in reversed(cls.__mro__):
        for name, attr in vars(klass).items():
            if isinstance(attr, type) and issubclass(attr, State) and attr is not State:
                info = StateInfo(
                    name=name,
                    entry=attr.entry,
                    exit=attr.exit,
                    transitions=dict(attr.transitions),
                    actions=dict(attr.actions),
                    deferred=frozenset(attr.deferred),
                    ignored=frozenset(attr.ignored),
                    initial=bool(attr.initial),
                    temperature=attr.temperature,
                )
                states[name] = info  # later (more derived) declarations win
    return states


def _validate_machine(cls: type, states: Dict[str, StateInfo]) -> str:
    """Check the paper's well-formedness conditions; return initial state name."""
    if not states:
        raise MachineDeclarationError(f"machine {cls.__name__} declares no states")

    initials = [s.name for s in states.values() if s.initial]
    if len(initials) != 1:
        raise MachineDeclarationError(
            f"machine {cls.__name__} must have exactly one initial state, "
            f"found {initials or 'none'}"
        )

    for info in states.values():
        # Paper error class (i): "an event can be handled in more than one
        # way in the same state".
        overlap = set(info.transitions) & set(info.actions)
        if overlap:
            raise MachineDeclarationError(
                f"state {info.name} of machine {cls.__name__} handles "
                f"{sorted(e.__name__ for e in overlap)} both as a transition "
                "and as an action"
            )
        for evt, target in info.transitions.items():
            if target not in states:
                raise MachineDeclarationError(
                    f"state {info.name} of {cls.__name__} transitions to "
                    f"unknown state {target!r} on {evt.__name__}"
                )
        for evt, action in info.actions.items():
            if not callable(getattr(cls, action, None)):
                raise MachineDeclarationError(
                    f"state {info.name} of {cls.__name__} binds {evt.__name__} "
                    f"to missing action {action!r}"
                )
        for handler in (info.entry, info.exit):
            if handler is not None and not callable(getattr(cls, handler, None)):
                raise MachineDeclarationError(
                    f"state {info.name} of {cls.__name__} names missing "
                    f"method {handler!r}"
                )
    return initials[0]


def _resolve_handler(cls: type, name: str) -> Callable:
    """Resolve handler ``name`` to a callable invoked as ``fn(machine)``.

    Plain methods (the overwhelmingly common case) resolve to the raw
    function, so the hot path calls it directly with the machine as
    ``self``.  Anything else — staticmethods, classmethods, stored
    callables — keeps the historical ``getattr(self, name)()`` semantics
    through a late-binding shim.
    """
    raw = inspect.getattr_static(cls, name, None)
    if isinstance(raw, types.FunctionType):
        return raw

    def shim(machine: "Machine") -> Any:
        return getattr(machine, name)()

    return shim


def _link_states(cls: type, states: Dict[str, StateInfo]) -> None:
    """Compile the per-state dispatch for ``cls``.

    Resolves handler *names* to callables once per class (instead of a
    ``getattr`` per event), links transition targets to their
    ``StateInfo`` objects, and seeds the memoized disposition table.
    Precedence in the seeded table matches the historical per-event
    checks: Halt beats everything, ignored beats deferred beats handlers.
    """
    for info in states.values():
        info.owner = cls
        info.entry_fn = _resolve_handler(cls, info.entry) if info.entry else None
        info.exit_fn = _resolve_handler(cls, info.exit) if info.exit else None
        dispatch: Dict[type, tuple] = {}
        for evt, action in info.actions.items():
            dispatch[evt] = (DISP_ACTION, _resolve_handler(cls, action))
        for evt, target in info.transitions.items():
            dispatch[evt] = (DISP_TRANSITION, states[target])
        for evt in info.deferred:
            dispatch[evt] = (DISP_DEFER, None)
        for evt in info.ignored:
            dispatch[evt] = (DISP_IGNORE, None)
        dispatch[Halt] = (DISP_HALT, None)
        info.dispatch = dispatch


class Machine:
    """Abstract base class of all P# machines.

    Subclasses declare nested ``State`` classes and implement actions as
    plain methods.  Instances are always created through a runtime
    (``Runtime.create_machine`` or ``Machine.create_machine`` from inside
    an action); user code holds only ``MachineId`` handles, never direct
    references to other machine instances.
    """

    # Populated by __init_subclass__:
    _state_infos: Dict[str, StateInfo] = {}
    _initial_state: str = ""

    # When non-None, every field read/write on any machine goes through
    # this callback: (machine, field_name, is_write) -> None.  Used by the
    # CHESS-style baseline to schedule at memory-access granularity.
    _field_access_hook: Optional[Callable[["Machine", str, bool], None]] = None

    # Fields that survive a fault-injected crash-restart (see
    # repro.testing.faults): the machine's model of durable storage.
    # Everything else in __dict__ is volatile memory, wiped when the
    # tester crash-restarts the machine.
    persistent_fields: Tuple[str, ...] = ()

    # The runtime-internal attributes live in __slots__ for fast access;
    # "__dict__" stays in the layout so user machine subclasses can keep
    # assigning arbitrary fields in their actions.
    __slots__ = (
        "_runtime",
        "_id",
        "_inbox",
        "_current_state",
        "_current_event",
        "_raised",
        "_halted",
        "_inbox_dirty",
        "_idle_deliverable",
        "_boot_event",
        "__dict__",
        "__weakref__",
    )

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        states = _collect_states(cls)
        if states:  # allow abstract intermediates with no states yet
            cls._initial_state = _validate_machine(cls, states)
            _link_states(cls, states)
        cls._state_infos = states

    def __init__(self, runtime: Any, mid: MachineId) -> None:
        object.__setattr__(self, "_psharp_internal", True)
        self._runtime = runtime
        self._id = mid
        self._inbox: deque = deque()
        self._current_state: Optional[StateInfo] = None
        self._current_event: Optional[Event] = None
        self._raised: Optional[Event] = None
        self._halted = False
        # Idle-deliverability memo for the bug-finding schedulers: while a
        # machine sits idle its deliverable-status can only change when an
        # event is enqueued to it, so `_schedulable` caches the last
        # inbox-scan verdict in `_idle_deliverable` and only rescans when
        # `_inbox_dirty` is set (at idle-entry and on every enqueue).
        self._inbox_dirty = True
        self._idle_deliverable = False
        # The creation event (set by RuntimeBase._instantiate): a
        # crash-restart re-enters the initial state with this event, so a
        # rebooted machine sees its original creation payload.
        self._boot_event: Optional[Event] = None
        del self._psharp_internal

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def id(self) -> MachineId:
        return self._id

    @property
    def payload(self) -> Any:
        """Payload of the event currently being handled (paper: ``this.Payload``)."""
        return None if self._current_event is None else self._current_event.payload

    @property
    def current_state(self) -> Optional[str]:
        return None if self._current_state is None else self._current_state.name

    @property
    def is_halted(self) -> bool:
        return self._halted

    def __repr__(self) -> str:
        return f"{type(self).__name__}{self._id.value}"

    # ------------------------------------------------------------------
    # Backend resolution
    # ------------------------------------------------------------------
    @classmethod
    def inline_compatible(cls) -> bool:
        """Whether this machine class compiles on the single-thread inline
        continuation backend.

        The backend-resolution hook behind ``workers="auto"``: the testing
        layers call it on a campaign's main machine class to decide between
        the inline backend and the pooled-thread fallback.  The verdict is
        the coroutine compiler's own (:func:`repro.core.continuations
        .compile_inline_machine`) and is memoized per class either way —
        a successful compile is reused by the inline backend itself, and a
        failure is cached in ``_inline_incompatible`` (the compiler's
        message) so repeated resolution costs one dict probe.
        """
        if cls.__dict__.get("_inline_ready"):
            return True
        if "_inline_incompatible" in cls.__dict__:
            return False
        from .continuations import InlineCompileError, compile_inline_machine

        try:
            compile_inline_machine(cls)
        except InlineCompileError as exc:
            cls._inline_incompatible = str(exc)
            return False
        return True

    # ------------------------------------------------------------------
    # The P# primitives available inside actions
    # ------------------------------------------------------------------
    def send(self, target: MachineId, event: Event) -> None:
        """Send ``event`` to ``target``.

        In bug-finding mode this is a scheduling point: "the send and
        create-machine methods call the runtime method Schedule, which
        blocks the current thread and releases another thread" (Sec. 6.2).
        """
        self._runtime.send(target, event, sender=self)

    def create_machine(
        self, machine_cls: Type["Machine"], payload: Any = None
    ) -> MachineId:
        """Create a new machine instance; also a scheduling point."""
        return self._runtime.create_machine(machine_cls, payload, creator=self)

    def raise_event(self, event: Event) -> None:
        """Raise an event to be handled by this machine before any queued
        event; processing happens after the current action returns."""
        if self._raised is not None:
            raise AssertionFailure(
                f"{self} raised {event!r} while {self._raised!r} is pending"
            )
        self._raised = event

    def assert_that(self, condition: Any, message: str = "assertion failed") -> None:
        """P#'s ``assert``: a falsified condition is a bug, reported with a
        replayable trace in bug-finding mode."""
        if not condition:
            raise AssertionFailure(f"{self}: {message}")

    def nondet(self) -> bool:
        """A controlled nondeterministic boolean choice.

        Under the DFS scheduler both branches are explored systematically;
        under the random scheduler the choice is random (Section 6.2
        explains why random machines' choices need not be controlled).
        """
        return self._runtime.nondet(self)

    def nondet_int(self, bound: int) -> int:
        """Controlled nondeterministic integer in ``range(bound)`` (the
        ``GetNextChoice`` of Figure 1)."""
        return self._runtime.nondet_int(self, bound)

    def monitor(self, monitor_cls: type, event: Event) -> None:
        """Invoke a registered specification monitor with ``event`` (the
        ``Monitor<T>(e)`` of P#).  Monitors execute synchronously in the
        invoking machine's step and never consume scheduling decisions; an
        invocation of a monitor class that is not registered with the
        runtime is a no-op, so programs run unchanged without their
        specifications attached."""
        self._runtime.invoke_monitor(monitor_cls, event, source=self)

    def halt(self) -> None:
        """Halt this machine at the end of the current action."""
        self.raise_event(Halt())

    def log(self, message: str) -> None:
        self._runtime.log(f"{self}: {message}")

    # ------------------------------------------------------------------
    # Event-handling machinery (driven by the runtimes)
    # ------------------------------------------------------------------
    def _enqueue(self, event: Event) -> None:
        if not self._halted:
            self._inbox.append(event)

    def _deliverable_index(self) -> Optional[int]:
        """Index of the first queued event the current state is willing to
        handle, skipping deferred events and dropping ignored ones.

        This implements the paper's transition function ``Tm``, which
        "finds the first event in E that m is willing to handle in state q"
        (Section 4).  Returns None when no queued event is deliverable.

        Raises ``UnhandledEventError`` (paper error class (ii)) when the
        first non-deferred event is neither handled nor ignored.
        """
        state = self._current_state
        assert state is not None
        dispatch = state.dispatch
        dispatch_get = dispatch.get
        inbox = self._inbox
        i = 0
        while i < len(inbox):
            event = inbox[i]
            # Probe the memoized table directly; disposition() fills it
            # on a miss (and this is the loop that makes it hot).
            entry = dispatch_get(type(event))
            if entry is None:
                entry = state.disposition(type(event))
            code = entry[0]
            if code <= DISP_HALT:  # action, transition or halt: deliverable
                return i
            if code == DISP_DEFER:
                i += 1
                continue
            if code == DISP_IGNORE:
                del inbox[i]
                continue
            raise UnhandledEventError(self, state.name, event)
        return None

    def _has_deliverable(self) -> bool:
        if self._halted:
            return False
        if self._current_state is None:
            return True  # not started yet: entering the initial state is work
        if self._raised is not None:
            return True
        return self._deliverable_index() is not None

    def _start(self) -> None:
        """Enter the initial state (runs its entry handler)."""
        self._transition_to(self._initial_state, self._current_event)

    def _step(self) -> bool:
        """Handle one event (raised or dequeued).  Returns False when there
        was nothing to handle or the machine has halted."""
        if self._halted:
            return False
        if self._raised is not None:
            event, self._raised = self._raised, None
        else:
            index = self._deliverable_index()
            if index is None:
                return False
            event = self._inbox[index]
            del self._inbox[index]
            runtime = self._runtime
            if runtime._hook_dequeued:
                runtime.on_event_dequeued(self, event)
        self._handle(event)
        return True

    def _handle(self, event: Event) -> None:
        state = self._current_state
        assert state is not None
        code, payload = state.disposition(type(event))
        if code == DISP_ACTION:
            self._current_event = event
            payload(self)
        elif code == DISP_TRANSITION:
            self._enter(payload, event)
        elif code == DISP_HALT:
            self._do_halt()
        else:
            raise UnhandledEventError(self, state.name, event)

    def _enter(self, info: StateInfo, event: Optional[Event]) -> None:
        old = self._current_state
        if old is not None and old.exit_fn is not None:
            old.exit_fn(self)
        self._current_state = info
        self._current_event = event
        runtime = self._runtime
        if runtime._hook_state:
            runtime.on_state_entered(self, old, event)
        entry_fn = info.entry_fn
        if entry_fn is not None:
            entry_fn(self)

    def _transition_to(self, state_name: str, event: Optional[Event]) -> None:
        self._enter(self._state_infos[state_name], event)

    def _do_halt(self) -> None:
        self._halted = True
        self._inbox.clear()
        self._raised = None
        self._runtime.on_machine_halted(self)

    # ------------------------------------------------------------------
    # Coroutine stepping (the single-thread inline backend)
    # ------------------------------------------------------------------
    # Mirrors of _start/_step/_handle/_enter that delegate to the
    # compiled coroutine variants of handlers (see
    # repro.core.continuations): a handler reshaped into a generator
    # yields (OP_*, ...) tuples at its scheduling primitives, which
    # bubble up through these delegating generators to the inline
    # scheduler.  Plain (non-scheduling) handlers are called directly, so
    # they pay no generator overhead.

    def _start_inline(self):
        """Inline variant of :meth:`_start`: ``True`` when the initial
        entry ran entirely plain, else a coroutine for the scheduler to
        drive."""
        return self._enter_inline_fast(
            self._state_infos[self._initial_state], self._current_event
        )

    def _step_inline(self):
        """Inline variant of :meth:`_step`.

        Returns ``False`` when there was nothing to handle, ``True`` when
        the step completed without touching a scheduling primitive (the
        common case — it then cost no generator machinery at all), or a
        coroutine the inline scheduler must drive (the step reached
        handlers reshaped by :mod:`repro.core.continuations`).
        """
        if self._halted:
            return False
        if self._raised is not None:
            event, self._raised = self._raised, None
        else:
            index = self._deliverable_index()
            if index is None:
                return False
            event = self._inbox[index]
            del self._inbox[index]
            runtime = self._runtime
            if runtime._hook_dequeued:
                runtime.on_event_dequeued(self, event)
        state = self._current_state
        entry = state.inline_dispatch.get(type(event))
        if entry is None:
            entry = state.inline_disposition(type(event))
        code, payload, is_coroutine = entry
        if code == DISP_ACTION:
            self._current_event = event
            if is_coroutine:
                return payload(self)
            payload(self)
            return True
        if code == DISP_TRANSITION:
            return self._enter_inline_fast(payload, event)
        if code == DISP_HALT:
            self._do_halt()
            return True
        raise UnhandledEventError(self, state.name, event)

    def _enter_inline_fast(self, info: StateInfo, event: Optional[Event]):
        """Perform a state entry plain when neither the exit nor the
        entry handler can suspend; otherwise hand back the suspendable
        :meth:`_enter_inline` coroutine."""
        old = self._current_state
        exit_handler = old.exit_inline if old is not None else None
        entry_handler = info.entry_inline
        if (exit_handler is None or not exit_handler[1]) and (
            entry_handler is None or not entry_handler[1]
        ):
            if exit_handler is not None:
                exit_handler[0](self)
            self._current_state = info
            self._current_event = event
            runtime = self._runtime
            if runtime._hook_state:
                runtime.on_state_entered(self, old, event)
            if entry_handler is not None:
                entry_handler[0](self)
            return True
        return self._enter_inline(info, event)

    def _enter_inline(self, info: StateInfo, event: Optional[Event]):
        old = self._current_state
        if old is not None and old.exit_inline is not None:
            fn, is_coroutine = old.exit_inline
            if is_coroutine:
                yield from fn(self)
            else:
                fn(self)
        self._current_state = info
        self._current_event = event
        runtime = self._runtime
        if runtime._hook_state:
            runtime.on_state_entered(self, old, event)
        handler = info.entry_inline
        if handler is not None:
            fn, is_coroutine = handler
            if is_coroutine:
                yield from fn(self)
            else:
                fn(self)

    # ------------------------------------------------------------------
    # Optional field-access instrumentation (CHESS baseline, Section 7.2.2)
    # ------------------------------------------------------------------
    # ``__setattr__`` is NOT defined on the class by default: machines
    # write fields constantly (it is the single most frequent operation
    # in a controlled execution), and a Python-level interception hook
    # taxes every one of those writes even when no instrumentation is
    # active.  The CHESS baseline installs ``_instrumented_setattr`` as
    # ``Machine.__setattr__`` for the duration of its executions via
    # :func:`install_field_access_hook`.

    def _instrumented_setattr(self, name: str, value: Any) -> None:
        hook = Machine._field_access_hook
        if (
            hook is not None
            and not name.startswith("_")
            and "_psharp_internal" not in self.__dict__
        ):
            hook(self, name, True)
        object.__setattr__(self, name, value)

    def read(self, name: str) -> Any:
        """Instrumented field read.  Plain attribute reads are not hooked
        (hooking ``__getattribute__`` would tax production mode); the CHESS
        baseline additionally schedules at dequeue/enqueue operations so
        the visible-operation density is still far above the P# runtime's.
        """
        hook = Machine._field_access_hook
        if hook is not None and not name.startswith("_"):
            hook(self, name, False)
        return getattr(self, name)


def install_field_access_hook(
    hook: Optional[Callable[[Machine, str, bool], None]]
) -> None:
    """Install (or, with ``None``, remove) the global field-access hook.

    Installing also swaps the instrumented ``__setattr__`` into the
    ``Machine`` class; removing deletes it so ordinary field writes go
    straight to ``object.__setattr__`` with zero interception cost.
    """
    Machine._field_access_hook = hook
    if hook is not None:
        Machine.__setattr__ = Machine._instrumented_setattr  # type: ignore[method-assign]
    elif "__setattr__" in Machine.__dict__:
        del Machine.__setattr__


def machine_statistics(machine_cls: Type[Machine]) -> Dict[str, int]:
    """Static statistics of one machine class, matching Table 1's columns:
    number of state transitions (#ST) and action bindings (#AB)."""
    transitions = 0
    bindings = 0
    for info in machine_cls._state_infos.values():
        transitions += len(info.transitions)
        bindings += len(info.actions)
    return {
        "states": len(machine_cls._state_infos),
        "transitions": transitions,
        "action_bindings": bindings,
    }


def program_statistics(machine_classes: Iterable[Type[Machine]]) -> Dict[str, int]:
    """Aggregate Table 1 statistics (#M, #ST, #AB) for a set of machines."""
    totals = {"machines": 0, "states": 0, "transitions": 0, "action_bindings": 0}
    for cls in machine_classes:
        stats = machine_statistics(cls)
        totals["machines"] += 1
        totals["states"] += stats["states"]
        totals["transitions"] += stats["transitions"]
        totals["action_bindings"] += stats["action_bindings"]
    return totals
