"""The ``Machine`` and ``State`` abstractions.

A P# program is composed of state machines that communicate by sending and
receiving events (Section 1).  Machines are classes inheriting from the
abstract ``Machine``; their states are *nested classes* inheriting from
``State`` — the paper notes that P# "enforces states to be nested classes
of the machine they belong to; this ensures they cannot be accessed
externally" (Section 3).

A state declares, as class attributes:

``entry``
    name of the machine method run on entry to the state (the ``OnEntry``
    of the paper); it receives the payload of the event that caused the
    transition.
``exit``
    name of the machine method run when leaving the state.
``transitions``
    mapping from event classes to target state names (the paper's
    "State Transitions" boxes).
``actions``
    mapping from event classes to machine method names (the paper's
    "Action Bindings"); the machine stays in the same state.
``deferred`` / ``ignored``
    event classes that are skipped in the queue / silently dropped.
``initial``
    marks the machine's initial state (exactly one per machine).

Actions and entry/exit handlers are arbitrary *sequential* Python methods:
they must not spawn threads or use synchronization — concurrency is only
expressed by creating machines and sending events, mirroring the paper's
restriction that "actions ... must be sequential".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Tuple, Type

from ..errors import (
    AssertionFailure,
    MachineDeclarationError,
    UnhandledEventError,
)
from .events import Event, Halt, MachineId


class State:
    """Base class for machine states.  See module docstring."""

    entry: Optional[str] = None
    exit: Optional[str] = None
    transitions: Dict[Type[Event], str] = {}
    actions: Dict[Type[Event], str] = {}
    deferred: Tuple[Type[Event], ...] = ()
    ignored: Tuple[Type[Event], ...] = ()
    initial: bool = False


@dataclass
class StateInfo:
    """Preprocessed description of one state of a machine.

    The runtime "preprocesses each registered machine to build a
    machine-specific map from states to state transitions and action
    bindings" (Section 6.1); this is that map's entry.
    """

    name: str
    entry: Optional[str]
    exit: Optional[str]
    transitions: Dict[Type[Event], str]
    actions: Dict[Type[Event], str]
    deferred: frozenset
    ignored: frozenset
    initial: bool = False

    def handles(self, event_cls: Type[Event]) -> bool:
        return event_cls in self.transitions or event_cls in self.actions

    def defers(self, event_cls: Type[Event]) -> bool:
        return event_cls in self.deferred

    def ignores(self, event_cls: Type[Event]) -> bool:
        return event_cls in self.ignored


def _collect_states(cls: type) -> Dict[str, StateInfo]:
    """Walk the MRO collecting nested ``State`` subclasses.

    Supports inheritance between machines (the ``BaseService`` /
    ``UserService`` pattern of Figure 1): a subclass inherits all states of
    its base machine and may override individual states by redeclaring a
    nested class with the same name.
    """
    states: Dict[str, StateInfo] = {}
    for klass in reversed(cls.__mro__):
        for name, attr in vars(klass).items():
            if isinstance(attr, type) and issubclass(attr, State) and attr is not State:
                info = StateInfo(
                    name=name,
                    entry=attr.entry,
                    exit=attr.exit,
                    transitions=dict(attr.transitions),
                    actions=dict(attr.actions),
                    deferred=frozenset(attr.deferred),
                    ignored=frozenset(attr.ignored),
                    initial=bool(attr.initial),
                )
                states[name] = info  # later (more derived) declarations win
    return states


def _validate_machine(cls: type, states: Dict[str, StateInfo]) -> str:
    """Check the paper's well-formedness conditions; return initial state name."""
    if not states:
        raise MachineDeclarationError(f"machine {cls.__name__} declares no states")

    initials = [s.name for s in states.values() if s.initial]
    if len(initials) != 1:
        raise MachineDeclarationError(
            f"machine {cls.__name__} must have exactly one initial state, "
            f"found {initials or 'none'}"
        )

    for info in states.values():
        # Paper error class (i): "an event can be handled in more than one
        # way in the same state".
        overlap = set(info.transitions) & set(info.actions)
        if overlap:
            raise MachineDeclarationError(
                f"state {info.name} of machine {cls.__name__} handles "
                f"{sorted(e.__name__ for e in overlap)} both as a transition "
                "and as an action"
            )
        for evt, target in info.transitions.items():
            if target not in states:
                raise MachineDeclarationError(
                    f"state {info.name} of {cls.__name__} transitions to "
                    f"unknown state {target!r} on {evt.__name__}"
                )
        for evt, action in info.actions.items():
            if not callable(getattr(cls, action, None)):
                raise MachineDeclarationError(
                    f"state {info.name} of {cls.__name__} binds {evt.__name__} "
                    f"to missing action {action!r}"
                )
        for handler in (info.entry, info.exit):
            if handler is not None and not callable(getattr(cls, handler, None)):
                raise MachineDeclarationError(
                    f"state {info.name} of {cls.__name__} names missing "
                    f"method {handler!r}"
                )
    return initials[0]


class Machine:
    """Abstract base class of all P# machines.

    Subclasses declare nested ``State`` classes and implement actions as
    plain methods.  Instances are always created through a runtime
    (``Runtime.create_machine`` or ``Machine.create_machine`` from inside
    an action); user code holds only ``MachineId`` handles, never direct
    references to other machine instances.
    """

    # Populated by __init_subclass__:
    _state_infos: Dict[str, StateInfo] = {}
    _initial_state: str = ""

    # When non-None, every field read/write on any machine goes through
    # this callback: (machine, field_name, is_write) -> None.  Used by the
    # CHESS-style baseline to schedule at memory-access granularity.
    _field_access_hook: Optional[Callable[["Machine", str, bool], None]] = None

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        states = _collect_states(cls)
        if states:  # allow abstract intermediates with no states yet
            cls._initial_state = _validate_machine(cls, states)
        cls._state_infos = states

    def __init__(self, runtime: Any, mid: MachineId) -> None:
        object.__setattr__(self, "_psharp_internal", True)
        self._runtime = runtime
        self._id = mid
        self._inbox: deque = deque()
        self._current_state: Optional[StateInfo] = None
        self._current_event: Optional[Event] = None
        self._raised: Optional[Event] = None
        self._halted = False
        del self._psharp_internal

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def id(self) -> MachineId:
        return self._id

    @property
    def payload(self) -> Any:
        """Payload of the event currently being handled (paper: ``this.Payload``)."""
        return None if self._current_event is None else self._current_event.payload

    @property
    def current_state(self) -> Optional[str]:
        return None if self._current_state is None else self._current_state.name

    @property
    def is_halted(self) -> bool:
        return self._halted

    def __repr__(self) -> str:
        return f"{type(self).__name__}{self._id.value}"

    # ------------------------------------------------------------------
    # The P# primitives available inside actions
    # ------------------------------------------------------------------
    def send(self, target: MachineId, event: Event) -> None:
        """Send ``event`` to ``target``.

        In bug-finding mode this is a scheduling point: "the send and
        create-machine methods call the runtime method Schedule, which
        blocks the current thread and releases another thread" (Sec. 6.2).
        """
        self._runtime.send(target, event, sender=self)

    def create_machine(
        self, machine_cls: Type["Machine"], payload: Any = None
    ) -> MachineId:
        """Create a new machine instance; also a scheduling point."""
        return self._runtime.create_machine(machine_cls, payload, creator=self)

    def raise_event(self, event: Event) -> None:
        """Raise an event to be handled by this machine before any queued
        event; processing happens after the current action returns."""
        if self._raised is not None:
            raise AssertionFailure(
                f"{self} raised {event!r} while {self._raised!r} is pending"
            )
        self._raised = event

    def assert_that(self, condition: Any, message: str = "assertion failed") -> None:
        """P#'s ``assert``: a falsified condition is a bug, reported with a
        replayable trace in bug-finding mode."""
        if not condition:
            raise AssertionFailure(f"{self}: {message}")

    def nondet(self) -> bool:
        """A controlled nondeterministic boolean choice.

        Under the DFS scheduler both branches are explored systematically;
        under the random scheduler the choice is random (Section 6.2
        explains why random machines' choices need not be controlled).
        """
        return self._runtime.nondet(self)

    def nondet_int(self, bound: int) -> int:
        """Controlled nondeterministic integer in ``range(bound)`` (the
        ``GetNextChoice`` of Figure 1)."""
        return self._runtime.nondet_int(self, bound)

    def halt(self) -> None:
        """Halt this machine at the end of the current action."""
        self.raise_event(Halt())

    def log(self, message: str) -> None:
        self._runtime.log(f"{self}: {message}")

    # ------------------------------------------------------------------
    # Event-handling machinery (driven by the runtimes)
    # ------------------------------------------------------------------
    def _enqueue(self, event: Event) -> None:
        if not self._halted:
            self._inbox.append(event)

    def _deliverable_index(self) -> Optional[int]:
        """Index of the first queued event the current state is willing to
        handle, skipping deferred events and dropping ignored ones.

        This implements the paper's transition function ``Tm``, which
        "finds the first event in E that m is willing to handle in state q"
        (Section 4).  Returns None when no queued event is deliverable.

        Raises ``UnhandledEventError`` (paper error class (ii)) when the
        first non-deferred event is neither handled nor ignored.
        """
        state = self._current_state
        assert state is not None
        i = 0
        while i < len(self._inbox):
            event = self._inbox[i]
            cls = type(event)
            if cls is Halt:
                return i
            if state.ignores(cls):
                del self._inbox[i]
                continue
            if state.defers(cls):
                i += 1
                continue
            if state.handles(cls):
                return i
            raise UnhandledEventError(self, state.name, event)
        return None

    def _has_deliverable(self) -> bool:
        if self._halted:
            return False
        if self._current_state is None:
            return True  # not started yet: entering the initial state is work
        if self._raised is not None:
            return True
        return self._deliverable_index() is not None

    def _start(self) -> None:
        """Enter the initial state (runs its entry handler)."""
        self._transition_to(self._initial_state, self._current_event)

    def _step(self) -> bool:
        """Handle one event (raised or dequeued).  Returns False when there
        was nothing to handle or the machine has halted."""
        if self._halted:
            return False
        if self._raised is not None:
            event, self._raised = self._raised, None
        else:
            index = self._deliverable_index()
            if index is None:
                return False
            event = self._inbox[index]
            del self._inbox[index]
            self._runtime.on_event_dequeued(self, event)
        self._handle(event)
        return True

    def _handle(self, event: Event) -> None:
        state = self._current_state
        assert state is not None
        if isinstance(event, Halt):
            self._do_halt()
            return
        cls = type(event)
        if cls in state.actions:
            self._current_event = event
            getattr(self, state.actions[cls])()
        elif cls in state.transitions:
            self._transition_to(state.transitions[cls], event)
        else:  # pragma: no cover - guarded by _deliverable_index
            raise UnhandledEventError(self, state.name, event)

    def _transition_to(self, state_name: str, event: Optional[Event]) -> None:
        old = self._current_state
        if old is not None and old.exit is not None:
            getattr(self, old.exit)()
        new = self._state_infos[state_name]
        self._current_state = new
        self._current_event = event
        if new.entry is not None:
            getattr(self, new.entry)()

    def _do_halt(self) -> None:
        self._halted = True
        self._inbox.clear()
        self._raised = None
        self._runtime.on_machine_halted(self)

    # ------------------------------------------------------------------
    # Optional field-access instrumentation (CHESS baseline, Section 7.2.2)
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: Any) -> None:
        hook = Machine._field_access_hook
        if (
            hook is not None
            and not name.startswith("_")
            and "_psharp_internal" not in self.__dict__
        ):
            hook(self, name, True)
        object.__setattr__(self, name, value)

    def read(self, name: str) -> Any:
        """Instrumented field read.  Plain attribute reads are not hooked
        (hooking ``__getattribute__`` would tax production mode); the CHESS
        baseline additionally schedules at dequeue/enqueue operations so
        the visible-operation density is still far above the P# runtime's.
        """
        hook = Machine._field_access_hook
        if hook is not None and not name.startswith("_"):
            hook(self, name, False)
        return getattr(self, name)


def machine_statistics(machine_cls: Type[Machine]) -> Dict[str, int]:
    """Static statistics of one machine class, matching Table 1's columns:
    number of state transitions (#ST) and action bindings (#AB)."""
    transitions = 0
    bindings = 0
    for info in machine_cls._state_infos.values():
        transitions += len(info.transitions)
        bindings += len(info.actions)
    return {
        "states": len(machine_cls._state_infos),
        "transitions": transitions,
        "action_bindings": bindings,
    }


def program_statistics(machine_classes: Iterable[Type[Machine]]) -> Dict[str, int]:
    """Aggregate Table 1 statistics (#M, #ST, #AB) for a set of machines."""
    totals = {"machines": 0, "states": 0, "transitions": 0, "action_bindings": 0}
    for cls in machine_classes:
        stats = machine_statistics(cls)
        totals["machines"] += 1
        totals["states"] += stats["states"]
        totals["transitions"] += stats["transitions"]
        totals["action_bindings"] += stats["action_bindings"]
    return totals
