"""Compiling machine handlers into resumable generator coroutines.

The single-thread ``workers="inline"`` backend (:mod:`repro.testing
.runtime`) runs every machine of a controlled execution on one thread, so
a scheduling decision is a plain function call instead of an OS thread
hand-off.  That requires machine actions to be *suspendable*: when the
strategy picks another machine mid-action, the current action's frame
must pause exactly at the scheduling point and resume later.  CPython has
no stackful coroutines, but it has generators — and every scheduling
point in this programming model is syntactically visible: it is a call to
``self.send(...)`` or ``self.create_machine(...)`` (``nondet`` consults
the strategy but never transfers control, so it stays a plain call).

This module therefore *reshapes* handler methods into generator
coroutines at class granularity, once, lazily, the first time a machine
class runs on the inline backend:

1. Every plain method reachable from the class's entry/exit/action
   handlers is analysed for scheduling calls; a method is **switchable**
   when it calls a scheduling primitive directly or calls another
   switchable method (the transitive closure over ``self.helper(...)``
   call sites).
2. Each switchable method's AST is rewritten:
   ``self.send(t, e)``            -> ``yield (OP_SEND, t, e)``
   ``self.create_machine(c, p)``  -> ``(yield (OP_CREATE, c, p))``
   ``self.helper(...)``           -> ``yield from self._inline__helper(...)``
   and recompiled against the original function's globals and closure
   cells, so event classes, module imports and test-local names resolve
   exactly as they did in the source method.
3. The compiled coroutines are linked into the class's per-state dispatch
   tables (``StateInfo.inline_dispatch`` / ``entry_inline`` /
   ``exit_inline``), mirroring the precompiled plain dispatch.

The op tuples yielded by transformed code are interpreted by the inline
scheduler (``BugFindingRuntime._inline_drive``): it performs the send or
create *effect*, consults the strategy for the decision the primitive
implies, and either resumes the coroutine (the machine keeps running) or
suspends it by yielding the chosen machine id to the trampoline.  Because
the effect and the decision happen in exactly the order the threaded
backends use, traces stay bit-identical across all three backends.

Non-switchable methods are untouched and run as plain calls.  Handlers
whose source is unavailable (``exec``-defined code) are conservatively
treated as non-switchable; if such a handler does reach a scheduling
primitive on the inline backend, the runtime raises a descriptive error
instead of deadlocking.  Constructs that cannot host a ``yield`` —
scheduling calls inside lambdas, comprehensions or nested functions,
handlers that are already generators, ``super()`` dispatch, and starred
primitive arguments — raise :class:`InlineCompileError` at compile time.
"""

from __future__ import annotations

import ast
import copy
import inspect
import textwrap
import types
import weakref
from typing import Dict, List, Optional, Set, Tuple

from ..errors import PSharpError
from .events import Halt
from .machine import (
    DISP_ACTION,
    DISP_DEFER,
    DISP_HALT,
    DISP_IGNORE,
    DISP_TRANSITION,
)

# Opcodes of the tuples yielded by transformed handler coroutines.  The
# inline scheduler switches on index 0; the remaining elements are the
# primitive's (already evaluated) arguments.
OP_SEND = 0
OP_CREATE = 1

# Transformed helper coroutines are published on the class under this
# prefix, so `self._inline__helper(...)` dispatches virtually: a subclass
# that overrides `helper` (and is compiled itself) shadows the base
# class's compiled coroutine the same way the plain call would.
INLINE_PREFIX = "_inline__"

_PRIMITIVES = ("send", "create_machine")

# Methods inherited from the framework base classes never reach a
# scheduling primitive through `self.X(...)` calls (Machine.send goes
# through `self._runtime`), so their sources are not worth analysing.
_FRAMEWORK_MODULES = frozenset(
    {"repro.core.machine", "repro.testing.monitors"}
)


class InlineCompileError(PSharpError):
    """A handler reaches a scheduling primitive in a position that cannot
    be reshaped into a coroutine (see the module docstring)."""


# ---------------------------------------------------------------------------
# Per-function source analysis (cached per function object)
# ---------------------------------------------------------------------------
class _FnInfo:
    __slots__ = (
        "tree",
        "outer_calls",
        "inner_calls",
        "has_yield",
        "filename",
        "firstlineno",
    )

    def __init__(
        self,
        tree: ast.FunctionDef,
        outer_calls: Set[str],
        inner_calls: Set[str],
        has_yield: bool,
        filename: str,
        firstlineno: int,
    ) -> None:
        self.tree = tree
        self.outer_calls = outer_calls
        self.inner_calls = inner_calls
        self.has_yield = has_yield
        self.filename = filename
        self.firstlineno = firstlineno

    @property
    def calls(self) -> Set[str]:
        return self.outer_calls | self.inner_calls


_NESTED_SCOPES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


class _CallScanner(ast.NodeVisitor):
    """Collect `self.X(...)` call-site names, split by whether they occur
    in the method's own scope (transformable) or a nested scope (a
    ``yield`` cannot be placed there)."""

    def __init__(self) -> None:
        self.outer_calls: Set[str] = set()
        self.inner_calls: Set[str] = set()
        self.has_yield = False
        self._depth = 0

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            (self.inner_calls if self._depth else self.outer_calls).add(
                func.attr
            )
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if not self._depth:
            self.has_yield = True
        self.generic_visit(node)

    visit_YieldFrom = visit_Yield  # type: ignore[assignment]

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, _NESTED_SCOPES):
            self._depth += 1
            super().generic_visit(node)
            self._depth -= 1
        else:
            super().generic_visit(node)


# Parsed-source analyses, weak on the function object (see
# _transform_cache).  A None value marks "source unavailable".
_fn_info_cache: "weakref.WeakKeyDictionary[types.FunctionType, Optional[_FnInfo]]" = (
    weakref.WeakKeyDictionary()
)


def _fn_info(fn: types.FunctionType) -> Optional[_FnInfo]:
    """Parse + scan ``fn``; None when its source is unavailable."""
    if fn in _fn_info_cache:
        return _fn_info_cache[fn]
    info: Optional[_FnInfo]
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        info = None
    else:
        func_def = next(
            (n for n in tree.body if isinstance(n, ast.FunctionDef)), None
        )
        if func_def is None:
            info = None
        else:
            scanner = _CallScanner()
            for stmt in func_def.body:
                scanner.visit(stmt)
            info = _FnInfo(
                func_def,
                scanner.outer_calls,
                scanner.inner_calls,
                scanner.has_yield,
                fn.__code__.co_filename,
                fn.__code__.co_firstlineno,
            )
    _fn_info_cache[fn] = info
    return info


# ---------------------------------------------------------------------------
# The AST rewrite
# ---------------------------------------------------------------------------
def _normalize_args(
    node: ast.Call, names: Tuple[str, ...], owner: str, required: int
) -> List[ast.expr]:
    """Map a primitive call's args/keywords onto positional ``names``;
    missing optional trailing args become ``None`` constants."""
    if any(isinstance(a, ast.Starred) for a in node.args) or any(
        kw.arg is None for kw in node.keywords
    ):
        raise InlineCompileError(
            f"{owner}: cannot reshape a *args/**kwargs call to "
            f"self.{node.func.attr}(...) into a coroutine"  # type: ignore[attr-defined]
        )
    slots: List[Optional[ast.expr]] = list(node.args) + [None] * (
        len(names) - len(node.args)
    )
    if len(node.args) > len(names):
        raise InlineCompileError(
            f"{owner}: too many arguments in scheduling call"
        )
    for kw in node.keywords:
        if kw.arg not in names:
            raise InlineCompileError(
                f"{owner}: unexpected keyword {kw.arg!r} in scheduling call"
            )
        index = names.index(kw.arg)
        if slots[index] is not None:
            raise InlineCompileError(
                f"{owner}: duplicate argument {kw.arg!r} in scheduling call"
            )
        slots[index] = kw.value
    for index in range(required):
        if slots[index] is None:
            raise InlineCompileError(
                f"{owner}: missing argument {names[index]!r} in scheduling call"
            )
    return [
        slot if slot is not None else ast.Constant(value=None)
        for slot in slots
    ]


class _InlineTransformer(ast.NodeTransformer):
    """Rewrite scheduling primitives to yields and switchable helper
    calls to ``yield from`` delegations.  Nested scopes are left alone
    (verified hazard-free before the transform runs)."""

    def __init__(self, switchable: Set[str], owner: str) -> None:
        self._switchable = switchable
        self._owner = owner

    # Yields cannot live in nested scopes; their hazard-freedom was
    # checked up front, so skip them entirely.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        return node

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]
    visit_ListComp = visit_FunctionDef  # type: ignore[assignment]
    visit_SetComp = visit_FunctionDef  # type: ignore[assignment]
    visit_DictComp = visit_FunctionDef  # type: ignore[assignment]
    visit_GeneratorExp = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> ast.AST:
        self.generic_visit(node)
        func = node.func
        if isinstance(func, ast.Name) and func.id == "super":
            raise InlineCompileError(
                f"{self._owner}: super() dispatch inside a scheduling "
                "handler is not supported on the inline backend"
            )
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return node
        name = func.attr
        if name == "send":
            args = _normalize_args(node, ("target", "event"), self._owner, 2)
            return ast.Yield(
                value=ast.Tuple(
                    elts=[ast.Constant(value=OP_SEND), *args],
                    ctx=ast.Load(),
                )
            )
        if name == "create_machine":
            args = _normalize_args(
                node, ("machine_cls", "payload"), self._owner, 1
            )
            return ast.Yield(
                value=ast.Tuple(
                    elts=[ast.Constant(value=OP_CREATE), *args],
                    ctx=ast.Load(),
                )
            )
        if name in self._switchable:
            return ast.YieldFrom(
                value=ast.Call(
                    func=ast.Attribute(
                        value=ast.Name(id="self", ctx=ast.Load()),
                        attr=INLINE_PREFIX + name,
                        ctx=ast.Load(),
                    ),
                    args=node.args,
                    keywords=node.keywords,
                )
            )
        return node


def _check_transformable(
    name: str, info: _FnInfo, switchable: Set[str], cls_name: str
) -> None:
    owner = f"{cls_name}.{name}"
    if info.has_yield:
        raise InlineCompileError(
            f"{owner}: handlers that are already generators cannot be "
            "reshaped for the inline backend"
        )
    hazards = sorted(
        call
        for call in info.inner_calls
        if call in _PRIMITIVES or call in switchable
    )
    if hazards:
        raise InlineCompileError(
            f"{owner}: scheduling calls {hazards} occur inside a lambda, "
            "comprehension or nested function; a coroutine cannot suspend "
            "there — hoist them into the method body"
        )


# fn -> {relevant-switchable-subset -> compiled coroutine}.  Weak on the
# function object so handlers of dynamically created (e.g. test-local)
# machine classes can be collected with their class.
_transform_cache: "weakref.WeakKeyDictionary[types.FunctionType, Dict[frozenset, types.FunctionType]]" = (
    weakref.WeakKeyDictionary()
)


def _transform(
    fn: types.FunctionType,
    info: _FnInfo,
    switchable: Set[str],
    cls_name: str,
) -> types.FunctionType:
    """Compile the coroutine variant of ``fn``.  Cached on the function
    plus the subset of switchable names it actually calls — the compiled
    code is class-independent (helper delegation is a virtual attribute
    lookup), so base-class methods compile once per distinct resolution."""
    relevant = frozenset(switchable & info.calls)
    cached = _transform_cache.get(fn, {}).get(relevant)
    if cached is not None:
        return cached
    _check_transformable(fn.__name__, info, switchable, cls_name)

    # Transform a deep copy so the cached pristine tree can be reused for
    # other (class, resolution) pairs sharing this function.
    new_def = copy.deepcopy(info.tree)
    new_def.decorator_list = []
    transformer = _InlineTransformer(switchable, f"{cls_name}.{fn.__name__}")
    new_def.body = [transformer.visit(stmt) for stmt in new_def.body]

    freevars = fn.__code__.co_freevars
    if "__class__" in freevars:
        raise InlineCompileError(
            f"{cls_name}.{fn.__name__}: handlers using zero-argument "
            "super() cannot be reshaped for the inline backend"
        )
    if freevars:
        # The factory re-binds the original closure cells as parameters;
        # parsing a template keeps the AST shape valid across Python
        # versions (3.12 adds required FunctionDef fields).
        module = ast.parse(
            "def __inline_factory__({0}):\n    return None".format(
                ", ".join(freevars)
            )
        )
        factory = module.body[0]
        factory.body = [
            new_def,
            ast.Return(value=ast.Name(id=new_def.name, ctx=ast.Load())),
        ]
    else:
        module = ast.parse("")
        module.body = [new_def]
    ast.fix_missing_locations(module)
    # Line numbers map back to the defining file so tracebacks from
    # transformed coroutines point at the real handler source.
    ast.increment_lineno(module, info.firstlineno - 1)
    code = compile(module, info.filename, "exec")
    namespace: Dict[str, object] = {}
    # Executing with a separate locals dict keeps the definition out of
    # the module's real globals while the new function still *binds* them
    # (event classes, imports) exactly like the original.
    exec(code, fn.__globals__, namespace)
    if freevars:
        cells = [cell.cell_contents for cell in fn.__closure__ or ()]
        new_fn = namespace["__inline_factory__"](*cells)
        if new_fn.__code__.co_freevars == fn.__code__.co_freevars:
            # Share the ORIGINAL closure cells (the compiler sorts
            # freevars deterministically, so a matching tuple means a
            # 1:1 cell correspondence): a free variable rebound by the
            # enclosing scope after compilation is then seen live, just
            # as the threaded backends see it through the plain method.
            new_fn = types.FunctionType(
                new_fn.__code__,
                fn.__globals__,
                new_fn.__name__,
                new_fn.__defaults__,
                fn.__closure__,
            )
            new_fn.__kwdefaults__ = fn.__kwdefaults__
    else:
        new_fn = namespace[new_def.name]
    new_fn.__qualname__ = fn.__qualname__ + "[inline]"
    _transform_cache.setdefault(fn, {})[relevant] = new_fn
    return new_fn


# ---------------------------------------------------------------------------
# Per-class compilation
# ---------------------------------------------------------------------------
def _eligible_methods(cls: type) -> Dict[str, types.FunctionType]:
    """Plain functions reachable on ``cls``, resolved most-derived-wins,
    excluding the framework base classes (they never schedule via self)."""
    methods: Dict[str, types.FunctionType] = {}
    for klass in reversed(cls.__mro__):
        if klass is object or klass.__module__ in _FRAMEWORK_MODULES:
            continue
        for name, attr in vars(klass).items():
            if isinstance(attr, types.FunctionType):
                methods[name] = attr
    return methods


def _switchable_names(
    methods: Dict[str, types.FunctionType],
    infos: Dict[str, Optional[_FnInfo]],
) -> Set[str]:
    """Transitive closure of "calls a scheduling primitive" over the
    class's ``self.X(...)`` call graph."""
    switchable = {
        name
        for name, info in infos.items()
        if info is not None and any(p in info.calls for p in _PRIMITIVES)
    }
    changed = True
    while changed:
        changed = False
        for name, info in infos.items():
            if name in switchable or info is None:
                continue
            if info.calls & switchable:
                switchable.add(name)
                changed = True
    return switchable


def _inline_handler(
    name: Optional[str],
    plain_fn,
    coroutines: Dict[str, types.FunctionType],
) -> Optional[tuple]:
    if name is None:
        return None
    gen_fn = coroutines.get(name)
    if gen_fn is not None:
        return (gen_fn, True)
    return (plain_fn, False)


def compile_inline_machine(cls: type) -> None:
    """Idempotently compile ``cls``'s inline dispatch tables.

    Lazily invoked by the inline backend's ``_spawn``; costs one AST
    round-trip per switchable method per class, amortized over every
    execution of every campaign that touches the class.
    """
    if cls.__dict__.get("_inline_ready"):
        return
    methods = _eligible_methods(cls)
    infos = {name: _fn_info(fn) for name, fn in methods.items()}
    switchable = _switchable_names(methods, infos)

    coroutines: Dict[str, types.FunctionType] = {}
    for name in sorted(switchable):
        info = infos[name]
        assert info is not None  # switchable implies analysable source
        coroutines[name] = _transform(methods[name], info, switchable, cls.__name__)
    for name, gen_fn in coroutines.items():
        setattr(cls, INLINE_PREFIX + name, gen_fn)

    for state in cls._state_infos.values():  # type: ignore[attr-defined]
        table: Dict[type, tuple] = {}
        for evt in state.actions:
            code, plain_fn = state.dispatch[evt]
            handler = _inline_handler(state.actions[evt], plain_fn, coroutines)
            assert handler is not None
            table[evt] = (DISP_ACTION, handler[0], handler[1])
        for evt in state.transitions:
            table[evt] = (DISP_TRANSITION, state.dispatch[evt][1], False)
        for evt in state.deferred:
            table[evt] = (DISP_DEFER, None, False)
        for evt in state.ignored:
            table[evt] = (DISP_IGNORE, None, False)
        table[Halt] = (DISP_HALT, None, False)
        state.inline_dispatch = table
        state.entry_inline = _inline_handler(state.entry, state.entry_fn, coroutines)
        state.exit_inline = _inline_handler(state.exit, state.exit_fn, coroutines)
    cls._inline_ready = True
