"""Events and machine identifiers.

Events in P# are classes inheriting from an abstract ``Event`` base; an
event instance may carry a payload, which can be a scalar or a reference
to a heap object (Section 3: "A payload in P# can be a scalar or a
reference sent by a sender machine").  Payload references are *not*
deep-copied on send — that is exactly what makes the static data race
analysis of Section 5 necessary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


class Event:
    """Base class of all P# events.

    Subclass to declare a new event type::

        class EPing(Event):
            pass

        machine.send(target, EPing(payload))
    """

    __slots__ = ("payload",)

    def __init__(self, payload: Any = None) -> None:
        self.payload = payload

    def __repr__(self) -> str:
        if self.payload is None:
            return f"{type(self).__name__}()"
        return f"{type(self).__name__}({self.payload!r})"


class Halt(Event):
    """Built-in event that halts the receiving machine.

    A halted machine is removed from scheduling; events sent to it are
    silently dropped.
    """


@dataclass(frozen=True, order=True)
class MachineId:
    """A lightweight, hashable handle to a machine instance.

    Ids are allocated in creation order by the runtime, which makes them
    deterministic under a fixed schedule — a prerequisite for the
    deterministic replay of buggy schedules (Section 6.2).
    """

    value: int
    name: str = ""

    def __repr__(self) -> str:
        return f"{self.name}({self.value})"

    # Ids sit on the scheduling hot path (enabled-set membership, worker
    # lookups, trace comparisons): hash and compare by the allocation
    # counter first instead of building (value, name) tuples.  Equal ids
    # always share a value, so the hash contract holds.
    def __hash__(self) -> int:
        return self.value

    def __eq__(self, other: object) -> bool:
        if other.__class__ is MachineId:
            return self.value == other.value and self.name == other.name
        return NotImplemented


def event_name(event: "Event | type") -> str:
    """Readable name for an event instance or event class."""
    cls = event if isinstance(event, type) else type(event)
    return cls.__name__


def payload_of(event: Optional[Event]) -> Any:
    return None if event is None else event.payload
