"""The P# programming model: machines, states, events and the production runtime."""

from .events import Event, Halt, MachineId
from .machine import Machine, State, machine_statistics, program_statistics
from .runtime import Runtime, RuntimeBase

__all__ = [
    "Event",
    "Halt",
    "MachineId",
    "Machine",
    "State",
    "Runtime",
    "RuntimeBase",
    "machine_statistics",
    "program_statistics",
]
