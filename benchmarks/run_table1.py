"""Print Table 1 (program statistics + static analysis) and the SOTER
comparison.  Usage: ``python benchmarks/run_table1.py``"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from tables import build_table1, soter_comparison  # noqa: E402


def main():
    print("=" * 100)
    print("Table 1 — program statistics and results of the P# static analyzer")
    print("=" * 100)
    for row in build_table1():
        print(row.format())
    print()
    print("SOTER-P# precision comparison (Sections 5.5, 7.2.1)")
    for name, row in soter_comparison().items():
        print(
            f"  {name:<12} ours: {row['ours']} violations   "
            f"SOTER-style: {row['soter']} false positives"
        )


if __name__ == "__main__":
    main()
