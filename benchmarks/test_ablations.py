"""Ablation benches for the design choices DESIGN.md calls out.

1. Scheduling-point granularity: send/create-only vs every visible op.
2. Race-detector overhead: CHESS RD-on vs RD-off.
3. xSA on/off: false-positive counts.
4. Read-only extension on/off: the residual MultiPaxos pattern.
5. Search strategies: DFS vs random vs PCT vs delay-bounding on a deep bug.
"""

import pytest

from repro import (
    DelayBoundingStrategy,
    DfsStrategy,
    PctStrategy,
    RandomStrategy,
    TestingEngine,
)
from repro.analysis import analyze_program
from repro.analysis.frontend import lower_machines
from repro.bench import get
from repro.chess import chess_engine

pytestmark = pytest.mark.bench


def _program(name):
    bench = get(name)
    return lower_machines(bench.correct.machines, bench.correct.helpers, name)


class TestSchedulingGranularity:
    def test_psharp_fewer_scheduling_points_than_chess(self):
        main = get("German").buggy.main

        def points(factory_kind):
            if factory_kind == "psharp":
                engine = TestingEngine(
                    main, strategy=RandomStrategy(seed=3), max_iterations=20,
                    stop_on_first_bug=False, max_steps=5000, time_limit=30,
                )
            else:
                engine = chess_engine(
                    main, strategy=RandomStrategy(seed=3), race_detection=False,
                    max_iterations=20, stop_on_first_bug=False,
                    max_steps=20000, time_limit=30,
                )
            return engine.run().mean_scheduling_points

        psharp = points("psharp")
        chess = points("chess")
        assert chess > 2 * psharp, (psharp, chess)


class TestXsaAblation:
    @pytest.mark.parametrize("name", ["German", "Chameneos", "Swordfish"])
    def test_xsa_discards_false_positives(self, name):
        program = _program(name)
        without = analyze_program(program, xsa=False)
        with_xsa = analyze_program(program, xsa=True)
        assert with_xsa.violation_count() <= without.violation_count()

    def test_xsa_needed_somewhere(self):
        # At least one benchmark's verification depends on xSA.
        helped = 0
        for name in ["German", "Chameneos", "Swordfish", "AsyncSystem"]:
            program = _program(name)
            without = analyze_program(program, xsa=False)
            with_xsa = analyze_program(program, xsa=True)
            if with_xsa.violation_count() < without.violation_count():
                helped += 1
        assert helped >= 1


class TestReadOnlyAblation:
    def test_multipaxos_needs_readonly(self):
        program = _program("MultiPaxos")
        xsa_only = analyze_program(program, xsa=True, readonly=False)
        full = analyze_program(program, xsa=True, readonly=True)
        assert xsa_only.violation_count() > 0  # the paper's residual FPs
        assert full.verified


class TestStrategyComparison:
    @pytest.mark.parametrize(
        "strategy_name", ["random", "pct", "delay-bounding", "dfs"]
    )
    def test_strategies_on_shallow_bug(self, benchmark, strategy_name):
        main = get("ChainReplication").buggy.main
        factories = {
            "random": lambda: RandomStrategy(seed=5),
            "pct": lambda: PctStrategy(seed=5, depth=3),
            "delay-bounding": lambda: DelayBoundingStrategy(seed=5, delays=2),
            "dfs": lambda: DfsStrategy(),
        }

        def hunt():
            engine = TestingEngine(
                main, strategy=factories[strategy_name](),
                max_iterations=300, stop_on_first_bug=True,
                max_steps=5000, time_limit=30,
            )
            return engine.run()

        report = benchmark.pedantic(hunt, rounds=1, iterations=1)
        # The shallow environment-driven bug is findable by randomized
        # strategies; DFS may or may not reach it in its corner of the
        # tree — exactly the Table 2 story.
        if strategy_name != "dfs":
            assert report.bug_found
