"""Table 1: program statistics and static data race analysis results.

Regenerates, for every PSharpBench / SOTER-P# / AsyncSystem program, the
columns of the paper's Table 1: LoC, #M, #ST, #AB, analysis time, false
positives without and with xSA, the verified verdict, and whether all
seeded races in the racy variants are found.  pytest-benchmark measures
the analysis time (the paper reports < 6s per benchmark, 15s for
AsyncSystem; the shape to preserve is "fast and flat across programs").

Run: ``pytest benchmarks/test_table1_static_analysis.py --benchmark-only -s``
"""

import pytest

from repro.analysis import analyze_program
from repro.analysis.frontend import lower_machines
from repro.bench import get

from .tables import PSHARPBENCH, SOTER_SUITE, build_table1, registry_name

pytestmark = pytest.mark.bench

ALL_NAMES = PSHARPBENCH + SOTER_SUITE + ["AsyncSystem"]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_static_analysis_speed(benchmark, name):
    bench = get(registry_name(name))
    program = lower_machines(
        bench.correct.machines, bench.correct.helpers, name=name
    )

    result = benchmark(analyze_program, program, xsa=True, readonly=True)
    assert result.verified, f"{name} must verify with xSA + read-only"


@pytest.mark.parametrize("name", ALL_NAMES)
def test_frontend_lowering_speed(benchmark, name):
    bench = get(registry_name(name))
    program = benchmark(
        lower_machines, bench.correct.machines, bench.correct.helpers, name
    )
    assert program.machines


def test_print_table1(capsys):
    rows = build_table1()
    with capsys.disabled():
        print()
        print("=" * 100)
        print("Table 1 — program statistics and static analysis "
              "(paper: Table 1, Section 7.2.1)")
        print("=" * 100)
        for row in rows:
            print(row.format())
    # Shape assertions mirroring the paper's findings:
    by_name = {r.name: r for r in rows}
    # xSA discards false positives (17 of 24 in the paper).
    total_no_xsa = sum(r.fp_no_xsa for r in rows)
    total_xsa = sum(r.fp_xsa for r in rows)
    assert total_xsa < total_no_xsa
    # MultiPaxos keeps residual FPs with xSA alone (5 in the paper) and
    # needs the read-only extension.
    assert by_name["MultiPaxos"].fp_xsa > 0
    assert by_name["MultiPaxos"].fp_readonly == 0
    # Everything verifies with the full pipeline.
    assert all(r.verified for r in rows)
    # All seeded races in the racy variants are found (soundness).
    for row in rows:
        if row.racy_found_all is not None:
            assert row.racy_found_all, f"missed a seeded race in {row.name}"
