"""Section 7.2.1 / Table 1 (SOTER-P# rows): precision comparison against
the SOTER-style baseline.

"While our analyzer verifies all four benchmarks, SOTER reports a number
of false positives (e.g. 70 false positives in Swordfish)."  The absolute
count depends on program size; the shape is: ours = 0 on every benchmark,
baseline > 0 on the staging/reuse idioms.
"""

import pytest

from repro.analysis import analyze_program
from repro.analysis.frontend import lower_machines
from repro.bench import get
from repro.soter import soter_analyze

from .tables import SOTER_SUITE, soter_comparison

pytestmark = pytest.mark.bench


@pytest.mark.parametrize("name", SOTER_SUITE)
def test_soter_baseline_speed(benchmark, name):
    bench = get(name)
    program = lower_machines(bench.correct.machines, bench.correct.helpers, name)
    violations = benchmark(soter_analyze, program)
    assert isinstance(violations, list)


def test_print_soter_comparison(capsys):
    table = soter_comparison()
    with capsys.disabled():
        print()
        print("=" * 72)
        print("SOTER-P# precision comparison (paper: Sections 5.5, 7.2.1)")
        print("=" * 72)
        for name, row in table.items():
            print(
                f"{name:<12} ours: {row['ours']:>2} violations   "
                f"SOTER-style baseline: {row['soter']:>2} false positives"
            )
    assert all(row["ours"] == 0 for row in table.values())
    flagged = sum(1 for row in table.values() if row["soter"] > 0)
    assert flagged >= 2, "the baseline should lose precision on the staging idioms"
