"""Shared table-building code for the Table 1 / Table 2 harnesses.

Both the pytest-benchmark suites and the standalone ``run_table*.py``
scripts build their rows here, so the printed tables and the benchmarked
operations stay in sync.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import DfsStrategy, RandomStrategy, TestingEngine
from repro.analysis import analyze_program
from repro.analysis.frontend import lower_machines
from repro.bench import Benchmark, all_benchmarks, get, suite
from repro.chess import chess_engine
from repro.soter import soter_analyze

PSHARPBENCH = [
    "BoundedAsync",
    "German",
    "BasicPaxos",
    "TwoPhaseCommit",
    "Chord",
    "MultiPaxos",
    "Raft",
    "ChReplication",
]
SOTER_SUITE = ["Leader", "Pi", "Chameneos", "Swordfish"]


def registry_name(name: str) -> str:
    from repro.bench import resolve

    return resolve(name)


# ---------------------------------------------------------------------------
# Table 1: program statistics + static analysis
# ---------------------------------------------------------------------------
@dataclass
class Table1Row:
    name: str
    loc: int
    machines: int
    transitions: int
    action_bindings: int
    seconds: float
    fp_no_xsa: int
    fp_xsa: int
    verified: bool
    fp_readonly: Optional[int] = None  # violations left with the extension
    racy_seconds: Optional[float] = None
    racy_found_all: Optional[bool] = None

    def format(self) -> str:
        verified = "yes" if self.verified else "NO"
        racy = (
            f" racy: {self.racy_seconds:.3f}s found-all={'yes' if self.racy_found_all else 'NO'}"
            if self.racy_seconds is not None
            else ""
        )
        readonly = (
            f" +readonly: {self.fp_readonly}" if self.fp_readonly is not None else ""
        )
        return (
            f"{self.name:<15} LoC={self.loc:<5} #M={self.machines:<2} "
            f"#ST={self.transitions:<3} #AB={self.action_bindings:<3} "
            f"time={self.seconds:.3f}s FP(no-xSA)={self.fp_no_xsa} "
            f"FP(xSA)={self.fp_xsa}{readonly} verified={verified}{racy}"
        )


def table1_row(benchmark: Benchmark) -> Table1Row:
    stats = benchmark.statistics()
    program = lower_machines(
        benchmark.correct.machines, benchmark.correct.helpers, name=benchmark.name
    )

    start = time.perf_counter()
    no_xsa = analyze_program(program, xsa=False, readonly=False)
    with_xsa = analyze_program(program, xsa=True, readonly=False)
    with_readonly = analyze_program(program, xsa=True, readonly=True)
    seconds = time.perf_counter() - start

    row = Table1Row(
        name=benchmark.name,
        loc=benchmark.loc(),
        machines=stats["machines"],
        transitions=stats["transitions"],
        action_bindings=stats["action_bindings"],
        seconds=seconds,
        fp_no_xsa=no_xsa.violation_count(),
        fp_xsa=with_xsa.violation_count(),
        fp_readonly=with_readonly.violation_count(),
        verified=with_readonly.verified,
    )

    if benchmark.racy is not None:
        start = time.perf_counter()
        racy_program = lower_machines(
            benchmark.racy.machines,
            benchmark.racy.helpers,
            name=f"{benchmark.name}-racy",
        )
        racy = analyze_program(racy_program, xsa=True, readonly=True)
        row.racy_seconds = time.perf_counter() - start
        row.racy_found_all = racy.violation_count() >= benchmark.seeded_races
    return row


def build_table1() -> List[Table1Row]:
    rows = []
    for name in PSHARPBENCH + SOTER_SUITE + ["AsyncSystem"]:
        rows.append(table1_row(get(registry_name(name))))
    return rows


def soter_comparison() -> Dict[str, Dict[str, int]]:
    """Our verdict vs the SOTER-style baseline on the SOTER-P# suite."""
    out: Dict[str, Dict[str, int]] = {}
    for name in SOTER_SUITE:
        benchmark = get(name)
        program = lower_machines(
            benchmark.correct.machines, benchmark.correct.helpers, name=name
        )
        ours = analyze_program(program, xsa=True, readonly=True)
        baseline = soter_analyze(program)
        out[name] = {
            "ours": ours.violation_count(),
            "soter": len(baseline),
        }
    return out


# ---------------------------------------------------------------------------
# Table 2: bug finding
# ---------------------------------------------------------------------------
@dataclass
class Table2Cell:
    scheduler: str
    schedules: int
    sched_points: float
    schedules_per_second: float
    bug_found: bool
    percent_buggy: Optional[float] = None
    first_bug_iteration: int = -1

    def format(self) -> str:
        buggy = (
            f" %buggy={self.percent_buggy:.0f}%"
            if self.percent_buggy is not None
            else ""
        )
        return (
            f"{self.scheduler:<14} #Sch={self.schedules:<5} "
            f"#SP={self.sched_points:<8.0f} Sch/s={self.schedules_per_second:<8.1f} "
            f"bug={'yes' if self.bug_found else 'no '}{buggy}"
        )


def run_cell(
    name: str,
    scheduler: str,
    max_iterations: int = 200,
    time_limit: float = 20.0,
    seed: int = 7,
    estimate_buggy: bool = False,
) -> Table2Cell:
    benchmark = get(registry_name(name))
    assert benchmark.buggy is not None
    main = benchmark.buggy.main

    stop = not estimate_buggy
    if scheduler == "psharp-dfs":
        engine = TestingEngine(
            main, strategy=DfsStrategy(), max_iterations=max_iterations,
            time_limit=time_limit, stop_on_first_bug=True, max_steps=5000,
        )
    elif scheduler == "psharp-random":
        engine = TestingEngine(
            main, strategy=RandomStrategy(seed=seed),
            max_iterations=max_iterations, time_limit=time_limit,
            stop_on_first_bug=stop, max_steps=5000,
        )
    elif scheduler == "chess-rd-on":
        engine = chess_engine(
            main, strategy=DfsStrategy(), race_detection=True,
            max_iterations=max_iterations, time_limit=time_limit,
            stop_on_first_bug=True, max_steps=20000,
        )
    elif scheduler == "chess-rd-off":
        engine = chess_engine(
            main, strategy=DfsStrategy(), race_detection=False,
            max_iterations=max_iterations, time_limit=time_limit,
            stop_on_first_bug=True, max_steps=20000,
        )
    else:
        raise ValueError(scheduler)

    report = engine.run()
    return Table2Cell(
        scheduler=scheduler,
        schedules=report.iterations,
        sched_points=report.mean_scheduling_points,
        schedules_per_second=report.schedules_per_second,
        bug_found=report.bug_found,
        percent_buggy=report.percent_buggy if estimate_buggy else None,
        first_bug_iteration=report.first_bug_iteration,
    )


TABLE2_SCHEDULERS = ["chess-rd-on", "chess-rd-off", "psharp-dfs", "psharp-random"]


def build_table2(
    max_iterations: int = 200, time_limit: float = 20.0
) -> Dict[str, List[Table2Cell]]:
    table: Dict[str, List[Table2Cell]] = {}
    for name in PSHARPBENCH:
        cells = []
        for scheduler in TABLE2_SCHEDULERS:
            cells.append(
                run_cell(
                    name,
                    scheduler,
                    max_iterations=max_iterations,
                    time_limit=time_limit,
                    estimate_buggy=(scheduler == "psharp-random"),
                )
            )
        table[name] = cells
    return table
