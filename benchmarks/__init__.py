"""Benchmark harness package (enables the relative imports in the
Table 1 / Table 2 modules)."""
