"""Print Table 2 (CHESS RD-on/RD-off vs P# DFS vs P# random on the buggy
PSharpBench programs).

Usage: ``python benchmarks/run_table2.py [max_schedules] [time_limit_s]``
Defaults: 300 schedules / 25s per cell (the paper used 10,000 / 300s).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from tables import build_table2  # noqa: E402


def main():
    max_iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    time_limit = float(sys.argv[2]) if len(sys.argv) > 2 else 25.0
    print("=" * 100)
    print(
        f"Table 2 — bug finding, at most {max_iterations} schedules / "
        f"{time_limit:.0f}s per cell"
    )
    print("=" * 100)
    for name, cells in build_table2(max_iterations, time_limit).items():
        print(f"--- {name}")
        for cell in cells:
            print("   ", cell.format())


if __name__ == "__main__":
    main()
