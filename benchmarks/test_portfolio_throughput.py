"""Schedule-throughput benchmarks: worker back-end A/B + portfolio scaling.

Table 2's headline metric is schedules per second (#Sch/sec): the value of
systematic testing is directly proportional to how many controlled
executions the runtime drives per unit time.  Two experiments here:

* **Back-end A/B** — the same strategy seed driven through all three
  worker back-ends: ``workers="inline"`` (the single-thread continuation
  runtime: scheduling decisions are plain function calls),
  ``workers="pool"`` (campaign-lifetime thread pool, lock hand-offs) and
  ``workers="spawn"`` (the legacy thread-per-execution path).  All three
  produce bit-identical traces, so the comparison isolates the back-end.
  Gates: pooled workers reach >= 2x spawn on at least two registry
  benchmarks, and the inline backend reaches >= 1.5x the pooled
  aggregate (the CI perf gate) with a >= 2x per-benchmark target whose
  achievement is recorded in ``BENCH_throughput.json`` at the repo root.
* **Portfolio scaling** — 1-worker vs N-worker aggregate #Sch/sec across
  processes (multi-core sharding + the portfolio-solver effect of mixing
  complementary heuristics).

Run: ``pytest benchmarks/test_portfolio_throughput.py -s -m bench``
The iteration budget scales down for CI smoke runs via the
``REPRO_BENCH_ITERS`` environment variable.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import BugFindingRuntime, PortfolioEngine, RandomStrategy, StrategySpec
from repro.testing.engine import drive
from repro.bench import buggy_main, table2_suite

pytestmark = pytest.mark.bench

BENCH = "TwoPhaseCommit"
ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERS", "150"))
BASELINE = [StrategySpec("random", {"seed": 7})]
PORTFOLIO = [StrategySpec("random", {"seed": 7}), StrategySpec("iddfs", {})]

# The worker back-end A/B: every registry benchmark is measured; at least
# MIN_2X_BENCHMARKS of them must show a >= 2x pooled speedup over spawn.
# The ratio is dominated by thread spawn/join cost, which scales with the
# machine count, so high-machine-count short-schedule protocols clear 2x
# first.
AB_ITERATIONS = max(50, ITERATIONS)
MIN_2X_BENCHMARKS = 2
# The inline continuation backend's gates against pool: the aggregate
# ratio is the hard CI gate; the per-benchmark 2x target's achievement is
# recorded in the trajectory file (host noise makes per-benchmark ratios
# on shared runners advisory).
INLINE_AGGREGATE_GATE = 1.5
INLINE_TARGET = 2.0
TRAJECTORY_FILE = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"


def _campaign(specs):
    engine = PortfolioEngine(
        buggy_main(BENCH),
        specs=specs,
        max_iterations=ITERATIONS,
        time_limit=120,
        max_steps=5_000,
        stop_on_first_bug=False,
    )
    return engine.run()


def _best_campaign(specs, trials=2):
    """Best of ``trials`` runs: damps scheduler noise on loaded CI hosts so
    the comparison reflects the engines, not a preemption hiccup."""
    return max((_campaign(specs) for _ in range(trials)),
               key=lambda report: report.schedules_per_second)


def test_table2_suite_has_buggy_variants():
    names = {benchmark.name for benchmark in table2_suite()}
    assert BENCH in names
    assert len(names) == 8


# ---------------------------------------------------------------------------
# Worker back-end A/B: pooled vs spawned threads
# ---------------------------------------------------------------------------
def _backend_throughput(bench_name, mode, iterations, trials=2):
    """Best-of-``trials`` #Sch/sec for one benchmark under one back-end
    (best-of damps scheduler noise on loaded CI hosts)."""
    best = 0.0
    for trial in range(trials):
        report = drive(
            buggy_main(bench_name),
            None,
            RandomStrategy(seed=7),
            max_iterations=iterations,
            time_limit=120.0,
            max_steps=5_000,
            stop_on_first_bug=False,
            workers=mode,
        )
        assert report.iterations == iterations
        best = max(best, report.schedules_per_second)
    return best


def test_backend_throughput_ladder(capsys):
    """spawn -> pool -> inline: each rung must clear its gate, and the
    full three-column trajectory is written to BENCH_throughput.json."""
    rows = {}
    for benchmark in table2_suite():
        spawn = _backend_throughput(benchmark.name, "spawn", AB_ITERATIONS)
        pool = _backend_throughput(benchmark.name, "pool", AB_ITERATIONS)
        inline = _backend_throughput(benchmark.name, "inline", AB_ITERATIONS)
        rows[benchmark.name] = {
            "spawn_sch_per_sec": round(spawn, 1),
            "pool_sch_per_sec": round(pool, 1),
            "inline_sch_per_sec": round(inline, 1),
            "speedup": round(pool / spawn, 2),  # pool vs spawn (legacy key)
            "inline_speedup": round(inline / pool, 2),
        }

    aggregate_spawn = sum(r["spawn_sch_per_sec"] for r in rows.values())
    aggregate_pool = sum(r["pool_sch_per_sec"] for r in rows.values())
    aggregate_inline = sum(r["inline_sch_per_sec"] for r in rows.values())
    target_hit = sorted(
        name for name, row in rows.items()
        if row["inline_speedup"] >= INLINE_TARGET
    )
    trajectory = {
        "metric": "schedules_per_second",
        "strategy": "random(seed=7)",
        "iterations_per_benchmark": AB_ITERATIONS,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "benchmarks": rows,
        "aggregate": {
            "spawn_sch_per_sec": round(aggregate_spawn, 1),
            "pool_sch_per_sec": round(aggregate_pool, 1),
            "inline_sch_per_sec": round(aggregate_inline, 1),
            "speedup": round(aggregate_pool / aggregate_spawn, 2),
            "inline_speedup": round(aggregate_inline / aggregate_pool, 2),
        },
        # The tentpole's >= 2x per-benchmark target: recorded, not gated
        # (per-benchmark ratios are noisy on shared runners; the CI gate
        # is the aggregate inline:pool ratio below).
        "inline_2x_target": {
            "threshold": INLINE_TARGET,
            "required_benchmarks": MIN_2X_BENCHMARKS,
            "achieved_on": target_hit,
            "met": len(target_hit) >= MIN_2X_BENCHMARKS,
        },
    }
    TRAJECTORY_FILE.write_text(json.dumps(trajectory, indent=2) + "\n")

    with capsys.disabled():
        print()
        for name, row in rows.items():
            print(
                f"  {name:16s} spawn {row['spawn_sch_per_sec']:8.1f}/s"
                f"  pool {row['pool_sch_per_sec']:8.1f}/s"
                f"  inline {row['inline_sch_per_sec']:8.1f}/s"
                f"  x{row['speedup']:.2f}/x{row['inline_speedup']:.2f}"
            )
        agg = trajectory["aggregate"]
        print(f"  {'aggregate':16s} spawn {agg['spawn_sch_per_sec']:8.1f}/s"
              f"  pool {agg['pool_sch_per_sec']:8.1f}/s"
              f"  inline {agg['inline_sch_per_sec']:8.1f}/s"
              f"  x{agg['speedup']:.2f}/x{agg['inline_speedup']:.2f}")
        print(f"  inline 2x target on: {target_hit or 'none'}")

    doubled = [name for name, row in rows.items() if row["speedup"] >= 2.0]
    assert len(doubled) >= MIN_2X_BENCHMARKS, (
        f"pooled workers reached 2x over spawn on only {doubled} "
        f"(need {MIN_2X_BENCHMARKS}); full rows: {rows}"
    )
    # Aggregate gates (robust to single-benchmark timing noise on shared
    # CI runners; per-benchmark ratios are advisory, recorded above).
    assert aggregate_pool > 1.5 * aggregate_spawn, trajectory["aggregate"]
    assert aggregate_inline > INLINE_AGGREGATE_GATE * aggregate_pool, (
        f"inline backend lost its edge: {trajectory['aggregate']}"
    )


def test_multi_worker_portfolio_beats_single_worker_throughput(capsys):
    single = _best_campaign(BASELINE)
    multi = _best_campaign(PORTFOLIO)
    with capsys.disabled():
        print()
        print(f"  1-worker: {single.summary()}")
        print(f"  2-worker: {multi.summary()}")

    # Each worker ran its full shard within the time limit...
    assert single.iterations == ITERATIONS
    assert multi.iterations == len(PORTFOLIO) * ITERATIONS
    # ...and the portfolio's aggregate schedules/sec is strictly higher
    # than the 1-worker baseline (the PR's acceptance criterion).
    assert multi.schedules_per_second > single.schedules_per_second, (
        f"portfolio {multi.schedules_per_second:.1f}/s did not beat "
        f"baseline {single.schedules_per_second:.1f}/s"
    )


@pytest.mark.parametrize("bench_name", [b.name for b in table2_suite()])
def test_portfolio_finds_table2_bugs_or_runs_clean(bench_name):
    """Smoke coverage: a small diverse portfolio runs on every Table 2
    program without deadlocking; the shallow-bug programs are found."""
    engine = PortfolioEngine(
        buggy_main(bench_name),
        workers=2,
        seed=13,
        max_iterations=120,
        time_limit=60,
        max_steps=5_000,
    )
    report = engine.run()
    assert report.iterations > 0
    if report.first_bug is not None:
        replayed = engine.replay_winner(report)
        assert replayed is not None and replayed.buggy
