"""Portfolio scaling: 1-worker vs N-worker aggregate #Sch/sec.

Extends Table 2's throughput metric to the portfolio engine.  The
campaign-level #Sch/sec is total schedules over wall-clock time, so adding
workers raises it through two mechanisms:

* on multi-core hosts, sharding across processes recovers parallelism the
  serialized bug-finding runtime gives up by design;
* even on one core, a *diverse* portfolio lifts the aggregate because the
  systematic strategies (iddfs, delay-bounding) complete schedules faster
  than the random baseline on most Table 2 programs — the portfolio-solver
  effect of mixing complementary heuristics.

Run: ``pytest benchmarks/test_portfolio_throughput.py -s``
"""

import pytest

from repro import PortfolioEngine, StrategySpec
from repro.bench import buggy_main, table2_suite

pytestmark = pytest.mark.bench

BENCH = "TwoPhaseCommit"
ITERATIONS = 150
BASELINE = [StrategySpec("random", {"seed": 7})]
PORTFOLIO = [StrategySpec("random", {"seed": 7}), StrategySpec("iddfs", {})]


def _campaign(specs):
    engine = PortfolioEngine(
        buggy_main(BENCH),
        specs=specs,
        max_iterations=ITERATIONS,
        time_limit=120,
        max_steps=5_000,
        stop_on_first_bug=False,
    )
    return engine.run()


def _best_campaign(specs, trials=2):
    """Best of ``trials`` runs: damps scheduler noise on loaded CI hosts so
    the comparison reflects the engines, not a preemption hiccup."""
    return max((_campaign(specs) for _ in range(trials)),
               key=lambda report: report.schedules_per_second)


def test_table2_suite_has_buggy_variants():
    names = {benchmark.name for benchmark in table2_suite()}
    assert BENCH in names
    assert len(names) == 8


def test_multi_worker_portfolio_beats_single_worker_throughput(capsys):
    single = _best_campaign(BASELINE)
    multi = _best_campaign(PORTFOLIO)
    with capsys.disabled():
        print()
        print(f"  1-worker: {single.summary()}")
        print(f"  2-worker: {multi.summary()}")

    # Each worker ran its full shard within the time limit...
    assert single.iterations == ITERATIONS
    assert multi.iterations == len(PORTFOLIO) * ITERATIONS
    # ...and the portfolio's aggregate schedules/sec is strictly higher
    # than the 1-worker baseline (the PR's acceptance criterion).
    assert multi.schedules_per_second > single.schedules_per_second, (
        f"portfolio {multi.schedules_per_second:.1f}/s did not beat "
        f"baseline {single.schedules_per_second:.1f}/s"
    )


@pytest.mark.parametrize("bench_name", [b.name for b in table2_suite()])
def test_portfolio_finds_table2_bugs_or_runs_clean(bench_name):
    """Smoke coverage: a small diverse portfolio runs on every Table 2
    program without deadlocking; the shallow-bug programs are found."""
    engine = PortfolioEngine(
        buggy_main(bench_name),
        workers=2,
        seed=13,
        max_iterations=120,
        time_limit=60,
        max_steps=5_000,
    )
    report = engine.run()
    assert report.iterations > 0
    if report.first_bug is not None:
        replayed = engine.replay_winner(report)
        assert replayed is not None and replayed.buggy
