"""Table 2: CHESS vs the P# schedulers on the buggy PSharpBench programs.

Regenerates the paper's Table 2 comparison (Section 7.2.2) at reduced
bounds (the paper used 10,000 schedules / 5 minutes per cell; we default
to 150 schedules / 15s so the whole table builds in CI time — the *shape*
is what must hold):

* CHESS pays for race detection: RD-on is slower than RD-off;
* the P# DFS scheduler explores far fewer scheduling points per schedule
  than CHESS (send/create-machine only vs every visible operation) and is
  therefore faster;
* the random scheduler finds every seeded bug; DFS misses the deep ones.

Run: ``pytest benchmarks/test_table2_bugfinding.py --benchmark-only -s``
"""

import pytest

from repro import DfsStrategy, RandomStrategy, TestingEngine
from repro.bench import buggy_main as _buggy_main
from repro.chess import chess_engine

from .tables import PSHARPBENCH, TABLE2_SCHEDULERS, build_table2, run_cell

pytestmark = pytest.mark.bench

THROUGHPUT_BENCHES = ["BoundedAsync", "German", "2PhaseCommit"]


@pytest.mark.parametrize("name", THROUGHPUT_BENCHES)
def test_psharp_dfs_throughput(benchmark, name):
    main = _buggy_main(name)

    def run():
        engine = TestingEngine(
            main, strategy=DfsStrategy(), max_iterations=30,
            time_limit=10, stop_on_first_bug=False, max_steps=5000,
        )
        return engine.run()

    report = benchmark(run)
    assert report.iterations > 0


@pytest.mark.parametrize("name", THROUGHPUT_BENCHES)
def test_chess_rd_off_throughput(benchmark, name):
    main = _buggy_main(name)

    def run():
        engine = chess_engine(
            main, strategy=DfsStrategy(), race_detection=False,
            max_iterations=30, time_limit=10, stop_on_first_bug=False,
            max_steps=20000,
        )
        return engine.run()

    report = benchmark(run)
    assert report.iterations > 0


@pytest.mark.parametrize("name", THROUGHPUT_BENCHES)
def test_chess_rd_on_throughput(benchmark, name):
    main = _buggy_main(name)

    def run():
        engine = chess_engine(
            main, strategy=DfsStrategy(), race_detection=True,
            max_iterations=30, time_limit=10, stop_on_first_bug=False,
            max_steps=20000,
        )
        return engine.run()

    report = benchmark(run)
    assert report.iterations > 0


def test_print_table2(capsys):
    table = build_table2(max_iterations=150, time_limit=15.0)
    with capsys.disabled():
        print()
        print("=" * 100)
        print("Table 2 — bug finding: CHESS (RD-on/RD-off) vs P# DFS vs "
              "P# random (paper: Table 2, Section 7.2.2)")
        print("=" * 100)
        for name, cells in table.items():
            print(f"--- {name}")
            for cell in cells:
                print("   ", cell.format())

    # Shape assertions mirroring the paper:
    random_found = 0
    for name, cells in table.items():
        by_sched = {c.scheduler: c for c in cells}
        psharp = by_sched["psharp-dfs"]
        chess = by_sched["chess-rd-off"]
        # P# schedules have far fewer scheduling points than CHESS's
        # visible-operation instrumentation.
        if psharp.schedules >= 3 and chess.schedules >= 3:
            assert psharp.sched_points < chess.sched_points
        if by_sched["psharp-random"].bug_found:
            random_found += 1
    # "the random scheduler was able to find all bugs"
    assert random_found >= len(table) - 1, (
        f"random found only {random_found}/{len(table)}"
    )
