#!/usr/bin/env python
"""Perf regression gate: compare a freshly generated BENCH_throughput.json
against the committed baseline and fail on a >20% aggregate #Sch/sec drop.

The perf-smoke CI job copies the committed baseline aside, regenerates the
trajectory file by running ``benchmarks/test_portfolio_throughput.py``
(which overwrites ``BENCH_throughput.json`` in place), then runs::

    python benchmarks/check_perf_regression.py BASELINE.json FRESH.json \
        --require-backend-ratio "inline:pool>=1.5"

``--require-backend-ratio A:B>=R`` (repeatable) additionally gates on the
*fresh* measurement's aggregate back-end ratio: the aggregate
``A_sch_per_sec`` column must be at least ``R`` times the aggregate
``B_sch_per_sec`` column.  Unlike the baseline comparison this is a
same-host, same-run ratio, so it is immune to runner-class drift — it is
how CI proves the inline continuation backend keeps its edge over the
pooled backend on every push.

The gate compares the pooled back-end's aggregate schedules/sec (the
headline Table 2 metric); per-benchmark numbers are printed for context
but only the aggregate gates, since single benchmarks are noisy on shared
CI runners.  Tolerance defaults to 0.20 (20%) and can be overridden with
``--tolerance`` or the ``REPRO_PERF_TOLERANCE`` environment variable.

Caveat: the comparison is absolute, so it assumes the baseline was
generated on hardware comparable to the runner doing the fresh
measurement.  If the CI runner class changes (or the gate starts failing
with uniformly scaled per-benchmark ratios, the host-speed signature),
regenerate the committed baseline on the new runner class or widen
``REPRO_PERF_TOLERANCE`` — a genuine regression shows up as a drop in the
pool numbers that the spawn numbers don't share.

Exit status: 0 when within tolerance, 1 on a regression, 2 on bad inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from pathlib import Path


def _bad_input(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


_RATIO_SPEC = re.compile(
    r"^(?P<num>[a-z]+):(?P<den>[a-z]+)>=(?P<ratio>\d+(?:\.\d+)?)$"
)


def parse_ratio_spec(spec: str):
    """Parse ``"inline:pool>=1.5"`` into ``("inline", "pool", 1.5)``."""
    match = _RATIO_SPEC.match(spec.strip())
    if match is None:
        _bad_input(
            f"bad --require-backend-ratio {spec!r} (expected e.g. "
            "'inline:pool>=1.5')"
        )
    return match["num"], match["den"], float(match["ratio"])


def check_backend_ratio(fresh: dict, spec: str) -> bool:
    """True when the fresh aggregate meets the A:B>=R requirement."""
    numerator, denominator, required = parse_ratio_spec(spec)
    aggregate = fresh["aggregate"]
    values = {}
    for backend in (numerator, denominator):
        value = aggregate.get(f"{backend}_sch_per_sec")
        if value is None or value <= 0:
            _bad_input(
                f"fresh trajectory has no aggregate {backend}_sch_per_sec "
                f"column (needed by --require-backend-ratio {spec!r})"
            )
        values[backend] = value
    ratio = values[numerator] / values[denominator]
    ok = ratio >= required
    print(
        f"backend ratio {numerator}:{denominator} = {ratio:.2f}x "
        f"(gate: >= {required:.2f}x) {'ok' if ok else 'FAILED'}"
    )
    return ok


def load_aggregate(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        _bad_input(f"cannot read trajectory file {path}: {exc}")
    aggregate = data.get("aggregate")
    if not aggregate or "pool_sch_per_sec" not in aggregate:
        _bad_input(f"{path} has no aggregate.pool_sch_per_sec")
    return data


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed trajectory file")
    parser.add_argument("fresh", type=Path, help="freshly generated trajectory file")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", "0.20")),
        help="maximum tolerated aggregate drop as a fraction (default 0.20)",
    )
    parser.add_argument(
        "--require-backend-ratio",
        action="append",
        default=[],
        metavar="A:B>=R",
        help="fail unless the fresh aggregate A_sch_per_sec is at least "
        "R times B_sch_per_sec (e.g. 'inline:pool>=1.5'; repeatable)",
    )
    args = parser.parse_args()

    baseline = load_aggregate(args.baseline)
    fresh = load_aggregate(args.fresh)
    base_agg = baseline["aggregate"]["pool_sch_per_sec"]
    fresh_agg = fresh["aggregate"]["pool_sch_per_sec"]
    if base_agg <= 0:
        _bad_input(f"baseline aggregate is non-positive ({base_agg})")

    print(f"{'benchmark':18s} {'baseline':>10s} {'fresh':>10s} {'ratio':>7s}")
    for name, row in sorted(fresh.get("benchmarks", {}).items()):
        base_row = baseline.get("benchmarks", {}).get(name)
        base_val = base_row["pool_sch_per_sec"] if base_row else float("nan")
        fresh_val = row["pool_sch_per_sec"]
        ratio = fresh_val / base_val if base_row and base_val else float("nan")
        print(f"{name:18s} {base_val:>10.1f} {fresh_val:>10.1f} {ratio:>6.2f}x")

    ratio = fresh_agg / base_agg
    print(
        f"{'aggregate':18s} {base_agg:>10.1f} {fresh_agg:>10.1f} {ratio:>6.2f}x "
        f"(gate: >= {1.0 - args.tolerance:.2f}x)"
    )
    failed = False
    if ratio < 1.0 - args.tolerance:
        print(
            f"PERF REGRESSION: aggregate pooled #Sch/sec dropped "
            f"{(1.0 - ratio) * 100:.1f}% (> {args.tolerance * 100:.0f}% tolerance)"
        )
        failed = True
    for spec in args.require_backend_ratio:
        if not check_backend_ratio(fresh, spec):
            failed = True
    if failed:
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
