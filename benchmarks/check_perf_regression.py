#!/usr/bin/env python
"""Perf regression gate: compare a freshly generated BENCH_throughput.json
against the committed baseline and fail on a >20% aggregate #Sch/sec drop.

The perf-smoke CI job copies the committed baseline aside, regenerates the
trajectory file by running ``benchmarks/test_portfolio_throughput.py``
(which overwrites ``BENCH_throughput.json`` in place), then runs::

    python benchmarks/check_perf_regression.py BASELINE.json FRESH.json

The gate compares the pooled back-end's aggregate schedules/sec (the
headline Table 2 metric); per-benchmark numbers are printed for context
but only the aggregate gates, since single benchmarks are noisy on shared
CI runners.  Tolerance defaults to 0.20 (20%) and can be overridden with
``--tolerance`` or the ``REPRO_PERF_TOLERANCE`` environment variable.

Caveat: the comparison is absolute, so it assumes the baseline was
generated on hardware comparable to the runner doing the fresh
measurement.  If the CI runner class changes (or the gate starts failing
with uniformly scaled per-benchmark ratios, the host-speed signature),
regenerate the committed baseline on the new runner class or widen
``REPRO_PERF_TOLERANCE`` — a genuine regression shows up as a drop in the
pool numbers that the spawn numbers don't share.

Exit status: 0 when within tolerance, 1 on a regression, 2 on bad inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def _bad_input(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_aggregate(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        _bad_input(f"cannot read trajectory file {path}: {exc}")
    aggregate = data.get("aggregate")
    if not aggregate or "pool_sch_per_sec" not in aggregate:
        _bad_input(f"{path} has no aggregate.pool_sch_per_sec")
    return data


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed trajectory file")
    parser.add_argument("fresh", type=Path, help="freshly generated trajectory file")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", "0.20")),
        help="maximum tolerated aggregate drop as a fraction (default 0.20)",
    )
    args = parser.parse_args()

    baseline = load_aggregate(args.baseline)
    fresh = load_aggregate(args.fresh)
    base_agg = baseline["aggregate"]["pool_sch_per_sec"]
    fresh_agg = fresh["aggregate"]["pool_sch_per_sec"]
    if base_agg <= 0:
        _bad_input(f"baseline aggregate is non-positive ({base_agg})")

    print(f"{'benchmark':18s} {'baseline':>10s} {'fresh':>10s} {'ratio':>7s}")
    for name, row in sorted(fresh.get("benchmarks", {}).items()):
        base_row = baseline.get("benchmarks", {}).get(name)
        base_val = base_row["pool_sch_per_sec"] if base_row else float("nan")
        fresh_val = row["pool_sch_per_sec"]
        ratio = fresh_val / base_val if base_row and base_val else float("nan")
        print(f"{name:18s} {base_val:>10.1f} {fresh_val:>10.1f} {ratio:>6.2f}x")

    ratio = fresh_agg / base_agg
    print(
        f"{'aggregate':18s} {base_agg:>10.1f} {fresh_agg:>10.1f} {ratio:>6.2f}x "
        f"(gate: >= {1.0 - args.tolerance:.2f}x)"
    )
    if ratio < 1.0 - args.tolerance:
        print(
            f"PERF REGRESSION: aggregate pooled #Sch/sec dropped "
            f"{(1.0 - ratio) * 100:.1f}% (> {args.tolerance * 100:.0f}% tolerance)"
        )
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
