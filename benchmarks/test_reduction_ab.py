"""Schedule-space reduction A/B + incremental enabled-set A/B.

Two experiments ride the perf-smoke lane next to the back-end ladder:

* **Reduction A/B** — the same exhaustive DFS campaign driven with
  ``reduction="none"``, ``"dpor"`` and ``"dpor+state-cache"``.  Schedule
  counts under DFS exhaustion are *deterministic* (they count tree
  nodes, not wall-clock), so the gates are exact: every arm reports the
  identical distinct-bug set, and DPOR explores at most 0.6x the
  unreduced schedules on every measured benchmark.
* **Enabled-set A/B** — the incremental enabled-set bookkeeping
  (``BugFindingRuntime._schedulable``) against the pre-incremental
  O(#machines) seat walk it replaced, on the two highest-machine-count
  registry protocols (Raft, MultiPaxos), where the walk hurts most.
  Wall-clock ratios on shared runners are noisy, so the gate is loose
  (the incremental path must not *lose* throughput); the measured ratio
  is recorded for trend inspection.

Both experiments merge their rows into ``BENCH_throughput.json``
(read-modify-write: the back-end ladder regenerates the file wholesale,
so this file must run after it in CI — the perf-smoke job orders the
steps that way).

Run: ``pytest benchmarks/test_reduction_ab.py -s -m bench``
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench import get
from repro.testing import BugFindingRuntime, DfsStrategy, RandomStrategy, drive
from repro.testing.runtime import _IDLE, _NEW, _RUNNING

pytestmark = pytest.mark.bench

TRAJECTORY_FILE = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERS", "150"))

#: Exhaustive-DFS reduction fixtures: (benchmark, max_depth, max_steps).
#: Depths are chosen so the unreduced arm exhausts in a few thousand
#: schedules; TokenRing's steps are capped because beyond ``max_depth``
#: the DFS falls back to first-enabled and the ring spins out the
#: default budget.
REDUCTION_CASES = [
    ("BoundedAsync", 8, 2_000),
    ("TwoPhaseCommit", 8, 2_000),
    ("TokenRing", 7, 200),
]
REDUCTION_GATE = 0.6  # reduced schedules <= 0.6x unreduced, per benchmark

#: Enabled-set A/B fixtures: high machine count makes the O(#machines)
#: walk expensive per scheduling point.
ENABLED_SET_BENCHMARKS = ["Raft", "MultiPaxos"]
#: The incremental path must at minimum not lose throughput; in practice
#: it wins and the measured ratio lands in the trajectory file.
ENABLED_SET_GATE = 0.9


def _merge_trajectory(key, payload):
    """Read-modify-write ``BENCH_throughput.json``: the ladder bench
    overwrites the file wholesale, so reduction rows are folded in
    afterwards instead of racing it for the whole file."""
    data = {}
    if TRAJECTORY_FILE.exists():
        data = json.loads(TRAJECTORY_FILE.read_text())
    data[key] = payload
    TRAJECTORY_FILE.write_text(json.dumps(data, indent=2) + "\n")


# ---------------------------------------------------------------------------
# Reduction A/B: same bugs, deterministically fewer schedules
# ---------------------------------------------------------------------------
def _exhaustive(name, depth, max_steps, mode):
    variant = get(name).buggy
    return drive(
        variant.main,
        variant.payload,
        DfsStrategy(max_depth=depth),
        max_iterations=500_000,
        time_limit=240.0,
        max_steps=max_steps,
        stop_on_first_bug=False,
        workers="inline",
        monitors=tuple(variant.monitors),
        reduction=mode,
    )


def test_reduction_ab_ladder(capsys):
    """none -> dpor -> dpor+state-cache on every fixture: identical
    distinct-bug sets, and DPOR clears the 0.6x gate (exact, not a
    timing measurement)."""
    rows = {}
    for name, depth, max_steps in REDUCTION_CASES:
        arms = {}
        for mode in ("none", "dpor", "dpor+state-cache"):
            start = time.perf_counter()
            report = _exhaustive(name, depth, max_steps, mode)
            elapsed = time.perf_counter() - start
            assert report.exhausted, (
                f"{name} ({mode}) did not exhaust its schedule tree"
            )
            arms[mode] = {
                "schedules": report.iterations,
                "distinct_states": report.distinct_states,
                "schedules_pruned": report.schedules_pruned,
                "redundancy_ratio": round(report.redundancy_ratio, 3),
                "bugs": sorted({(b.kind, b.message) for b in report.bugs}),
                "elapsed_sec": round(elapsed, 2),
            }
        base, dpor, cached = (
            arms["none"], arms["dpor"], arms["dpor+state-cache"]
        )
        assert dpor["bugs"] == base["bugs"], f"{name}: DPOR changed the bug set"
        assert cached["bugs"] == base["bugs"], (
            f"{name}: state caching changed the bug set"
        )
        assert dpor["schedules"] <= REDUCTION_GATE * base["schedules"], (
            f"{name}: DPOR explored {dpor['schedules']} of "
            f"{base['schedules']} schedules (gate {REDUCTION_GATE}x)"
        )
        assert cached["schedules"] < dpor["schedules"], (
            f"{name}: the state cache did not prune beyond DPOR"
        )
        for mode in arms:  # JSON-encodable bug identities
            arms[mode]["bugs"] = [list(bug) for bug in arms[mode]["bugs"]]
        rows[name] = {
            "max_depth": depth,
            "max_steps": max_steps,
            "arms": arms,
            "dpor_ratio": round(dpor["schedules"] / base["schedules"], 3),
            "cache_ratio": round(cached["schedules"] / base["schedules"], 3),
        }

    _merge_trajectory("reduction", {
        "strategy": "dfs (exhaustive)",
        "gate": {"max_ratio": REDUCTION_GATE, "per_benchmark": True},
        "benchmarks": rows,
    })

    with capsys.disabled():
        print()
        for name, row in rows.items():
            arms = row["arms"]
            print(
                f"  {name:16s} none {arms['none']['schedules']:6d}"
                f"  dpor {arms['dpor']['schedules']:6d}"
                f" (x{row['dpor_ratio']:.3f})"
                f"  +cache {arms['dpor+state-cache']['schedules']:6d}"
                f" (x{row['cache_ratio']:.3f})"
            )


# ---------------------------------------------------------------------------
# Enabled-set A/B: incremental bookkeeping vs the O(#machines) seat walk
# ---------------------------------------------------------------------------
class _WalkRuntime(BugFindingRuntime):
    """The pre-incremental enabled-set computation: a full seat walk with
    dirty-bit memoization at every scheduling point.  The incremental
    bookkeeping stays consistent (``_enabled`` is resynced to the walk's
    verdict, pending wake-ups are consumed) so the idle-entry and halt
    removal paths behave exactly as they do on the real runtime."""

    def _schedulable(self):
        enabled = []
        append = enabled.append
        for worker in self._worker_list:
            state = worker.state
            if state is _RUNNING or state is _NEW:
                append(worker.mid)
            elif state is _IDLE:
                machine = worker.machine
                if machine._inbox_dirty:
                    machine._inbox_dirty = False
                    if not machine._idle_deliverable:
                        machine._idle_deliverable = machine._has_deliverable()
                if machine._idle_deliverable:
                    append(worker.mid)
        self._enabled[:] = enabled
        self._idle_pending.clear()
        return enabled


def _throughput(name, runtime_factory, trials=2):
    """Best-of-``trials`` #Sch/sec (best-of damps host noise)."""
    variant = get(name).buggy
    best = 0.0
    for _ in range(trials):
        report = drive(
            variant.main,
            variant.payload,
            RandomStrategy(seed=7),
            max_iterations=ITERATIONS,
            time_limit=120.0,
            max_steps=5_000,
            stop_on_first_bug=False,
            workers="inline",
            runtime_factory=runtime_factory,
        )
        assert report.iterations == ITERATIONS
        best = max(best, report.schedules_per_second)
    return best


def test_enabled_set_ab(capsys):
    """Incremental enabled set vs the seat walk on the high-machine-count
    protocols: record the ratio, gate only on not losing throughput."""
    rows = {}
    for name in ENABLED_SET_BENCHMARKS:
        walk = _throughput(name, _WalkRuntime)
        incremental = _throughput(name, None)
        rows[name] = {
            "walk_sch_per_sec": round(walk, 1),
            "incremental_sch_per_sec": round(incremental, 1),
            "speedup": round(incremental / walk, 2),
        }

    aggregate_walk = sum(r["walk_sch_per_sec"] for r in rows.values())
    aggregate_incremental = sum(
        r["incremental_sch_per_sec"] for r in rows.values()
    )
    _merge_trajectory("enabled_set_ab", {
        "strategy": "random(seed=7)",
        "iterations_per_benchmark": ITERATIONS,
        "benchmarks": rows,
        "aggregate": {
            "walk_sch_per_sec": round(aggregate_walk, 1),
            "incremental_sch_per_sec": round(aggregate_incremental, 1),
            "speedup": round(aggregate_incremental / aggregate_walk, 2),
        },
    })

    with capsys.disabled():
        print()
        for name, row in rows.items():
            print(
                f"  {name:16s} walk {row['walk_sch_per_sec']:8.1f}/s"
                f"  incremental {row['incremental_sch_per_sec']:8.1f}/s"
                f"  x{row['speedup']:.2f}"
            )

    assert aggregate_incremental >= ENABLED_SET_GATE * aggregate_walk, (
        f"incremental enabled set lost throughput: {rows}"
    )
