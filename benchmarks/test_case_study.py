"""Section 7.1 case study: the five AsyncSystem bugs.

"The process of porting to P#, and using our static analysis and testing
framework, revealed five bugs in the original AsyncSystem."  Our stand-in
seeds five bugs of the same flavours; the harness confirms the random
scheduler finds each, and that bug4 (the ownership race) is also caught
*statically* — the two-pronged detection the case study showcases.
"""

import pytest

from repro import RandomStrategy, TestingEngine
from repro.analysis.frontend import analyze_machines
from repro.bench.async_system import BUG_DRIVERS, BaseService

pytestmark = pytest.mark.bench


@pytest.mark.parametrize("bug", sorted(BUG_DRIVERS))
def test_bug_found_by_random_scheduler(benchmark, bug):
    driver, _service = BUG_DRIVERS[bug]

    def hunt():
        engine = TestingEngine(
            driver,
            strategy=RandomStrategy(seed=13),
            max_iterations=2_000,
            time_limit=60,
            stop_on_first_bug=True,
            max_steps=5_000,
        )
        return engine.run()

    report = benchmark.pedantic(hunt, rounds=1, iterations=1)
    assert report.bug_found, f"{bug} not found"


def test_bug4_also_caught_statically():
    driver, service = BUG_DRIVERS["bug4"]
    analysis = analyze_machines(
        [driver, service, BaseService], name="asyncsystem-bug4", xsa=True
    )
    assert not analysis.verified, "the live-snapshot race must be flagged"
