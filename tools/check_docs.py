#!/usr/bin/env python3
"""Keep the docs honest: link-check the markdown tree and execute the
shell examples.

Two checks, both run by the CI docs lane:

``--links``
    Every relative markdown link in ``README.md`` and ``docs/**/*.md``
    must point at a file that exists, and a ``#fragment`` must match a
    heading in the target file (GitHub slug rules).  Absolute URLs are
    ignored — this repo's CI has no network.

``--run-blocks``
    Every fenced ``sh`` code block in the given files (default:
    ``docs/cli.md``) is executed with ``bash -euo pipefail`` from the
    repo root and must exit 0 — documented commands cannot rot.

Exit code 0 when everything passes, 1 with one line per failure
otherwise.  No third-party dependencies.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

ROOT = Path(__file__).resolve().parents[1]

FENCE_RE = re.compile(r"^(```|~~~)")
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def doc_files() -> List[Path]:
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").rglob("*.md")))
    return [f for f in files if f.is_file()]


def strip_code(lines: Iterable[str]) -> List[str]:
    """Drop fenced blocks entirely and inline code spans per line, so
    example snippets never register as links or headings."""
    kept = []
    fence = None
    for line in lines:
        match = FENCE_RE.match(line.strip())
        if match:
            marker = match.group(1)
            if fence is None:
                fence = marker
            elif marker == fence:
                fence = None
            continue
        if fence is None:
            kept.append(re.sub(r"`[^`]*`", "``", line))
    return kept


def github_slug(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, drop everything but word
    characters / spaces / hyphens, spaces become hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def fenced_stripped(lines: Iterable[str]) -> List[str]:
    """Drop fenced blocks but keep inline code (headings slug its text)."""
    kept = []
    fence = None
    for line in lines:
        match = FENCE_RE.match(line.strip())
        if match:
            marker = match.group(1)
            if fence is None:
                fence = marker
            elif marker == fence:
                fence = None
            continue
        if fence is None:
            kept.append(line)
    return kept


def anchors_in(path: Path) -> set:
    slugs: dict = {}
    out = set()
    for line in fenced_stripped(path.read_text(encoding="utf-8").splitlines()):
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        # GitHub de-duplicates repeated headings with -1, -2, ...
        count = slugs.get(slug, 0)
        slugs[slug] = count + 1
        out.add(slug if count == 0 else f"{slug}-{count}")
    return out


def check_links() -> List[str]:
    errors = []
    for doc in doc_files():
        rel = doc.relative_to(ROOT)
        for line_no, line in enumerate(
            strip_code(doc.read_text(encoding="utf-8").splitlines()), start=1
        ):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if re.match(r"^[a-z][a-z0-9+.-]*:", target) or target.startswith(
                    "//"
                ):
                    continue  # absolute URL (https:, mailto:, ...)
                path_part, _, fragment = target.partition("#")
                if path_part:
                    resolved = (doc.parent / path_part).resolve()
                    if not resolved.exists():
                        errors.append(
                            f"{rel}:{line_no}: broken link {target!r} "
                            f"({path_part} does not exist)"
                        )
                        continue
                else:
                    resolved = doc
                if fragment:
                    if resolved.suffix != ".md":
                        continue
                    if fragment not in anchors_in(resolved):
                        errors.append(
                            f"{rel}:{line_no}: broken anchor {target!r} "
                            f"(no heading slugs to #{fragment} in "
                            f"{resolved.relative_to(ROOT)})"
                        )
    return errors


def shell_blocks(path: Path) -> List[Tuple[int, str]]:
    blocks = []
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block = False
    start = 0
    chunk: List[str] = []
    for line_no, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block and stripped in ("```sh", "```bash", "```shell"):
            in_block = True
            start = line_no
            chunk = []
        elif in_block and stripped == "```":
            in_block = False
            blocks.append((start, "\n".join(chunk)))
        elif in_block:
            chunk.append(line)
    return blocks


def run_blocks(paths: List[Path]) -> List[str]:
    errors = []
    for path in paths:
        rel = path.relative_to(ROOT)
        blocks = shell_blocks(path)
        if not blocks:
            errors.append(f"{rel}: no fenced sh blocks found (doc renamed?)")
            continue
        for line_no, script in blocks:
            print(f"-- {rel}:{line_no}", flush=True)
            proc = subprocess.run(
                ["bash", "-euo", "pipefail", "-c", script],
                cwd=ROOT,
                timeout=600,
            )
            if proc.returncode != 0:
                errors.append(
                    f"{rel}:{line_no}: block exited {proc.returncode}"
                )
    return errors


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--links", action="store_true", help="check intra-repo markdown links"
    )
    parser.add_argument(
        "--run-blocks",
        action="store_true",
        help="execute fenced sh blocks (default files: docs/cli.md)",
    )
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files for --run-blocks (default: docs/cli.md)",
    )
    args = parser.parse_args(argv)
    if not (args.links or args.run_blocks):
        parser.error("pass --links and/or --run-blocks")

    errors: List[str] = []
    if args.links:
        errors.extend(check_links())
    if args.run_blocks:
        files = [f.resolve() for f in args.files] or [ROOT / "docs" / "cli.md"]
        errors.extend(run_blocks(files))

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not errors:
        checked = []
        if args.links:
            checked.append(f"links in {len(doc_files())} file(s)")
        if args.run_blocks:
            checked.append("all sh blocks ran clean")
        print("docs ok: " + ", ".join(checked))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
