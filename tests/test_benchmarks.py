"""Integration tests over the benchmark suite: every correct variant runs
clean, every buggy variant's bug is findable, every racy variant is
flagged statically, and correct variants verify (possibly needing xSA or
the read-only extension, as Table 1 reports)."""

import pytest

from repro import RandomStrategy, TestingEngine
from repro.analysis.frontend import analyze_machines, lower_machines
from repro.bench import all_benchmarks, get

PSHARPBENCH = [
    "BoundedAsync",
    "German",
    "BasicPaxos",
    "TwoPhaseCommit",
    "Chord",
    "MultiPaxos",
    "Raft",
    "ChainReplication",
]
SOTER = ["Leader", "Pi", "Chameneos", "Swordfish"]


def run_random(main, iterations=30, seed=0, stop_on_first_bug=False, max_steps=5000):
    engine = TestingEngine(
        main,
        strategy=RandomStrategy(seed=seed),
        max_iterations=iterations,
        stop_on_first_bug=stop_on_first_bug,
        max_steps=max_steps,
        time_limit=120,
    )
    return engine.run()


class TestRegistry:
    def test_all_benchmarks_registered(self):
        names = {b.name for b in all_benchmarks()}
        for expected in PSHARPBENCH + SOTER + ["AsyncSystem"]:
            assert expected in names

    def test_statistics_available(self):
        for benchmark in all_benchmarks():
            stats = benchmark.statistics()
            assert stats["machines"] >= 2
            assert stats["transitions"] + stats["action_bindings"] > 0
            assert benchmark.loc() > 30


@pytest.mark.parametrize("name", PSHARPBENCH + SOTER)
def test_correct_variant_runs_clean(name):
    benchmark = get(name)
    report = run_random(benchmark.correct.main, iterations=25, seed=11)
    assert not report.bug_found, str(report.first_bug)
    assert report.iterations == 25


@pytest.mark.parametrize("name", PSHARPBENCH)
def test_buggy_variant_bug_found_by_random(name):
    benchmark = get(name)
    assert benchmark.buggy is not None
    report = run_random(
        benchmark.buggy.main, iterations=2000, seed=7, stop_on_first_bug=True
    )
    assert report.bug_found, f"no bug found in {name} after {report.iterations} schedules"


@pytest.mark.parametrize("name", PSHARPBENCH + SOTER)
def test_correct_variant_lowers(name):
    benchmark = get(name)
    program = lower_machines(
        benchmark.correct.machines, benchmark.correct.helpers, name=name
    )
    assert program.machines


@pytest.mark.parametrize("name", PSHARPBENCH)
def test_racy_variant_flagged_statically(name):
    benchmark = get(name)
    assert benchmark.racy is not None
    analysis = analyze_machines(
        benchmark.racy.machines,
        benchmark.racy.helpers,
        name=f"{name}-racy",
        xsa=True,
    )
    assert not analysis.verified, f"seeded race in {name} was missed"


@pytest.mark.parametrize("name", PSHARPBENCH + SOTER)
def test_correct_variant_verified_with_extensions(name):
    benchmark = get(name)
    analysis = analyze_machines(
        benchmark.correct.machines,
        benchmark.correct.helpers,
        name=name,
        xsa=True,
        readonly=True,
    )
    assert analysis.verified, [
        str(d) for d in analysis.to_report().diagnostics if d.suppressed_by is None
    ]


def test_german_livelock_detected_by_depth_bound():
    from repro.bench.german import LivelockHost

    engine = TestingEngine(
        LivelockHost,
        strategy=RandomStrategy(seed=3),
        max_iterations=50,
        stop_on_first_bug=True,
        max_steps=2000,
        livelock_as_bug=True,
    )
    report = engine.run()
    assert report.bug_found
    assert report.first_bug.kind == "liveness"


def test_async_system_five_bugs():
    from repro.bench.async_system import BUG_DRIVERS

    found = {}
    for bug, (driver, _service) in BUG_DRIVERS.items():
        report = run_random(driver, iterations=800, seed=13, stop_on_first_bug=True)
        found[bug] = report.bug_found
    assert sum(found.values()) >= 4, found
