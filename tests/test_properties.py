"""Property-based tests (hypothesis) on the core invariants.

The headline property is Theorem 5.1: if the static analysis says a
program is race-free, no dynamically explored schedule may exhibit a race.
We check it on randomly generated machine bodies built from the paper's
statement forms.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import DfsStrategy, RandomStrategy, ReplayStrategy, ScheduleTrace
from repro.analysis import analyze_program
from repro.analysis.frontend import ftjoin
from repro.lang import explore, parse_program
from repro.lang.interp import _VectorClock
from repro.testing import BugFindingRuntime

from .machines import Ping, RacyCounter

# ---------------------------------------------------------------------------
# Replay determinism
# ---------------------------------------------------------------------------
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**30))
def test_replay_reproduces_any_schedule(seed):
    strategy = RandomStrategy(seed=seed)
    strategy.prepare_iteration()
    runtime = BugFindingRuntime(strategy)
    original = runtime.execute(RacyCounter)

    replay_strategy = ReplayStrategy(original.trace)
    replay_strategy.prepare_iteration()
    replay_runtime = BugFindingRuntime(replay_strategy)
    replayed = replay_runtime.execute(RacyCounter)

    assert replayed.status == original.status
    assert replayed.steps == original.steps
    assert (replayed.bug is None) == (original.bug is None)
    assert not replay_strategy.diverged


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**30))
def test_seeded_random_strategy_is_deterministic(seed):
    def run():
        strategy = RandomStrategy(seed=seed)
        strategy.prepare_iteration()
        return BugFindingRuntime(strategy).execute(Ping)

    a, b = run(), run()
    assert a.trace.decisions == b.trace.decisions


# ---------------------------------------------------------------------------
# DFS enumerates distinct schedules
# ---------------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(arity=st.integers(min_value=2, max_value=4), depth=st.integers(min_value=1, max_value=4))
def test_dfs_enumerates_all_leaves_exactly_once(arity, depth):
    dfs = DfsStrategy()
    leaves = []
    while dfs.prepare_iteration():
        leaves.append(tuple(dfs.pick_int(arity) for _ in range(depth)))
    assert len(leaves) == arity ** depth
    assert len(set(leaves)) == len(leaves)


# ---------------------------------------------------------------------------
# Traces round-trip through JSON
# ---------------------------------------------------------------------------
decision = st.tuples(
    st.sampled_from(["sched", "bool", "int"]), st.integers(min_value=0, max_value=50)
)


@settings(max_examples=50, deadline=None)
@given(decisions=st.lists(decision, max_size=30))
def test_trace_json_roundtrip(decisions):
    trace = ScheduleTrace([tuple(d) for d in decisions])
    assert ScheduleTrace.from_json(trace.to_json()).decisions == trace.decisions


# ---------------------------------------------------------------------------
# Vector clocks form the expected partial order
# ---------------------------------------------------------------------------
clock_dict = st.dictionaries(
    st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=6),
    max_size=4,
)


@settings(max_examples=60, deadline=None)
@given(a=clock_dict, b=clock_dict)
def test_vector_clock_join_is_upper_bound(a, b):
    va, vb = _VectorClock(dict(a)), _VectorClock(dict(b))
    joined = va.copy()
    joined.join(vb)
    assert va.happens_before(joined)
    assert vb.happens_before(joined)


@settings(max_examples=60, deadline=None)
@given(a=clock_dict)
def test_happens_before_reflexive(a):
    va = _VectorClock(dict(a))
    assert va.happens_before(va)


# ---------------------------------------------------------------------------
# ftype join is idempotent and commutative
# ---------------------------------------------------------------------------
base_ft = st.sampled_from(["int", "machine", "object", "none", "bool"])
ftype = st.recursive(
    base_ft,
    lambda inner: st.one_of(
        st.tuples(st.sampled_from(["list", "set", "dict"]), inner),
        st.builds(lambda parts: ("tuple", tuple(parts)), st.lists(inner, max_size=3)),
    ),
    max_leaves=5,
)


@settings(max_examples=100, deadline=None)
@given(a=ftype)
def test_ftjoin_idempotent(a):
    assert ftjoin(a, a) == a


@settings(max_examples=100, deadline=None)
@given(a=ftype, b=ftype)
def test_ftjoin_commutative_on_scalarness(a, b):
    from repro.analysis.frontend import is_scalar_ft

    left = ftjoin(a, b)
    right = ftjoin(b, a)
    # Joins agree at least on whether the result can reach the heap.
    assert is_scalar_ft(left) == is_scalar_ft(right)


# ---------------------------------------------------------------------------
# Theorem 5.1 on generated programs: verified => dynamically race-free
# ---------------------------------------------------------------------------
_OPS = [
    "e := new elem;",
    "f := new elem;",
    "e.set_val(1);",
    "f.set_next(e);",
    "e := f;",
    "this.slot := e;",
    "e := this.slot;",
    "send peer eItem(e);",
    "this.slot := null;",
]


def _build_program(op_indices):
    body = "\n            ".join(_OPS[i] for i in op_indices)
    return parse_program(
        """
    class elem {
        int val;
        elem next;
        void set_val(int v) { this.val := v; }
        void set_next(elem n) { this.next := n; }
        int get_val() { int ret; ret := this.val; return ret; }
    }
    machine producer {
        elem slot;
        void init() {
            elem e;
            elem f;
            machine peer;
            e := new elem;
            f := new elem;
            peer := create consumer();
            %s
        }
        transitions { init: eNever -> init; }
    }
    machine consumer {
        void start() { }
        void take(elem payload) {
            payload.set_val(2);
        }
        transitions { start: eItem -> take; take: eItem -> take; }
    }
    """
        % body
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    op_indices=st.lists(
        st.integers(min_value=0, max_value=len(_OPS) - 1), min_size=1, max_size=7
    )
)
def test_theorem_5_1_verified_implies_race_free(op_indices):
    program = _build_program(op_indices)
    analysis = analyze_program(program, xsa=True)
    if analysis.verified:
        result = explore(
            program, instances=["producer"], max_schedules=400, max_steps=400
        )
        assert result.race_free, (
            f"UNSOUND: verified but dynamic race found: "
            f"{[str(r) for r in result.races[:2]]} ops={op_indices}"
        )
