"""Tests for the single-thread continuation back-end (``workers="inline"``).

Cross-backend trace parity lives in ``test_runtime_reuse.py``; this file
covers what is specific to the inline runtime: the handler-to-coroutine
compiler (helper chains, closures, keyword arguments, failure modes),
cancellation unwind semantics (user ``try/finally`` blocks), and the
engine / portfolio / replay integrations.
"""

import pytest

from repro import (
    BugFindingRuntime,
    Event,
    FairRandomStrategy,
    Machine,
    PortfolioEngine,
    RandomStrategy,
    State,
    StrategySpec,
    TestingEngine,
    replay,
)
from repro.bench import get
from repro.core.continuations import (
    InlineCompileError,
    compile_inline_machine,
)
from repro.testing.engine import drive

from .machines import NondetBug, Ping, RacyCounter


class EKick(Event):
    pass


class EReply(Event):
    pass


class EStop(Event):
    pass


# ---------------------------------------------------------------------------
# The handler-to-coroutine compiler
# ---------------------------------------------------------------------------
class HelperChain(Machine):
    """Scheduling primitives reached only through a chain of helper
    methods: the transitive-closure analysis must reshape every link."""

    class Init(State):
        initial = True
        entry = "boot"
        actions = {EReply: "on_reply"}

    def boot(self):
        self.replies = 0
        self.fan_out(2)

    def fan_out(self, count):
        for _ in range(count):
            self.ping_child()

    def ping_child(self):
        child = self.create_machine(Echo, self.id)
        self.send(child, EKick(self.id))

    def on_reply(self):
        self.replies += 1
        if self.replies == 2:
            self.halt()


class Echo(Machine):
    class Init(State):
        initial = True
        actions = {EKick: "on_kick"}

    def on_kick(self):
        # Keyword arguments on primitives must normalize too.
        self.send(event=EReply(self.id), target=self.payload)
        self.halt()


def _run_inline(main_cls, seed=1, max_steps=2_000, iterations=1):
    strategy = RandomStrategy(seed=seed)
    runtime = BugFindingRuntime(strategy, max_steps=max_steps, workers="inline")
    result = None
    for _ in range(iterations):
        strategy.prepare_iteration()
        result = runtime.execute(main_cls)
    return result


class TestCoroutineCompiler:
    def test_helper_chain_and_keyword_primitives(self):
        result = _run_inline(HelperChain)
        assert result.status == "ok", result.bug
        # The same program produces the same trace on the pooled backend.
        strategy = RandomStrategy(seed=1)
        strategy.prepare_iteration()
        pooled = BugFindingRuntime(strategy, workers="pool").execute(HelperChain)
        assert pooled.trace.fingerprint() == result.trace.fingerprint()

    def test_closure_handlers_compile(self):
        # Machines declared inside a function close over local names; the
        # compiler must rebind those cells in the reshaped coroutine.
        log = []

        class ELocal(Event):
            pass

        class Closer(Machine):
            class Init(State):
                initial = True
                entry = "go"
                actions = {ELocal: "noted"}

            def go(self):
                log.append("sent")
                self.send(self.id, ELocal())

            def noted(self):
                log.append("noted")
                self.halt()

        result = _run_inline(Closer)
        assert result.status == "ok", result.bug
        assert log == ["sent", "noted"]

    def test_compile_is_per_class_and_idempotent(self):
        compile_inline_machine(HelperChain)
        first = HelperChain._inline__boot
        compile_inline_machine(HelperChain)
        assert HelperChain._inline__boot is first
        # Subclasses compile separately (most-derived resolution).
        assert "_inline_ready" not in Echo.__dict__ or Echo is not HelperChain

    def test_send_inside_lambda_is_rejected(self):
        class Lambdaist(Machine):
            class Init(State):
                initial = True
                entry = "go"

            def go(self):
                fire = lambda: self.send(self.id, EKick())  # noqa: E731
                fire()

        with pytest.raises(InlineCompileError, match="lambda"):
            compile_inline_machine(Lambdaist)

    def test_generator_handler_is_rejected(self):
        class Generatorist(Machine):
            class Init(State):
                initial = True
                entry = "go"

            def go(self):
                self.send(self.id, EKick())
                yield  # pragma: no cover - never driven

        with pytest.raises(InlineCompileError, match="generator"):
            compile_inline_machine(Generatorist)

    def test_starred_primitive_arguments_are_rejected(self):
        class Splatter(Machine):
            class Init(State):
                initial = True
                entry = "go"

            def go(self):
                args = (self.id, EKick())
                self.send(*args)

        with pytest.raises(InlineCompileError, match="args"):
            compile_inline_machine(Splatter)

    def test_closure_cells_stay_live_after_compilation(self):
        # The compiled coroutine must share the original closure cells:
        # a free variable rebound after the first inline execution is
        # seen by later executions, exactly as the threaded backends see
        # it through the plain method.
        limit_box = {}

        def make_machine(limit):
            class Counter(Machine):
                class Init(State):
                    initial = True
                    entry = "go"

                def go(self):
                    for _ in range(limit):
                        self.send(self.id, EKick())
                    limit_box["seen"] = limit
                    self.halt()

            def rebind(new):
                nonlocal limit
                limit = new

            return Counter, rebind

        Counter, rebind = make_machine(1)
        first = _run_inline(Counter)
        assert first.status == "ok" and limit_box["seen"] == 1
        rebind(3)
        second = _run_inline(Counter)
        assert second.status == "ok" and limit_box["seen"] == 3

    def test_uncompilable_class_created_mid_execution_is_a_hard_error(self):
        # A compile failure for a machine created *during* an inline
        # execution must surface as InlineCompileError from execute(),
        # not be misreported as a bug in the program under test.
        class BadChild(Machine):
            class Init(State):
                initial = True
                entry = "go"

            def go(self):
                burst = lambda: self.send(self.id, EKick())  # noqa: E731
                burst()

        class Parent(Machine):
            class Init(State):
                initial = True
                entry = "go"

            def go(self):
                self.create_machine(BadChild)

        strategy = RandomStrategy(seed=0)
        runtime = BugFindingRuntime(strategy, workers="inline")
        strategy.prepare_iteration()
        with pytest.raises(InlineCompileError, match="lambda"):
            runtime.execute(Parent)
        # The failed execution was unwound; the runtime is reusable.
        strategy.prepare_iteration()
        assert runtime.execute(Ping).status == "ok"

    def test_plain_handlers_pay_no_reshaping(self):
        compile_inline_machine(NondetBug)
        # nondet never transfers control, so NondetBug has no coroutines.
        assert not any(
            name.startswith("_inline__") for name in vars(NondetBug)
        )
        result = _run_inline(NondetBug, seed=2, iterations=20)
        assert result is not None


# ---------------------------------------------------------------------------
# Cancellation / unwind semantics
# ---------------------------------------------------------------------------
class TestInlineUnwind:
    def test_finally_blocks_run_when_execution_is_cut_short(self):
        log = []

        class EGo(Event):
            pass

        class Careful(Machine):
            class Init(State):
                initial = True
                entry = "go"
                actions = {EGo: "spin"}

            def go(self):
                self.send(self.id, EGo())

            def spin(self):
                try:
                    self.send(self.id, EGo())
                finally:
                    log.append("unwound")

        strategy = RandomStrategy(seed=0)
        runtime = BugFindingRuntime(strategy, max_steps=30, workers="inline")
        strategy.prepare_iteration()
        result = runtime.execute(Careful)
        assert result.status == "depth-bound"
        # The machine suspended inside its try block was unwound with
        # ExecutionCanceled, running the finally — the same shape the
        # threaded back-ends produce when cancellation wakes workers.
        assert "unwound" in log

    def test_assertion_inside_helper_reports_the_machine(self):
        class Fused(Machine):
            class Init(State):
                initial = True
                entry = "go"

            def go(self):
                self.detonate()

            def detonate(self):
                self.send(self.id, EKick())
                self.assert_that(False, "boom")

        result = _run_inline(Fused)
        assert result.buggy
        assert result.bug.kind == "assertion-failure"
        assert "boom" in result.bug.message


# ---------------------------------------------------------------------------
# Integrations
# ---------------------------------------------------------------------------
class TestInlineIntegrations:
    def test_engine_drive_with_inline_backend(self):
        report = drive(
            RacyCounter, None, RandomStrategy(seed=3),
            max_iterations=500, time_limit=60.0, max_steps=2_000,
            workers="inline",
        )
        assert report.bug_found
        replayed = replay(RacyCounter, report.first_bug.trace, workers="inline")
        assert replayed.buggy

    def test_testing_engine_accepts_inline(self):
        engine = TestingEngine(
            Ping, strategy=RandomStrategy(seed=9), max_iterations=5,
            time_limit=30, workers="inline", stop_on_first_bug=False,
        )
        report = engine.run()
        assert report.iterations == 5
        assert not report.bug_found

    def test_portfolio_with_inline_runtime_workers(self):
        engine = PortfolioEngine(
            RacyCounter,
            specs=[StrategySpec("random", {"seed": 3})],
            max_iterations=500,
            time_limit=60,
            max_steps=2_000,
            runtime_workers="inline",
        )
        report = engine.run()
        assert report.first_bug is not None
        replayed = engine.replay_winner(report)
        assert replayed is not None and replayed.buggy

    def test_liveness_temperature_fires_inline_and_replays(self):
        bench = get("TokenRing")
        report = drive(
            bench.buggy.main, None, FairRandomStrategy(seed=3),
            max_iterations=50, time_limit=60.0, max_steps=5_000,
            workers="inline", monitors=bench.buggy.monitors,
            max_hot_steps=150,
        )
        assert report.bug_found
        assert report.first_bug.kind == "liveness"
        replayed = replay(
            bench.buggy.main, report.first_bug.trace, workers="inline",
            monitors=bench.buggy.monitors, max_hot_steps=150,
            max_steps=5_000,
        )
        assert replayed.buggy
        assert replayed.bug.kind == "liveness"

    def test_chess_runtime_rejects_inline(self):
        from repro.chess import ChessRuntime

        with pytest.raises(ValueError, match="inline"):
            ChessRuntime(RandomStrategy(seed=0), workers="inline")
