"""Tests for the distributed campaign fleet (:mod:`repro.testing.fleet`).

The wire format under test is specified normatively in docs/protocol.md;
the section references below (§2 framing, §3 handshake, §5 work
lifecycle, §6 failure handling, §7 checkpointing) point there.

The acceptance property: a campaign sharded over ≥2 worker processes via
``serve``/``submit`` merges to the same distinct-bug fingerprint set as
a single-process ``Campaign.portfolio()`` of the same config + seed —
and killing a worker mid-campaign changes neither completion nor that
set (the shard is re-queued, §6).
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import Campaign, PSharpError, StrategySpec, TestConfig
from repro.testing.checkpoint import load_checkpoint, save_checkpoint
from repro.testing.fleet import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    Connection,
    ConnectionClosed,
    ProtocolError,
    _encode_frame,
    run_fleet,
)

ROOT = Path(__file__).resolve().parents[1]

#: Explicitly seeded shards: the fleet and the local portfolio must
#: explore *identical* schedules, so nothing may draw a fresh seed.
FOUR_SHARDS = (
    StrategySpec("random", {"seed": 1}),
    StrategySpec("random", {"seed": 2}),
    StrategySpec("pct", {"depth": 10, "seed": 3}),
    StrategySpec("delay-bounding", {"delays": 2, "seed": 4}),
)


def fleet_config(**overrides):
    """A deterministic run-to-completion campaign: every shard burns its
    full iteration budget (stop_on_first_bug off), so merged totals and
    fingerprint sets are exactly reproducible."""
    defaults = dict(
        program="BoundedAsync",
        specs=FOUR_SHARDS,
        max_iterations=60,
        time_limit=120.0,
        stop_on_first_bug=False,
    )
    defaults.update(overrides)
    return TestConfig(**defaults)


def fingerprints(report):
    return {
        bug.trace.fingerprint() for bug in report.bugs if bug.trace is not None
    }


def start_fleet(config, **kwargs):
    """Run the coordinator on a thread; returns (thread, result box)."""
    box = {}

    def target():
        try:
            box["report"] = run_fleet(config, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - surfaced by the test
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


def finish_fleet(thread, box, timeout=90.0):
    thread.join(timeout=timeout)
    assert not thread.is_alive(), "coordinator did not finish in time"
    if "error" in box:
        raise box["error"]
    return box["report"]


def wait_for(predicate, timeout=20.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise AssertionError(f"{message} not met within {timeout}s")


def read_events(path):
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


def spawn_tcp_worker(port):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--host", "127.0.0.1", "--port", str(port),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        cwd=ROOT,
    )


# ---------------------------------------------------------------------------
# Framing (protocol.md §2)
# ---------------------------------------------------------------------------
def socket_pair():
    left, right = socket.socketpair()
    return (
        Connection.from_socket(left, label="left"),
        Connection.from_socket(right, label="right"),
        right,
    )


class TestFraming:
    def test_round_trip_preserves_message(self):
        a, b, _ = socket_pair()
        a.send({"type": "work", "shard": 3, "spec": {"name": "random"}})
        message = b.recv(timeout=5.0)
        assert message == {"type": "work", "shard": 3, "spec": {"name": "random"}}
        a.close(), b.close()

    def test_partial_frames_reassemble(self):
        # §2: a frame split across arbitrary write boundaries must
        # reassemble; bytes after it belong to the next frame.
        a, b, right_sock = socket_pair()
        frame = _encode_frame({"type": "heartbeat", "shard": 1})
        right_sock.sendall(frame[:3])
        assert a.poll() is None  # incomplete: not a message yet
        right_sock.sendall(frame[3:] + _encode_frame({"type": "goodbye"}))
        assert a.recv(timeout=5.0) == {"type": "heartbeat", "shard": 1}
        assert a.recv(timeout=5.0) == {"type": "goodbye"}
        a.close(), b.close()

    def test_oversized_frame_is_protocol_error_not_allocation(self):
        # §2: the length prefix is validated before any allocation.
        a, b, right_sock = socket_pair()
        right_sock.sendall(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            a.recv(timeout=5.0)
        a.close(), b.close()

    def test_garbage_payload_is_protocol_error(self):
        a, b, right_sock = socket_pair()
        payload = b"\xff\xfenot json"
        right_sock.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="undecodable"):
            a.recv(timeout=5.0)
        a.close(), b.close()

    def test_untyped_message_is_protocol_error(self):
        # §2: every frame is a JSON object with a string "type".
        a, b, right_sock = socket_pair()
        payload = json.dumps([1, 2, 3]).encode()
        right_sock.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="typed message"):
            a.recv(timeout=5.0)
        a.close(), b.close()

    def test_eof_raises_connection_closed(self):
        a, b, _ = socket_pair()
        b.close()
        with pytest.raises(ConnectionClosed):
            a.recv(timeout=5.0)
        a.close()

    def test_recv_timeout_returns_none(self):
        a, b, _ = socket_pair()
        start = time.monotonic()
        assert a.recv(timeout=0.1) is None
        assert time.monotonic() - start < 2.0
        a.close(), b.close()


# ---------------------------------------------------------------------------
# Transport parity + the acceptance property
# ---------------------------------------------------------------------------
class TestFleetMatchesPortfolio:
    def test_stdio_fleet_equals_local_portfolio(self):
        config = fleet_config()
        fleet = run_fleet(config, local_workers=2)
        local = Campaign(config).portfolio()
        assert fleet.iterations == local.iterations
        assert fingerprints(fleet) == fingerprints(local)
        assert len(fleet.sub_reports) == len(FOUR_SHARDS)
        assert fleet.strategy == "fleet"

    def test_socket_fleet_equals_stdio_fleet(self):
        # The same campaign over both transports merges identically —
        # the framing layer is the only thing that differs (§2).
        config = fleet_config()
        ports = []
        thread, box = start_fleet(
            config, port=0, on_listen=lambda host, port: ports.append(port)
        )
        wait_for(lambda: ports, message="listener bound")
        workers = [spawn_tcp_worker(ports[0]) for _ in range(2)]
        try:
            socket_report = finish_fleet(thread, box)
        finally:
            for proc in workers:
                proc.communicate(timeout=30)
        stdio_report = run_fleet(config, local_workers=2)
        assert fingerprints(socket_report) == fingerprints(stdio_report)
        assert socket_report.iterations == stdio_report.iterations
        assert all(proc.returncode == 0 for proc in workers)

    def test_first_bug_wins_cancels_fleet(self):
        # stop_on_first_bug on: the campaign ends early with a winner
        # and the merged first_bug is the winning shard's.
        config = fleet_config(stop_on_first_bug=True, max_iterations=5_000)
        report = run_fleet(config, local_workers=2)
        assert report.bug_found
        assert report.first_bug is not None


class TestFleetFailureModes:
    def test_worker_killed_mid_shard_requeues_and_completes(self, tmp_path):
        # §6: a lost worker's shard is re-queued and re-run from
        # scratch, so the campaign completes with the full merged
        # report — same totals, same fingerprint set — as if nothing
        # had died.
        events_path = tmp_path / "fleet.events.jsonl"
        config = fleet_config(
            max_iterations=4_000, events_path=str(events_path)
        )
        ports = []
        thread, box = start_fleet(
            config, port=0, on_listen=lambda host, port: ports.append(port)
        )
        wait_for(lambda: ports, message="listener bound")
        workers = [spawn_tcp_worker(ports[0]) for _ in range(2)]

        def two_assigned():
            assigned = [
                event for event in read_events(events_path)
                if event["type"] == "fleet_work_assigned"
            ]
            return len(assigned) >= 2

        wait_for(two_assigned, message="two shards assigned")
        time.sleep(0.2)  # let the victim get into the middle of a shard
        workers[0].kill()
        try:
            report = finish_fleet(thread, box)
        finally:
            for proc in workers:
                proc.kill()
                proc.communicate(timeout=30)

        local = Campaign(fleet_config(max_iterations=4_000)).portfolio()
        assert report.iterations == local.iterations
        assert fingerprints(report) == fingerprints(local)
        types = {event["type"] for event in read_events(events_path)}
        assert "fleet_worker_lost" in types
        assert "fleet_shard_requeued" in types

    def test_version_mismatch_is_rejected_with_error_frame(self):
        # §3: a hello announcing a foreign protocol version gets an
        # error frame and a closed connection; the campaign is
        # unaffected.
        config = fleet_config(max_iterations=20)
        ports = []
        thread, box = start_fleet(
            config,
            port=0,
            local_workers=1,
            on_listen=lambda host, port: ports.append(port),
        )
        wait_for(lambda: ports, message="listener bound")
        sock = socket.create_connection(("127.0.0.1", ports[0]), timeout=5.0)
        imposter = Connection.from_socket(sock, label="imposter")
        imposter.send({"type": "hello", "protocol": 999, "pid": os.getpid()})
        reply = imposter.recv(timeout=10.0)
        assert reply["type"] == "error"
        assert "protocol version" in reply["message"]
        with pytest.raises(ConnectionClosed):
            while True:
                imposter.recv(timeout=10.0)
        imposter.close()
        report = finish_fleet(thread, box)
        assert report.iterations == 20 * len(FOUR_SHARDS)

    def test_garbage_client_does_not_kill_campaign(self):
        # §6: an undecodable frame drops that connection, nothing else.
        config = fleet_config(max_iterations=20)
        ports = []
        thread, box = start_fleet(
            config,
            port=0,
            local_workers=1,
            on_listen=lambda host, port: ports.append(port),
        )
        wait_for(lambda: ports, message="listener bound")
        sock = socket.create_connection(("127.0.0.1", ports[0]), timeout=5.0)
        sock.sendall(b"\x00\x00\x00\x04spam")
        report = finish_fleet(thread, box)
        sock.close()
        assert report.iterations == 20 * len(FOUR_SHARDS)

    def test_fleet_without_worker_sources_is_rejected(self):
        with pytest.raises(PSharpError, match="worker source"):
            run_fleet(fleet_config())


class TestFleetCheckpoint:
    def test_resume_skips_checkpointed_shards(self, tmp_path):
        # §7: completed shards persist as they land; a resumed campaign
        # re-runs only the rest.  The sentinel iteration count proves
        # shard 0's report was loaded, not re-computed.
        config = fleet_config()
        ckpt = tmp_path / "fleet.ckpt"
        report = run_fleet(config, local_workers=2, checkpoint=str(ckpt))
        full_fingerprints = fingerprints(report)
        state = load_checkpoint(ckpt)
        assert sorted(state["completed"]) == [0, 1, 2, 3]

        state["completed"][0].iterations = 123_456  # sentinel
        del state["completed"][2]
        save_checkpoint(
            ckpt,
            fingerprint=state["fingerprint"],
            specs=state["specs"],
            completed=state["completed"],
        )

        events_path = tmp_path / "resume.events.jsonl"
        resumed = run_fleet(
            config.with_overrides(events_path=str(events_path)),
            local_workers=2,
            resume=str(ckpt),
        )
        # Shard 0 was not re-run (sentinel survived); shard 2 was.
        assert resumed.sub_reports[0].iterations == 123_456
        assert resumed.sub_reports[2].iterations == config.max_iterations
        assigned = [
            event["shard"] for event in read_events(events_path)
            if event["type"] == "fleet_work_assigned"
        ]
        assert 0 not in assigned and 1 not in assigned and 3 not in assigned
        assert 2 in assigned
        assert fingerprints(resumed) == full_fingerprints

    def test_resume_refuses_foreign_checkpoint(self, tmp_path):
        ckpt = tmp_path / "fleet.ckpt"
        run_fleet(fleet_config(), local_workers=1, checkpoint=str(ckpt))
        other = fleet_config(max_iterations=999)
        with pytest.raises(PSharpError, match="different campaign"):
            run_fleet(other, local_workers=1, resume=str(ckpt))


def run_cli_process(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=ROOT,
    )


class TestFleetCli:
    def test_serve_submit_round_trip(self, tmp_path):
        campaign_file = tmp_path / "campaign.json"
        fleet_config().save(campaign_file)
        serve = run_cli_process(
            "serve", "--config", str(campaign_file), "--port", "0",
            "--expect-bug",
        )
        try:
            banner = serve.stdout.readline()
            assert banner.startswith("fleet: listening on "), banner
            port = int(banner.rsplit(":", 1)[1])
            submit = run_cli_process(
                "submit", "--host", "127.0.0.1", "--port", str(port),
                "--workers", "2",
            )
            _, submit_err = submit.communicate(timeout=90)
            stdout, stderr = serve.communicate(timeout=90)
        finally:
            if serve.poll() is None:
                serve.kill()
                serve.communicate()
        assert submit.returncode == 0, submit_err
        assert "2/2 worker(s) completed cleanly" in submit_err
        assert serve.returncode == 0, stdout + stderr
        assert "bug:" in stdout

    def test_serve_sigint_checkpoints_and_exits_130(self, tmp_path):
        # §7: SIGINT flushes a checkpoint and exits with the
        # conventional 128+SIGINT code, like the local portfolio CLI.
        campaign_file = tmp_path / "campaign.json"
        ckpt = tmp_path / "fleet.ckpt"
        TestConfig(
            program="tests.machines:Ping",
            specs=(
                StrategySpec("random", {"seed": 1}),
                StrategySpec("random", {"seed": 2}),
            ),
            max_iterations=10_000_000,
            time_limit=60.0,
            stop_on_first_bug=False,
        ).save(campaign_file)
        serve = run_cli_process(
            "serve", "--config", str(campaign_file),
            "--workers", "2", "--checkpoint", str(ckpt),
        )
        try:
            time.sleep(3.0)  # let the workers spin up mid-shard
            serve.send_signal(signal.SIGINT)
            stdout, stderr = serve.communicate(timeout=30)
        finally:
            if serve.poll() is None:
                serve.kill()
                serve.communicate()
        assert serve.returncode == 130, stdout + stderr
        assert "campaign interrupted (partial results)" in stdout
        state = load_checkpoint(ckpt)
        assert state["fingerprint"]

    def test_worker_requires_exactly_one_transport(self):
        proc = run_cli_process("worker")
        _, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 2
        assert "exactly one of --stdio or --host" in stderr

    def test_serve_requires_a_worker_source(self, tmp_path):
        campaign_file = tmp_path / "campaign.json"
        fleet_config().save(campaign_file)
        proc = run_cli_process("serve", "--config", str(campaign_file))
        _, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 2
        assert "worker source" in stderr
