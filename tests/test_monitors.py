"""Tests for the specification-monitor subsystem: hot/cold liveness
monitors, temperature-based livelock detection under fair schedules,
safety monitors mirrored at scheduling points, and the determinism
contracts (monitors never perturb strategy decisions; pooled and spawned
back-ends produce bit-identical traces with monitors attached — the
back-end contract of tests/test_runtime_reuse.py extended to monitors)."""

import pytest

from repro import (
    BugFindingRuntime,
    DfsStrategy,
    EMachineHalted,
    Event,
    FairRandomStrategy,
    LivenessError,
    Machine,
    MachineDeclarationError,
    MachineId,
    Monitor,
    MonitorError,
    PctStrategy,
    PortfolioEngine,
    PSharpError,
    RandomStrategy,
    ReplayStrategy,
    ScheduleTrace,
    State,
    StrategySpec,
    TestingEngine,
    cold,
    hot,
    replay,
)
from repro.bench import get
from repro.testing import strategy_names
from repro.testing.monitors import has_hot_states

from .machines import Ping, SelfLoop


class EReq(Event):
    pass


class EGrant(Event):
    pass


class ESpin(Event):
    pass


class ProgressMonitor(Monitor):
    """Hot while a request is outstanding, cold once granted."""

    observes = (EReq, EGrant)

    @cold
    class Satisfied(State):
        initial = True
        transitions = {EReq: "Starved"}
        ignored = (EGrant,)

    @hot
    class Starved(State):
        transitions = {EGrant: "Satisfied"}
        ignored = (EReq,)


class Spinner(Machine):
    """Requests, then spins forever without granting: a pure livelock."""

    class Init(State):
        initial = True
        entry = "go"
        actions = {ESpin: "again"}
        ignored = (EReq,)

    def go(self):
        self.send(self.id, EReq())
        self.send(self.id, ESpin())

    def again(self):
        self.send(self.id, ESpin())


class ForgetfulServer(Machine):
    """Requests and terminates without ever granting: hot at termination."""

    class Init(State):
        initial = True
        entry = "go"
        ignored = (EReq,)

    def go(self):
        self.send(self.id, EReq())
        self.halt()


def _run_once(main_cls, strategy, **kwargs):
    strategy.prepare_iteration()
    return BugFindingRuntime(strategy, **kwargs).execute(main_cls)


class TestMonitorDeclarations:
    def test_hot_cold_markers_set_temperature(self):
        infos = ProgressMonitor._state_infos
        assert infos["Starved"].temperature == "hot"
        assert infos["Satisfied"].temperature == "cold"
        assert has_hot_states(ProgressMonitor)

    def test_safety_only_monitor_has_no_hot_states(self):
        raft = get("Raft")
        assert not has_hot_states(raft.buggy.monitors[0])

    def test_monitors_cannot_defer(self):
        with pytest.raises(MachineDeclarationError, match="defer"):

            class Deferring(Monitor):
                class Init(State):
                    initial = True
                    deferred = (EReq,)

    def test_monitors_are_passive(self):
        strategy = RandomStrategy(seed=0)
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy, monitors=[ProgressMonitor])
        runtime.execute(Ping)
        instance = runtime._monitors[0]
        with pytest.raises(PSharpError, match="passive"):
            instance.send(None, EReq())
        with pytest.raises(PSharpError, match="passive"):
            instance.create_machine(Ping)
        with pytest.raises(PSharpError, match="deterministic"):
            instance.nondet()

    def test_non_monitor_class_rejected(self):
        with pytest.raises(ValueError, match="Monitor subclasses"):
            BugFindingRuntime(RandomStrategy(seed=0), monitors=[Ping])


class TestTemperatureLiveness:
    def test_hot_monitor_reports_liveness_under_fair_strategy(self):
        result = _run_once(
            Spinner, FairRandomStrategy(seed=1),
            max_steps=5_000, monitors=[ProgressMonitor], max_hot_steps=100,
        )
        assert result.status == "bug"
        bug = result.bug
        assert bug.kind == "liveness"
        # Satellite: the report names the offending monitor, its hot
        # state, and the step counts — actionable, not "depth bound
        # exceeded".
        assert "ProgressMonitor" in bug.message
        assert "Starved" in bug.message
        assert "101 fair steps" in bug.message
        assert isinstance(bug.exception, LivenessError)
        assert bug.exception.monitor == "ProgressMonitor"
        assert bug.exception.state == "Starved"
        assert bug.step > 0
        # Found via temperature, far below the depth bound.
        assert result.steps < 5_000

    def test_temperature_disabled_under_unfair_strategy(self):
        # DFS starving the cooling machine must not yield liveness bugs.
        result = _run_once(
            Spinner, DfsStrategy(),
            max_steps=400, monitors=[ProgressMonitor], max_hot_steps=100,
        )
        assert result.status == "depth-bound"
        assert result.bug is None

    def test_hot_at_termination_is_reported_regardless_of_fairness(self):
        for strategy in (RandomStrategy(seed=2), DfsStrategy()):
            result = _run_once(
                ForgetfulServer, strategy, monitors=[ProgressMonitor],
            )
            assert result.status == "bug"
            assert result.bug.kind == "liveness"
            assert "termination" in result.bug.message

    def test_replay_defers_temperature_to_the_recorded_schedule(self):
        # A safety bug found under an *unfair* strategy (temperature off)
        # while the monitor sat hot: replaying with the same monitors and
        # a tight threshold must reproduce the recorded bug, not race the
        # schedule to a fresh liveness report mid-replay.
        class HotThenCrash(Machine):
            class Init(State):
                initial = True
                entry = "go"
                actions = {ESpin: "again"}
                ignored = (EReq,)

            def go(self):
                self.send(self.id, EReq())  # monitor goes hot, stays hot
                self.spins = 0
                self.send(self.id, ESpin())

            def again(self):
                self.spins += 1
                if self.spins >= 30:
                    self.assert_that(False, "seeded safety bug")
                self.send(self.id, ESpin())

        found = _run_once(
            HotThenCrash, DfsStrategy(),
            max_steps=5_000, monitors=[ProgressMonitor], max_hot_steps=5,
        )
        assert found.buggy and found.bug.kind == "assertion-failure"
        replayed = replay(
            HotThenCrash, found.trace, max_steps=5_000,
            monitors=[ProgressMonitor], max_hot_steps=5,
        )
        assert replayed.buggy
        assert replayed.bug.kind == "assertion-failure"
        assert replayed.trace == found.trace

    def test_monitor_liveness_bug_replays_bit_identical_across_backends(self):
        found = _run_once(
            Spinner, FairRandomStrategy(seed=1),
            max_steps=5_000, monitors=[ProgressMonitor], max_hot_steps=100,
        )
        assert found.buggy
        for mode in ("pool", "spawn"):
            replayed = replay(
                Spinner, found.trace, max_steps=5_000, workers=mode,
                monitors=[ProgressMonitor], max_hot_steps=100,
            )
            assert replayed.buggy
            assert replayed.bug.kind == "liveness"
            assert replayed.bug.message == found.bug.message
            assert replayed.trace == found.trace  # bit-identical, per back-end


class TestDepthBoundFairnessGate:
    """Satellite bugfix: the depth-bound cutoff is only a liveness report
    when the driving strategy is fair; DFS/PCT campaigns get a plain
    "depth-bound" status instead of spurious liveness bugs."""

    @pytest.mark.parametrize(
        "strategy_factory",
        [lambda: DfsStrategy(), lambda: PctStrategy(seed=4, depth=3)],
        ids=["dfs", "pct"],
    )
    def test_unfair_strategy_never_promotes_depth_bound(self, strategy_factory):
        result = _run_once(
            SelfLoop, strategy_factory(), max_steps=200, livelock_as_bug=True,
        )
        assert result.status == "depth-bound"
        assert result.bug is None

    def test_fair_strategy_still_promotes_depth_bound(self):
        result = _run_once(
            SelfLoop, RandomStrategy(seed=0), max_steps=200, livelock_as_bug=True,
        )
        assert result.buggy
        assert result.bug.kind == "liveness"
        # Satellite: the heuristic report names the last scheduled machine
        # and the step count.
        assert "SelfLoop" in result.bug.message
        assert result.bug.step == 201
        assert result.bug.exception.step == 201

    def test_diverged_replay_does_not_fabricate_livelock(self):
        # Replaying a short prefix with livelock_as_bug: once the recorded
        # decisions run out, the unfair first-enabled fallback drives the
        # run to max_steps — that starvation must not become a liveness
        # bug the recorded run never reported.
        prefix = ScheduleTrace([("sched", 0)])
        result = replay(SelfLoop, prefix, max_steps=200, livelock_as_bug=True)
        assert result.status == "depth-bound"
        assert result.bug is None

    def test_faithful_replay_still_reproduces_heuristic_liveness(self):
        found = _run_once(
            SelfLoop, RandomStrategy(seed=0), max_steps=200, livelock_as_bug=True,
        )
        assert found.buggy and found.bug.kind == "liveness"
        replayed = replay(SelfLoop, found.trace, max_steps=200, livelock_as_bug=True)
        assert replayed.buggy
        assert replayed.bug.kind == "liveness"

    def test_armed_liveness_monitors_supersede_depth_bound_heuristic(self):
        # Temperature armed (fair strategy, threshold below the bound) and
        # the monitor stays cold through the whole spin: reaching the
        # depth bound proves the spin benign — no heuristic bug.
        class GrantedSpinner(Spinner):
            class Init(State):
                initial = True
                entry = "go"
                actions = {ESpin: "again"}
                ignored = (EReq, EGrant)

            def go(self):
                self.send(self.id, EReq())
                self.send(self.id, EGrant())  # obligation met: monitor cools
                self.send(self.id, ESpin())

        result = _run_once(
            GrantedSpinner, FairRandomStrategy(seed=3), max_steps=300,
            livelock_as_bug=True, monitors=[ProgressMonitor],
            max_hot_steps=100,
        )
        assert result.status == "depth-bound"
        assert result.bug is None

    def test_unarmable_threshold_does_not_disable_livelock_reporting(self):
        # A threshold at or above max_steps can never fire, so attaching
        # the monitor must not silently swallow livelock_as_bug — the
        # heuristic stays on as the fallback detector.
        result = _run_once(
            Spinner, FairRandomStrategy(seed=3), max_steps=300,
            livelock_as_bug=True, monitors=[ProgressMonitor],
            max_hot_steps=10_000,
        )
        assert result.buggy
        assert result.bug.kind == "liveness"
        assert "depth bound" in result.bug.message


class TestSafetyMonitors:
    def test_raft_election_safety_monitor_fires_before_checker(self):
        raft = get("Raft")
        engine = TestingEngine(
            raft.buggy.main,
            strategy=RandomStrategy(seed=7),
            max_iterations=3_000,
            max_steps=5_000,
            time_limit=120,
            monitors=raft.buggy.monitors,
        )
        report = engine.run()
        assert report.bug_found
        # The monitor observes ELeaderElected at *send* time, so it always
        # beats the SafetyChecker machine's dequeue-time assertion.
        assert report.first_bug.kind == "monitor"
        assert "ElectionSafetyMonitor" in report.first_bug.message
        assert "two leaders" in report.first_bug.message

    def test_two_phase_commit_quorum_monitor_fires_at_coordinator_send(self):
        tpc = get("TwoPhaseCommit")
        engine = TestingEngine(
            tpc.buggy.main,
            strategy=RandomStrategy(seed=1),
            max_iterations=3_000,
            max_steps=5_000,
            time_limit=120,
            monitors=tpc.buggy.monitors,
        )
        report = engine.run()
        assert report.bug_found
        assert report.first_bug.kind == "monitor"
        assert "AtomicityMonitor" in report.first_bug.message
        assert "quorum" in report.first_bug.message

    @pytest.mark.parametrize("name", ["Raft", "TwoPhaseCommit"])
    def test_correct_variants_satisfy_their_monitors(self, name):
        benchmark = get(name)
        engine = TestingEngine(
            benchmark.correct.main,
            strategy=RandomStrategy(seed=11),
            max_iterations=25,
            max_steps=5_000,
            time_limit=60,
            stop_on_first_bug=False,
            monitors=benchmark.correct.monitors,
        )
        report = engine.run()
        assert not report.bug_found, str(report.first_bug)
        assert report.iterations == 25


class TestMonitorDeterminism:
    """Satellite: monitor callbacks must not perturb strategy decision
    sequences, and traces stay bit-identical across worker back-ends."""

    def _decision_traces(self, main_cls, seed, mode, monitors, iterations=5):
        strategy = RandomStrategy(seed=seed)
        runtime = BugFindingRuntime(
            strategy, max_steps=5_000, workers=mode, monitors=monitors,
        )
        traces = []
        for _ in range(iterations):
            strategy.prepare_iteration()
            traces.append(runtime.execute(main_cls).trace)
        return traces

    def test_monitors_do_not_perturb_strategy_decisions(self):
        raft = get("Raft")
        bare = self._decision_traces(raft.correct.main, 22, "pool", ())
        monitored = self._decision_traces(
            raft.correct.main, 22, "pool", raft.correct.monitors
        )
        for plain, with_spec in zip(bare, monitored):
            filtered = [d for d in with_spec.decisions if d[0] != "monitor"]
            assert filtered == plain.decisions
            # ... and the monitored run really did observe something.
            assert len(with_spec) > len(plain)

    @pytest.mark.parametrize("bench_name", ["ProcessScheduler", "TokenRing"])
    def test_pool_and_spawn_traces_identical_with_monitors(self, bench_name):
        benchmark = get(bench_name)
        pool = self._decision_traces(
            benchmark.buggy.main, 17, "pool", benchmark.buggy.monitors, 3
        )
        spawn = self._decision_traces(
            benchmark.buggy.main, 17, "spawn", benchmark.buggy.monitors, 3
        )
        for a, b in zip(pool, spawn):
            assert a == b
            assert a.decisions == b.decisions

    def test_monitor_trace_entries_round_trip_through_json(self):
        trace = ScheduleTrace([("sched", 1), ("monitor", 0), ("bool", 1)])
        assert trace.to_json() == '[["sched", 1], ["monitor", 0], ["bool", 1]]'
        restored = ScheduleTrace.from_json(trace.to_json())
        assert restored == trace

    def test_replay_strategy_skips_monitor_and_liveness_entries(self):
        trace = ScheduleTrace(
            [("monitor", 0), ("sched", 1), ("monitor", 1), ("liveness", 0)]
        )
        strategy = ReplayStrategy(trace)
        assert strategy._trace == [("sched", 1)]
        assert strategy.is_fair()
        # The liveness marker arms firing, but only at the recorded end.
        assert not strategy.temperature_may_fire()
        strategy.prepare_iteration()
        strategy.pick_machine([MachineId(1)], None)
        assert strategy.temperature_may_fire()
        # Without the marker, firing stays off even when exhausted.
        bare = ReplayStrategy(ScheduleTrace([("sched", 1)]))
        assert not bare.temperature_may_fire()


class TestLivenessBenchmarks:
    """The acceptance criterion: a liveness benchmark's livelock is found
    via hot-state temperature under FairRandomStrategy (not the depth
    bound) and replayed deterministically by replay_winner."""

    def test_process_scheduler_livelock_found_and_replayed_by_portfolio(self):
        benchmark = get("ProcessScheduler")
        engine = PortfolioEngine(
            benchmark.buggy.main,
            specs=[StrategySpec("fair-random", {"seed": 3})],
            max_iterations=200,
            time_limit=60,
            max_steps=2_000,
            monitors=benchmark.buggy.monitors,
            max_hot_steps=150,
        )
        report = engine.run()
        assert report.bug_found
        bug = report.first_bug
        assert bug.kind == "liveness"
        assert "CpuProgressMonitor" in bug.message and "Starved" in bug.message
        assert "stayed hot" in bug.message          # temperature detection...
        assert "depth bound" not in bug.message     # ...not the blunt heuristic
        replayed = engine.replay_winner(report)
        assert replayed is not None and replayed.buggy
        assert replayed.bug.kind == "liveness"
        assert replayed.bug.message == bug.message
        assert replayed.trace == bug.trace

    def test_token_ring_livelock_found_by_temperature(self):
        benchmark = get("TokenRing")
        engine = TestingEngine(
            benchmark.buggy.main,
            strategy=FairRandomStrategy(seed=2),
            max_iterations=50,
            max_steps=3_000,
            time_limit=60,
            monitors=benchmark.buggy.monitors,
            max_hot_steps=300,
        )
        report = engine.run()
        assert report.bug_found
        assert report.first_bug.kind == "liveness"
        assert "TokenCirculationMonitor" in report.first_bug.message
        assert "InFlight" in report.first_bug.message

    def test_correct_token_ring_is_benign_under_fair_schedule(self):
        # The correct ring circulates forever: with the spec attached the
        # infinite executions end as benign depth-bounds, not liveness
        # bugs — the false positive the bare heuristic would produce.
        benchmark = get("TokenRing")
        engine = TestingEngine(
            benchmark.correct.main,
            strategy=FairRandomStrategy(seed=2),
            max_iterations=4,
            max_steps=3_000,
            time_limit=60,
            stop_on_first_bug=False,
            livelock_as_bug=True,  # heuristic suppressed by the monitor
            monitors=benchmark.correct.monitors,
            max_hot_steps=300,
        )
        report = engine.run()
        assert not report.bug_found
        assert report.depth_bound_hits == 4


class TestFairRandomStrategy:
    def test_is_fair_and_registered(self):
        assert FairRandomStrategy(seed=0).is_fair()
        assert "fair-random" in strategy_names()

    def test_deterministic_per_seed(self):
        def run(seed):
            strategy = FairRandomStrategy(seed=seed)
            strategy.prepare_iteration()
            runtime = BugFindingRuntime(strategy, max_steps=2_000)
            return runtime.execute(get("ProcessScheduler").buggy.main).trace

        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_round_robin_bias_bounds_starvation(self):
        # With bias 1.0 the strategy is pure round-robin over enabled
        # machines: every enabled machine runs within |enabled| decisions.
        strategy = FairRandomStrategy(seed=0, bias=1.0)
        strategy.prepare_iteration()
        machines = [MachineId(i) for i in range(3)]
        picks = [strategy.pick_machine(machines, machines[0]) for _ in range(9)]
        for machine in machines:
            assert picks.count(machine) == 3

    def test_bias_validation(self):
        with pytest.raises(ValueError, match="bias"):
            FairRandomStrategy(seed=0, bias=1.5)


class TestMirroringHooks:
    def test_halt_mirroring_delivers_emachinehalted(self):
        class HaltCounter(Monitor):
            observes = (EMachineHalted,)

            class Counting(State):
                initial = True
                entry = "setup"
                actions = {EMachineHalted: "on_halt"}

            def setup(self):
                self.halted = []

            def on_halt(self):
                self.halted.append(self.payload)

        strategy = RandomStrategy(seed=0)
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy, monitors=[HaltCounter])
        result = runtime.execute(Ping)
        assert result.status == "ok"
        # Ping halts itself and its Pong partner.
        assert len(runtime._monitors[0].halted) == 2

    def test_dequeue_mirroring_observes_delivery_order(self):
        from .machines import EPing

        class DeliveryWatcher(Monitor):
            observes_dequeue = (EPing,)

            class Counting(State):
                initial = True
                entry = "setup"
                actions = {EPing: "on_ping"}

            def setup(self):
                self.seen = 0

            def on_ping(self):
                self.seen += 1

        strategy = RandomStrategy(seed=0)
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy, monitors=[DeliveryWatcher])
        result = runtime.execute(Ping)
        assert result.status == "ok"
        assert runtime._monitors[0].seen == Ping.rounds

    def test_unregistered_explicit_invocation_is_noop(self):
        class Caller(Machine):
            class Init(State):
                initial = True
                entry = "go"

            def go(self):
                self.monitor(ProgressMonitor, EReq())  # not attached
                self.halt()

        result = _run_once(Caller, RandomStrategy(seed=0))
        assert result.status == "ok"

    def test_monitor_spec_defect_reported_as_monitor_bug(self):
        # An observed event the monitor's current state cannot handle is a
        # specification defect: blamed on the monitor (kind "monitor"),
        # not on the machine whose send mirrored the event.
        class HalfSpec(Monitor):
            observes = (EReq, EGrant)

            class Only(State):
                initial = True
                actions = {EReq: "noop"}  # EGrant unhandled: spec defect

            def noop(self):
                pass

        class Granter(Machine):
            class Init(State):
                initial = True
                entry = "go"
                ignored = (EReq, EGrant)

            def go(self):
                self.send(self.id, EReq())
                self.send(self.id, EGrant())
                self.halt()

        result = _run_once(Granter, RandomStrategy(seed=0), monitors=[HalfSpec])
        assert result.buggy
        assert result.bug.kind == "monitor"
        assert "HalfSpec" in result.bug.message

    def test_production_runtime_mirrors_all_hooks(self):
        # The production Runtime honors observes (send), observes_dequeue
        # (delivery) and EMachineHalted (halt) — not just send mirroring.
        from repro import Runtime
        from .machines import EPing

        class ProductionWatcher(Monitor):
            observes = (EMachineHalted,)
            observes_dequeue = (EPing,)

            class Counting(State):
                initial = True
                entry = "setup"
                actions = {EMachineHalted: "on_halt", EPing: "on_ping"}

            def setup(self):
                self.halted = 0
                self.pings = 0

            def on_halt(self):
                self.halted += 1

            def on_ping(self):
                self.pings += 1

        runtime = Runtime(seed=1)
        runtime.register_monitor(ProductionWatcher)
        runtime.run(Ping)
        runtime.join()
        watcher = runtime._monitors[0]
        assert watcher.pings == Ping.rounds
        assert watcher.halted == 2  # Ping and its Pong partner

    def test_monitor_error_detaches_for_portfolio_transport(self):
        result = _run_once(
            ForgetfulServer, RandomStrategy(seed=0), monitors=[ProgressMonitor],
        )
        detached = result.bug.detached()
        assert "ProgressMonitor" in detached.machine
        assert detached.trace == result.bug.trace
