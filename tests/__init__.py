"""Test suite package (enables the relative imports in the test modules)."""
