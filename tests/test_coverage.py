"""Activity coverage + campaign telemetry (the observability layer).

Covers the three surfaces the layer adds:

* the :class:`~repro.testing.coverage.CoverageMap` itself — merge,
  pickling, fingerprints, declared-vs-visited deltas, and the headline
  guarantee that the map is bit-identical across the inline, pool and
  spawn backends for a given seed;
* telemetry counters and the JSONL event stream;
* the report/checkpoint persistence round-trip and the ``python -m
  repro report`` rendering, plus the satellite report changes (bug
  dedup by trace fingerprint, summary surfacing).
"""

import json
import pickle

import pytest

from repro.bench.registry import all_benchmarks, coverage_smoke_suite
from repro.errors import BugReport
from repro.testing import (
    Campaign,
    CoverageMap,
    TestConfig,
    TestReport,
    run_portfolio,
)
from repro.testing.checkpoint import load_checkpoint, save_checkpoint
from repro.testing.portfolio import StrategySpec
from repro.testing.reporting import (
    coverage_dot,
    coverage_table,
    load_campaign,
    report_json,
    save_report,
)
from repro.testing.telemetry import EventLog, Histogram, TelemetryStats
from repro.testing.trace import ScheduleTrace

from .test_cli import run_cli


def _campaign(target, *, workers="auto", iterations=5, seed=7, **overrides):
    config = TestConfig(
        program=target,
        strategy="random,seed=%d" % seed,
        max_iterations=iterations,
        max_steps=2_000,
        stop_on_first_bug=False,
        workers=workers,
        coverage=True,
        **overrides,
    )
    return Campaign(config).run()


# ---------------------------------------------------------------------------
# CoverageMap unit behaviour
# ---------------------------------------------------------------------------
class TestCoverageMap:
    def test_empty_map_is_falsy(self):
        assert not CoverageMap()
        assert "nothing recorded" in coverage_table(CoverageMap())[0]

    def test_collects_declared_vs_visited(self):
        report = _campaign("Raft")
        cov = report.coverage
        assert cov is not None and cov
        server = cov.machines["BuggyRaftServer"]
        assert set(server.declared_states) == set(server.states_visited)
        # The seeded Raft bug's repair transition is declared but never
        # taken in a short campaign: the delta names it.
        uncovered = server.uncovered_transitions()
        assert ("Leader", "EBackToFollower", "Follower") in uncovered
        assert 0.0 < server.transition_coverage < 1.0

    def test_monitors_are_covered_and_flagged(self):
        cov = _campaign("Raft").coverage
        monitor = cov.machines["ElectionSafetyMonitor"]
        assert monitor.is_monitor
        assert monitor.states_visited  # booted during runtime reset

    def test_event_counters(self):
        cov = _campaign("Raft").coverage
        totals = cov.totals()
        assert totals["events_sent"] > 0
        assert totals["events_dequeued"] > 0
        # A no-faults campaign delivers what it sends (minus events still
        # queued at the depth bound and sends to halted machines).
        assert totals["events_dequeued"] <= totals["events_sent"]

    def test_merge_sums_and_unions(self):
        a = _campaign("Raft", iterations=2, seed=1).coverage
        b = _campaign("Raft", iterations=2, seed=2).coverage
        sent_a = a.totals()["events_sent"]
        sent_b = b.totals()["events_sent"]
        merged = a.copy().merge(b)
        assert merged.totals()["events_sent"] == sent_a + sent_b
        server = merged.machines["BuggyRaftServer"]
        assert server.instances == (
            a.machines["BuggyRaftServer"].instances
            + b.machines["BuggyRaftServer"].instances
        )
        union = set(a.machines["BuggyRaftServer"].transitions_taken) | set(
            b.machines["BuggyRaftServer"].transitions_taken
        )
        assert set(server.transitions_taken) == union

    def test_pickle_roundtrip_preserves_equality_and_fingerprint(self):
        cov = _campaign("Raft").coverage
        clone = pickle.loads(pickle.dumps(cov))
        assert clone == cov
        assert clone.fingerprint() == cov.fingerprint()

    def test_fingerprint_distinguishes_different_campaigns(self):
        a = _campaign("Raft", iterations=2, seed=1).coverage
        b = _campaign("Raft", iterations=2, seed=2).coverage
        c = _campaign("Raft", iterations=2, seed=1).coverage
        assert a.fingerprint() == c.fingerprint()
        assert a.fingerprint() != b.fingerprint()


# ---------------------------------------------------------------------------
# Backend bit-identity: the map measures the program, not the backend
# ---------------------------------------------------------------------------
class TestBackendIdentity:
    @pytest.mark.parametrize(
        "name", sorted(b.name for b in all_benchmarks())
    )
    def test_identical_across_backends(self, name):
        benchmark = next(b for b in all_benchmarks() if b.name == name)
        variant = benchmark.buggy or benchmark.correct
        backends = ["pool", "spawn"]
        if variant.main.inline_compatible():
            backends.append("inline")
        maps = {
            backend: _campaign(name, workers=backend, iterations=3).coverage
            for backend in backends
        }
        fingerprints = {cov.fingerprint() for cov in maps.values()}
        assert len(fingerprints) == 1, (
            f"{name}: coverage diverged across backends {sorted(maps)}"
        )

    def test_auto_matches_explicit_backend(self):
        auto = _campaign("Raft", workers="auto")
        explicit = _campaign("Raft", workers=auto.effective_backend)
        assert auto.coverage.fingerprint() == explicit.coverage.fingerprint()


# ---------------------------------------------------------------------------
# Portfolio merge + checkpoint/resume
# ---------------------------------------------------------------------------
SPECS = (
    StrategySpec("random", {"seed": 11}),
    StrategySpec("random", {"seed": 12}),
)


def _portfolio_config(**overrides):
    return TestConfig(
        program="BoundedAsync",
        specs=SPECS,
        max_iterations=10,
        max_steps=2_000,
        stop_on_first_bug=False,
        coverage=True,
        **overrides,
    )


class TestPortfolioCoverage:
    def test_campaign_coverage_is_shard_merge(self):
        campaign = run_portfolio(_portfolio_config())
        assert campaign.coverage is not None
        merged = CoverageMap()
        for shard in campaign.sub_reports:
            assert shard.coverage is not None
            merged.merge(shard.coverage)
        assert campaign.coverage == merged

    def test_resumed_campaign_coverage_matches_uninterrupted(self, tmp_path):
        baseline = run_portfolio(_portfolio_config())
        ckpt = tmp_path / "campaign.ckpt"
        run_portfolio(_portfolio_config(), checkpoint=ckpt)
        # Simulate a crash after shard 0 completed: rewrite the
        # checkpoint without shard 1 and resume.
        state = load_checkpoint(ckpt)
        save_checkpoint(
            ckpt,
            fingerprint=state["fingerprint"],
            specs=state["specs"],
            completed={0: state["completed"][0]},
        )
        resumed = run_portfolio(_portfolio_config(), resume=ckpt)
        assert resumed.iterations == baseline.iterations
        assert resumed.coverage == baseline.coverage
        assert resumed.coverage.fingerprint() == baseline.coverage.fingerprint()

    def test_checkpoint_fingerprint_covers_coverage_flag(self, tmp_path):
        from repro.errors import PSharpError

        ckpt = tmp_path / "campaign.ckpt"
        run_portfolio(_portfolio_config(), checkpoint=ckpt)
        plain = _portfolio_config().with_overrides(coverage=False)
        with pytest.raises(PSharpError):
            run_portfolio(plain, resume=ckpt)


# ---------------------------------------------------------------------------
# Satellite: bug dedup + summary surfacing
# ---------------------------------------------------------------------------
def _trace(decisions):
    trace = ScheduleTrace()
    for value in decisions:
        trace.record("sched", value)
    return trace


class TestReportSatellites:
    def test_merge_dedups_bugs_by_trace_fingerprint(self):
        first = TestReport(strategy="a")
        first.bugs.append(
            BugReport(kind="assert", message="x", trace=_trace([1, 2, 3]))
        )
        second = TestReport(strategy="b")
        second.bugs.append(
            BugReport(kind="assert", message="x", trace=_trace([1, 2, 3]))
        )
        second.bugs.append(
            BugReport(kind="assert", message="y", trace=_trace([4, 5]))
        )
        first.merge(second)
        assert len(first.bugs) == 2
        assert first.distinct_bugs == 2

    def test_traceless_bugs_each_count(self):
        report = TestReport(strategy="a")
        report.bugs.append(BugReport(kind="assert", message="x"))
        other = TestReport(strategy="b")
        other.bugs.append(BugReport(kind="assert", message="x"))
        report.merge(other)
        assert len(report.bugs) == 2
        assert report.distinct_bugs == 2

    def test_summary_surfaces_observability_fields(self):
        report = TestReport(strategy="random")
        report.iterations = 10
        report.elapsed = 1.0
        report.watchdog_hits = 2
        report.faults_injected = 5
        report.effective_backend = "pool"
        report.bugs.append(
            BugReport(kind="assert", message="boom", trace=_trace([1]))
        )
        report.buggy_iterations = 1
        report.first_bug = report.bugs[0]
        summary = report.summary()
        assert "watchdog=2" in summary
        assert "faults=5" in summary
        assert "[pool]" in summary
        assert "distinct=1" in summary

    def test_detached_carries_coverage_and_telemetry(self):
        report = _campaign("Raft")
        clone = pickle.loads(pickle.dumps(report.detached()))
        assert clone.coverage == report.coverage
        assert clone.telemetry == report.telemetry
        assert clone.consulted_decisions == report.consulted_decisions


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------
class TestTelemetry:
    def test_histogram_records_and_merges(self):
        h = Histogram()
        for value in (1, 2, 3, 100):
            h.record(value)
        assert h.count == 4
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(26.5)
        other = Histogram()
        other.record(200)
        h.merge(other)
        assert h.count == 5 and h.max == 200

    def test_stats_consult_ratio(self):
        stats = TelemetryStats()
        stats.record_iteration(
            steps=10,
            scheduling_points=10,
            wall_seconds=0.001,
            since_start=0.5,
            consulted=8,
        )
        assert stats.consulted == 8 and stats.forced == 2
        assert stats.consult_ratio == pytest.approx(0.8)
        assert any("consulted" in line for line in stats.summary_lines())

    def test_campaign_populates_telemetry(self):
        report = _campaign("Raft")
        stats = report.telemetry
        assert stats is not None
        assert stats.iterations == report.iterations
        assert stats.steps.count == report.iterations
        assert stats.consulted == report.consulted_decisions

    def test_event_log_stream(self, tmp_path):
        path = tmp_path / "events.jsonl"
        config = TestConfig(
            program="BoundedAsync",
            strategy="random,seed=7",
            max_iterations=30,
            max_steps=2_000,
            events_path=path,
        )
        report = Campaign(config).run()
        assert report.bug_found
        records = [json.loads(line) for line in path.read_text().splitlines()]
        types = [record["type"] for record in records]
        for expected in (
            "campaign_start", "shard_start", "bug_found", "shard_end",
            "campaign_end",
        ):
            assert expected in types, types
        assert all("ts" in record and "pid" in record for record in records)

    def test_event_log_swallows_write_failures(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("probe")
        log.close()
        log.emit("after-close")  # must not raise
        assert len(path.read_text().splitlines()) == 1

    def test_portfolio_event_stream_tags_shards(self, tmp_path):
        path = tmp_path / "events.jsonl"
        run_portfolio(_portfolio_config(events_path=path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        types = {record["type"] for record in records}
        assert {"campaign_start", "worker_spawn", "shard_start",
                "shard_end", "campaign_end"} <= types
        shards = {
            record["shard"] for record in records if record["type"] == "shard_end"
        }
        assert shards == {0, 1}


# ---------------------------------------------------------------------------
# Reporting: persistence + rendering
# ---------------------------------------------------------------------------
class TestReporting:
    def test_save_load_roundtrip(self, tmp_path):
        report = _campaign("Raft")
        path = tmp_path / "campaign.report"
        save_report(path, report)
        loaded = load_campaign(path)
        assert loaded.iterations == report.iterations
        assert loaded.coverage == report.coverage

    def test_load_campaign_reads_checkpoints(self, tmp_path):
        ckpt = tmp_path / "campaign.ckpt"
        campaign = run_portfolio(_portfolio_config(), checkpoint=ckpt)
        loaded = load_campaign(ckpt)
        assert loaded.iterations == campaign.iterations
        assert loaded.coverage == campaign.coverage

    def test_load_campaign_rejects_garbage(self, tmp_path):
        from repro.errors import PSharpError

        path = tmp_path / "garbage"
        path.write_bytes(b"not a pickle")
        with pytest.raises(PSharpError):
            load_campaign(path)

    def test_coverage_table_names_uncovered(self):
        lines = coverage_table(_campaign("Raft").coverage)
        text = "\n".join(lines)
        assert "BuggyRaftServer" in text
        assert "Leader --EBackToFollower--> Follower" in text
        assert "events sent=" in text

    def test_report_json_shape(self):
        report = _campaign("Raft")
        data = report_json(report)
        json.dumps(data)  # must be serializable
        assert data["iterations"] == report.iterations
        assert data["coverage_fingerprint"] == report.coverage.fingerprint()
        assert data["telemetry"]["iterations"] == report.iterations

    def test_coverage_dot_marks_unvisited_dashed(self):
        dot = coverage_dot(_campaign("Raft").coverage)
        assert dot.startswith("digraph coverage {")
        assert 'label="EBackToFollower"' in dot
        assert "style=dashed" in dot


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCoverageCli:
    def test_test_coverage_names_uncovered_transition(self):
        proc = run_cli(
            "test", "Raft", "--coverage", "--seed", "7",
            "--max-iterations", "5", "--max-steps", "1500",
        )
        assert proc.returncode == 0, proc.stderr + proc.stdout
        assert "activity coverage:" in proc.stdout
        assert "uncovered transitions" in proc.stdout
        assert "--EBackToFollower-->" in proc.stdout

    def test_report_roundtrip_via_main(self, tmp_path, capsys):
        from repro.__main__ import main

        saved = tmp_path / "campaign.report"
        code = main([
            "test", "Raft", "--seed", "7", "--max-iterations", "5",
            "--max-steps", "1500", "--coverage-report", str(saved),
        ])
        assert code == 0
        assert saved.exists()
        capsys.readouterr()
        assert main(["report", str(saved), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["coverage"]["machines"]["BuggyRaftServer"]
        assert data["iterations"] == 5

    def test_report_dot_output(self, tmp_path, capsys):
        from repro.__main__ import main

        saved = tmp_path / "campaign.report"
        main([
            "test", "Raft", "--seed", "7", "--max-iterations", "3",
            "--max-steps", "1500", "--coverage-report", str(saved),
        ])
        capsys.readouterr()
        assert main(["report", str(saved), "--dot", "-"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph coverage {")

    def test_coverage_smoke_suite_is_fast_subset(self):
        names = {b.name for b in coverage_smoke_suite()}
        assert names == {"Raft", "German", "ProcessScheduler", "TokenRing"}
        assert names <= {b.name for b in all_benchmarks()}
