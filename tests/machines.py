"""Small machine programs shared by the test suite."""

from repro import Event, Machine, State


class EPing(Event):
    pass


class EPong(Event):
    pass


class EStart(Event):
    pass


class Pong(Machine):
    """Replies EPong to every EPing; halts the game after `rounds` pings."""

    class Init(State):
        initial = True
        entry = "setup"
        actions = {EPing: "on_ping"}

    def setup(self):
        self.pings = 0

    def on_ping(self):
        self.pings += 1
        self.send(self.payload, EPong(self.id))


class Ping(Machine):
    """Drives `rounds` ping/pong exchanges, then halts both machines."""

    rounds = 3

    class Init(State):
        initial = True
        entry = "setup"
        transitions = {EStart: "Playing"}

    class Playing(State):
        entry = "play"
        actions = {EPong: "on_pong"}

    def setup(self):
        self.partner = self.create_machine(Pong)
        self.count = 0
        self.raise_event(EStart())

    def play(self):
        self.send(self.partner, EPing(self.id))

    def on_pong(self):
        self.count += 1
        if self.count < self.rounds:
            self.send(self.partner, EPing(self.id))
        else:
            from repro import Halt

            self.send(self.partner, Halt())
            self.halt()


class EVal(Event):
    pass


class RacyCounter(Machine):
    """Asserts an interleaving-dependent property: fails only under some
    schedules.  Two `Incrementer` children write back values; the assert
    fails iff the second child's message arrives before the first's."""

    class Init(State):
        initial = True
        entry = "setup"
        actions = {EVal: "on_val"}

    def setup(self):
        self.seen = []
        self.create_machine(Incrementer, (self.id, 1))
        self.create_machine(Incrementer, (self.id, 2))

    def on_val(self):
        self.seen.append(self.payload)
        if len(self.seen) == 2:
            self.assert_that(
                self.seen == [1, 2], f"out-of-order delivery: {self.seen}"
            )


class Incrementer(Machine):
    class Init(State):
        initial = True
        entry = "go"

    def go(self):
        parent, value = self.payload
        self.send(parent, EVal(value))
        self.halt()


class NondetBug(Machine):
    """Fails only when both controlled nondeterministic booleans are True."""

    class Init(State):
        initial = True
        entry = "go"

    def go(self):
        a = self.nondet()
        b = self.nondet()
        self.assert_that(not (a and b), "both choices were True")
        self.halt()


class SelfLoop(Machine):
    """Livelock: endlessly sends itself the same event (the shape of the
    German-benchmark livelock described in Section 7.2.2)."""

    class Init(State):
        initial = True
        entry = "go"
        actions = {EPing: "again"}

    def go(self):
        self.send(self.id, EPing())

    def again(self):
        self.send(self.id, EPing())


class EBump(Event):
    pass


class CrashCounter(Machine):
    """Crash-restart fixture: ``persisted`` is durable, ``volatile`` is not.

    Both count the same EBump deliveries, so after a crash-restart with
    ``persistent_state=True`` the two counters diverge (volatile resets),
    while with ``persistent_state=False`` they stay equal forever."""

    persistent_fields = ("persisted",)

    class Counting(State):
        initial = True
        entry = "boot"
        actions = {EBump: "on_bump"}

    def boot(self):
        if not hasattr(self, "persisted"):
            self.persisted = 0
        self.volatile = 0

    def on_bump(self):
        self.persisted += 1
        self.volatile += 1


class CrashDriver(Machine):
    """Boots a CrashCounter and feeds it a few bumps."""

    bumps = 3

    class Init(State):
        initial = True
        entry = "go"

    def go(self):
        counter = self.create_machine(CrashCounter)
        for _i in range(self.bumps):
            self.send(counter, EBump())
        self.halt()
